//! The discrete-event loop: periodic snapshot → solve → apply.

use crate::metrics::{DayMetrics, WorkerLedger};
use crate::scenario::{ArrivingTask, Scenario};
use fta_algorithms::{solve, Algorithm, SolveConfig};
use fta_core::entities::{SpatialTask, Worker};
use fta_core::geometry::Point;
use fta_core::ids::{TaskId, WorkerId};
use fta_core::route::Route;
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// Plans single-stop routes for the [`DispatchPolicy::Immediate`] baseline:
/// per center, delivery points are served in earliest-deadline order, each
/// by the nearest idle worker whose initial leg still meets the deadline.
/// Returns `(original worker index, route)` pairs; `idle` maps the
/// snapshot's dense worker ids back to scenario indices.
fn plan_immediate(snapshot: &Instance, idle: &[usize]) -> Vec<(usize, Route)> {
    let aggs = snapshot.dp_aggregates();
    let mut used = vec![false; snapshot.workers.len()];
    let mut planned = Vec::new();
    for view in snapshot.center_views() {
        let dc = snapshot.centers[view.center.index()].location;
        let mut dps = view.dps.clone();
        dps.sort_by(|a, b| {
            aggs[a.index()]
                .earliest_expiry
                .partial_cmp(&aggs[b.index()].earliest_expiry)
                .expect("expiries are not NaN")
        });
        for dp in dps {
            let route = Route::build(snapshot, &aggs, view.center, vec![dp])
                .expect("singleton routes over snapshot dps are well-formed");
            if !route.is_center_origin_valid() {
                continue;
            }
            // Nearest feasible unused worker of this center.
            let candidate = view
                .workers
                .iter()
                .filter(|w| !used[w.index()])
                .map(|&w| {
                    let to_dc = snapshot.travel_time(snapshot.workers[w.index()].location, dc);
                    (w, to_dc)
                })
                .filter(|&(_, to_dc)| route.is_valid_for_travel(to_dc))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("times are not NaN"));
            if let Some((w, _)) = candidate {
                used[w.index()] = true;
                planned.push((idle[w.index()], route));
            }
        }
    }
    planned
}

/// How pending tasks are dispatched at each round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchPolicy {
    /// Snapshot everything and run an FTA assignment algorithm (the
    /// paper's batch model).
    Batch(Algorithm),
    /// Naive production dispatching: serve each pending delivery point by
    /// sending its nearest feasible idle courier on a single-stop route,
    /// first-come first-served. No routing, no fairness — the baseline a
    /// platform has *before* adopting the paper's approach.
    Immediate,
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Simulated horizon, hours.
    pub horizon: f64,
    /// Interval between assignment rounds, hours.
    pub assignment_period: f64,
    /// The dispatch policy run at each round.
    pub policy: DispatchPolicy,
    /// VDPS generation settings for each round (batch policies only).
    pub vdps: VdpsConfig,
    /// Solve distribution centers on separate threads (batch policies
    /// only).
    pub parallel: bool,
}

impl SimConfig {
    /// An 8-hour day with a batch assignment round every 15 minutes.
    #[must_use]
    pub fn day(algorithm: Algorithm) -> Self {
        Self {
            horizon: 8.0,
            assignment_period: 0.25,
            policy: DispatchPolicy::Batch(algorithm),
            vdps: VdpsConfig::default(),
            parallel: false,
        }
    }
}

/// Outcome of a run: the longitudinal metrics (see [`DayMetrics`]).
pub type SimReport = DayMetrics;

/// A pending (arrived, unassigned, unexpired) task.
#[derive(Debug, Clone, Copy)]
struct Pending {
    task: ArrivingTask,
}

/// Runs the simulation.
///
/// Every `assignment_period` the engine ingests new arrivals, drops
/// expired tasks, snapshots the idle workers and pending tasks into an
/// [`Instance`] (task expiries become *remaining* times relative to the
/// round instant), solves it with the configured algorithm, and applies
/// the assignment: each assigned worker is busy until route completion,
/// reappears at its final delivery point, and banks the route's rewards.
///
/// ```
/// use fta_algorithms::Algorithm;
/// use fta_sim::{run, Scenario, ScenarioConfig, SimConfig};
///
/// let scenario = Scenario::generate(&ScenarioConfig::default(), 1.0, 42);
/// let metrics = run(&scenario, &SimConfig {
///     horizon: 1.0,
///     ..SimConfig::day(Algorithm::Gta)
/// });
/// assert_eq!(metrics.tasks_arrived, scenario.tasks.len());
/// assert!(metrics.completion_rate() <= 1.0);
/// ```
///
/// # Panics
///
/// Panics if the horizon or the assignment period is not positive.
#[must_use]
pub fn run(scenario: &Scenario, config: &SimConfig) -> SimReport {
    assert!(
        config.horizon > 0.0 && config.assignment_period > 0.0,
        "horizon and assignment period must be positive"
    );
    let n_workers = scenario.workers.len();
    let mut ledgers = vec![WorkerLedger::default(); n_workers];
    let mut busy_until = vec![0.0_f64; n_workers];
    let mut location: Vec<Point> = scenario.workers.iter().map(|w| w.location).collect();

    let mut pending: Vec<Pending> = Vec::new();
    let mut next_arrival = 0usize;
    let mut tasks_completed = 0usize;
    let mut tasks_expired = 0usize;
    let mut rounds = 0usize;

    let mut now = config.assignment_period;
    while now <= config.horizon + 1e-12 {
        // Ingest arrivals up to this round.
        while next_arrival < scenario.tasks.len() && scenario.tasks[next_arrival].arrival <= now {
            pending.push(Pending {
                task: scenario.tasks[next_arrival],
            });
            next_arrival += 1;
        }
        // Drop tasks that expired while waiting.
        pending.retain(|p| {
            if p.task.deadline <= now {
                tasks_expired += 1;
                false
            } else {
                true
            }
        });

        // Snapshot idle workers.
        let idle: Vec<usize> = (0..n_workers).filter(|&w| busy_until[w] <= now).collect();
        if !idle.is_empty() && !pending.is_empty() {
            rounds += 1;
            let _tick_span = fta_obs::span("sim.tick");
            fta_obs::counter("sim.rounds", 1);
            fta_obs::gauge_max("sim.pending_peak", pending.len() as u64);
            let snapshot_workers: Vec<Worker> = idle
                .iter()
                .enumerate()
                .map(|(dense, &orig)| Worker {
                    id: WorkerId::from_index(dense),
                    location: location[orig],
                    max_dp: scenario.workers[orig].max_dp,
                    center: scenario.workers[orig].center,
                })
                .collect();
            let snapshot_tasks: Vec<SpatialTask> = pending
                .iter()
                .enumerate()
                .map(|(dense, p)| SpatialTask {
                    id: TaskId::from_index(dense),
                    delivery_point: p.task.delivery_point,
                    expiry: p.task.deadline - now,
                    reward: p.task.reward,
                })
                .collect();
            let instance = Instance::new(
                scenario.centers.clone(),
                snapshot_workers,
                scenario.delivery_points.clone(),
                snapshot_tasks,
                scenario.config.speed,
            )
            .expect("snapshots preserve all instance invariants");

            // Plan routes: (original worker index, route) pairs. The
            // timer feeds the per-tick assignment latency histogram
            // (both dispatch policies, so they can be compared).
            let planned: Vec<(usize, Route)> = {
                let _assign_timer = fta_obs::hist_timer("sim.assign_nanos");
                match config.policy {
                    DispatchPolicy::Batch(algorithm) => {
                        let outcome = solve(
                            &instance,
                            &SolveConfig {
                                vdps: config.vdps,
                                algorithm,
                                parallel: config.parallel,
                            },
                        );
                        debug_assert!(outcome.assignment.validate(&instance).is_ok());
                        outcome
                            .assignment
                            .iter()
                            .map(|(w, route)| (idle[w.index()], route.clone()))
                            .collect()
                    }
                    DispatchPolicy::Immediate => plan_immediate(&instance, &idle),
                }
            };

            // Apply each planned route.
            let mut delivered_dps: Vec<fta_core::DeliveryPointId> = Vec::new();
            for (orig, route) in &planned {
                let orig = *orig;
                let dc = scenario.centers[route.center().index()].location;
                let to_dc = location[orig].travel_time(dc, scenario.config.speed);
                let total = to_dc + route.travel_from_dc();
                busy_until[orig] = now + total;
                let last_dp = *route.dps().last().expect("routes are non-empty");
                location[orig] = scenario.delivery_points[last_dp.index()].location;

                let ledger = &mut ledgers[orig];
                ledger.earnings += route.total_reward();
                ledger.busy_hours += total;
                ledger.routes += 1;
                ledger.tasks_delivered += pending
                    .iter()
                    .filter(|p| route.dps().contains(&p.task.delivery_point))
                    .count();
                delivered_dps.extend_from_slice(route.dps());
            }
            // All pending tasks at a served delivery point are delivered
            // (Definition 2: a route serves the full task set of each dp).
            if !delivered_dps.is_empty() {
                let before = pending.len();
                pending.retain(|p| !delivered_dps.contains(&p.task.delivery_point));
                tasks_completed += before - pending.len();
            }
        }
        now += config.assignment_period;
    }

    // Arrivals after the final assignment round were never snapshotted;
    // ingest them so the end-of-horizon accounting covers every task.
    while next_arrival < scenario.tasks.len() {
        pending.push(Pending {
            task: scenario.tasks[next_arrival],
        });
        next_arrival += 1;
    }

    // Anything past its deadline at the horizon is lost; the rest pends.
    let mut tasks_pending = 0usize;
    for p in &pending {
        if p.task.deadline <= config.horizon {
            tasks_expired += 1;
        } else {
            tasks_pending += 1;
        }
    }

    DayMetrics {
        ledgers,
        tasks_arrived: next_arrival,
        tasks_completed,
        tasks_expired,
        tasks_pending,
        rounds,
        horizon: config.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use fta_algorithms::IegtConfig;

    fn small_scenario(seed: u64) -> Scenario {
        Scenario::generate(
            &ScenarioConfig {
                n_workers: 8,
                n_delivery_points: 20,
                extent: 3.0,
                arrival_rate: 60.0,
                ..ScenarioConfig::default()
            },
            2.0,
            seed,
        )
    }

    fn config(algorithm: Algorithm) -> SimConfig {
        SimConfig {
            horizon: 2.0,
            assignment_period: 0.25,
            policy: DispatchPolicy::Batch(algorithm),
            vdps: VdpsConfig::pruned(1.5, 3),
            parallel: false,
        }
    }

    #[test]
    fn task_accounting_is_conserved() {
        let scenario = small_scenario(1);
        let m = run(&scenario, &config(Algorithm::Gta));
        assert_eq!(m.tasks_arrived, scenario.tasks.len());
        let delivered: usize = m.ledgers.iter().map(|l| l.tasks_delivered).sum();
        assert_eq!(delivered, m.tasks_completed);
        assert_eq!(
            m.tasks_completed + m.tasks_expired + m.tasks_pending,
            m.tasks_arrived,
            "tasks must be completed, expired, or pending"
        );
    }

    #[test]
    fn some_tasks_are_completed_under_reasonable_load() {
        let m = run(&small_scenario(2), &config(Algorithm::Gta));
        assert!(m.tasks_completed > 0, "no tasks delivered at all");
        assert!(m.rounds > 0);
        assert!(m.completion_rate() > 0.0);
    }

    #[test]
    fn earnings_match_route_rewards() {
        let m = run(&small_scenario(3), &config(Algorithm::Gta));
        let total_earned: f64 = m.ledgers.iter().map(|l| l.earnings).sum();
        // Unit rewards: total earnings equal delivered task count.
        assert!((total_earned - m.tasks_completed as f64).abs() < 1e-9);
    }

    #[test]
    fn busy_workers_are_not_double_assigned() {
        // With a long period and slow workers, utilisation must stay ≤ 1
        // plus at most one overhanging route.
        let m = run(&small_scenario(4), &config(Algorithm::Gta));
        for (i, l) in m.ledgers.iter().enumerate() {
            assert!(
                l.busy_hours <= m.horizon + 3.0,
                "worker {i} busy {} h in a {} h day",
                l.busy_hours,
                m.horizon
            );
        }
    }

    #[test]
    fn period_longer_than_horizon_runs_no_rounds() {
        let scenario = small_scenario(7);
        let mut cfg = config(Algorithm::Gta);
        cfg.assignment_period = 10.0; // > 2 h horizon
        let m = run(&scenario, &cfg);
        assert_eq!(m.rounds, 0);
        assert_eq!(m.tasks_completed, 0);
        // Every task is either expired or pending at the horizon.
        assert_eq!(m.tasks_expired + m.tasks_pending, m.tasks_arrived);
    }

    #[test]
    fn deterministic_per_seed_and_config() {
        let scenario = small_scenario(5);
        let a = run(&scenario, &config(Algorithm::Gta));
        let b = run(&scenario, &config(Algorithm::Gta));
        assert_eq!(a, b);
    }

    #[test]
    fn immediate_dispatch_conserves_tasks_and_is_single_stop() {
        let scenario = small_scenario(6);
        let mut cfg = config(Algorithm::Gta);
        cfg.policy = DispatchPolicy::Immediate;
        let m = run(&scenario, &cfg);
        assert_eq!(
            m.tasks_completed + m.tasks_expired + m.tasks_pending,
            m.tasks_arrived
        );
        // Single-stop routes: each completed route delivers exactly the
        // pending tasks of one delivery point, so routes ≥ ... at least
        // every delivering worker has routes ≥ 1.
        for l in &m.ledgers {
            if l.tasks_delivered > 0 {
                assert!(l.routes > 0);
            }
        }
        assert!(
            m.tasks_completed > 0,
            "immediate dispatch delivered nothing"
        );
    }

    #[test]
    fn batch_games_beat_immediate_dispatch_on_day_fairness() {
        // The "before adopting the paper" baseline: across seeds, IEGT's
        // day-end earnings Gini should beat naive nearest-courier dispatch.
        let mut immed_gini = 0.0;
        let mut iegt_gini = 0.0;
        for seed in 0..4 {
            let scenario = small_scenario(30 + seed);
            let mut immed_cfg = config(Algorithm::Gta);
            immed_cfg.policy = DispatchPolicy::Immediate;
            immed_gini += run(&scenario, &immed_cfg).earnings_fairness().gini;
            iegt_gini += run(&scenario, &config(Algorithm::Iegt(IegtConfig::default())))
                .earnings_fairness()
                .gini;
        }
        assert!(
            iegt_gini <= immed_gini + 0.05,
            "IEGT day-Gini {iegt_gini} much worse than immediate dispatch {immed_gini}"
        );
    }

    #[test]
    fn fair_policy_spreads_earnings_more_evenly() {
        // Averaged over seeds, IEGT's daily-earnings Gini should not exceed
        // GTA's — the longitudinal version of the paper's claim.
        let mut gta_gini = 0.0;
        let mut iegt_gini = 0.0;
        for seed in 0..4 {
            let scenario = small_scenario(10 + seed);
            gta_gini += run(&scenario, &config(Algorithm::Gta))
                .earnings_fairness()
                .gini;
            iegt_gini += run(&scenario, &config(Algorithm::Iegt(IegtConfig::default())))
                .earnings_fairness()
                .gini;
        }
        assert!(
            iegt_gini <= gta_gini + 0.05,
            "IEGT day-Gini {iegt_gini} much worse than GTA {gta_gini}"
        );
    }
}

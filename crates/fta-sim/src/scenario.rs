//! The simulated world: static geography plus a stochastic task stream.

use fta_core::entities::{DeliveryPoint, DistributionCenter, Worker};
use fta_core::geometry::Point;
use fta_core::ids::{CenterId, DeliveryPointId, WorkerId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a simulated city and its demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Number of distribution centers.
    pub n_centers: usize,
    /// Number of workers.
    pub n_workers: usize,
    /// Number of delivery points.
    pub n_delivery_points: usize,
    /// Side of the square city, km.
    pub extent: f64,
    /// Worker speed, km/h.
    pub speed: f64,
    /// Per-worker `maxDP`.
    pub max_dp: usize,
    /// Mean task arrivals per hour (Poisson process).
    pub arrival_rate: f64,
    /// Time from a task's arrival to its expiration, hours.
    pub expiry_offset: f64,
    /// Reward per task.
    pub reward: f64,
}

impl Default for ScenarioConfig {
    /// A single-center city: 30 couriers, 60 drop-off points, 200 orders/h
    /// expiring after 2 h.
    fn default() -> Self {
        Self {
            n_centers: 1,
            n_workers: 30,
            n_delivery_points: 60,
            extent: 6.0,
            speed: 5.0,
            max_dp: 3,
            arrival_rate: 200.0,
            expiry_offset: 2.0,
            reward: 1.0,
        }
    }
}

/// One task in the stream: arrival instant, destination, absolute deadline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivingTask {
    /// Arrival time, hours from simulation start.
    pub arrival: f64,
    /// Destination delivery point.
    pub delivery_point: DeliveryPointId,
    /// Absolute expiration instant (arrival + expiry offset).
    pub deadline: f64,
    /// Reward.
    pub reward: f64,
}

/// A fully materialised scenario: static world + the task stream for one
/// simulated horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Configuration it was generated from.
    pub config: ScenarioConfig,
    /// Distribution centers.
    pub centers: Vec<DistributionCenter>,
    /// Delivery points (center association fixed for the whole day).
    pub delivery_points: Vec<DeliveryPoint>,
    /// Worker home locations and attributes.
    pub workers: Vec<Worker>,
    /// Task stream, sorted by arrival time.
    pub tasks: Vec<ArrivingTask>,
}

impl Scenario {
    /// Generates a scenario with task arrivals over `[0, horizon)` hours.
    ///
    /// Deterministic for a fixed seed. Inter-arrival times are exponential
    /// with rate [`ScenarioConfig::arrival_rate`]; destinations are uniform
    /// over the delivery points.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero centers/delivery points, a
    /// non-positive arrival rate, or a non-positive horizon.
    #[must_use]
    pub fn generate(config: &ScenarioConfig, horizon: f64, seed: u64) -> Self {
        assert!(config.n_centers > 0, "need at least one center");
        assert!(config.n_delivery_points > 0, "need delivery points");
        assert!(
            config.arrival_rate > 0.0 && horizon > 0.0,
            "arrival rate and horizon must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let point = |rng: &mut StdRng| {
            Point::new(
                rng.gen_range(0.0..config.extent),
                rng.gen_range(0.0..config.extent),
            )
        };

        let centers: Vec<DistributionCenter> = (0..config.n_centers)
            .map(|i| DistributionCenter {
                id: CenterId::from_index(i),
                location: point(&mut rng),
            })
            .collect();
        let delivery_points: Vec<DeliveryPoint> = (0..config.n_delivery_points)
            .map(|i| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: point(&mut rng),
                center: CenterId::from_index(i % config.n_centers),
            })
            .collect();
        let workers: Vec<Worker> = (0..config.n_workers)
            .map(|i| Worker {
                id: WorkerId::from_index(i),
                location: point(&mut rng),
                max_dp: config.max_dp,
                center: CenterId::from_index(i % config.n_centers),
            })
            .collect();

        // Poisson arrivals: exponential inter-arrival gaps.
        let mut tasks = Vec::new();
        let mut t = 0.0_f64;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / config.arrival_rate;
            if t >= horizon {
                break;
            }
            tasks.push(ArrivingTask {
                arrival: t,
                delivery_point: DeliveryPointId::from_index(
                    rng.gen_range(0..config.n_delivery_points),
                ),
                deadline: t + config.expiry_offset,
                reward: config.reward,
            });
        }
        Self {
            config: *config,
            centers,
            delivery_points,
            workers,
            tasks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let s = Scenario::generate(&ScenarioConfig::default(), 4.0, 1);
        assert!(!s.tasks.is_empty());
        for pair in s.tasks.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
        assert!(s.tasks.iter().all(|t| t.arrival < 4.0));
        for t in &s.tasks {
            assert!((t.deadline - t.arrival - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arrival_count_tracks_the_rate() {
        let cfg = ScenarioConfig {
            arrival_rate: 100.0,
            ..ScenarioConfig::default()
        };
        let s = Scenario::generate(&cfg, 10.0, 7);
        let n = s.tasks.len() as f64;
        // Poisson(1000): within ±15% with overwhelming probability.
        assert!((850.0..1150.0).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ScenarioConfig::default();
        assert_eq!(
            Scenario::generate(&cfg, 2.0, 5),
            Scenario::generate(&cfg, 2.0, 5)
        );
        assert_ne!(
            Scenario::generate(&cfg, 2.0, 5),
            Scenario::generate(&cfg, 2.0, 6)
        );
    }

    #[test]
    fn world_respects_cardinalities() {
        let cfg = ScenarioConfig {
            n_centers: 3,
            n_workers: 10,
            n_delivery_points: 20,
            ..ScenarioConfig::default()
        };
        let s = Scenario::generate(&cfg, 1.0, 2);
        assert_eq!(s.centers.len(), 3);
        assert_eq!(s.workers.len(), 10);
        assert_eq!(s.delivery_points.len(), 20);
        // Round-robin association balances centers.
        let mut counts = [0usize; 3];
        for dp in &s.delivery_points {
            counts[dp.center.index()] += 1;
        }
        assert!(counts.iter().all(|&c| c >= 6));
    }
}

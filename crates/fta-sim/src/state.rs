//! Serialization of mid-day simulator state for the durability layer.
//!
//! Every journaled frame is a *self-contained* recovery point: the full
//! engine loop state (ledgers, worker positions, pending queue, fault-RNG
//! state, churn shape), plus — when incremental solving is on — the seed
//! of the solver's warm caches (the solved [`Instance`], the round's
//! stable worker keys, and each center's equilibrium selections), plus
//! the round's ledger record as a JSON line for forensic reconstruction.
//! Recovery therefore never replays logic; it decodes the newest intact
//! frame and resumes the deterministic event loop, which is what makes
//! the bit-for-bit pin against an uninterrupted run hold.
//!
//! Numbers are stored as IEEE-754 bit patterns / fixed-width LE integers
//! (see [`fta_durable::wire`]): a decimal round-trip would break the
//! bitwise clean-check the incremental solver performs on restored pools.

use crate::engine::{Pending, RoundShape, SimConfig};
use crate::metrics::WorkerLedger;
use crate::scenario::{ArrivingTask, Scenario};
use fta_algorithms::{CacheSeed, CenterSeed};
use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use fta_core::geometry::Point;
use fta_core::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use fta_core::Instance;
use fta_durable::wire::{Reader, Writer};
use fta_durable::DurableError;
use rand::rngs::StdRng;

/// Version byte opening every frame payload.
pub const STATE_VERSION: u8 = 1;

/// The complete mutable state of the engine loop at a round boundary.
pub(crate) struct LoopState {
    pub(crate) now: f64,
    pub(crate) rounds: usize,
    pub(crate) next_arrival: usize,
    pub(crate) tasks_completed: usize,
    pub(crate) tasks_expired: usize,
    pub(crate) tasks_cancelled: usize,
    pub(crate) tasks_abandoned: usize,
    pub(crate) reassignments: usize,
    pub(crate) worker_no_shows: usize,
    pub(crate) route_dropouts: usize,
    pub(crate) degraded_rounds: usize,
    pub(crate) ledgers: Vec<WorkerLedger>,
    pub(crate) busy_until: Vec<f64>,
    pub(crate) location: Vec<Point>,
    pub(crate) pending: Vec<Pending>,
    pub(crate) fault_rng: Option<StdRng>,
    pub(crate) last_round: Option<RoundShape>,
}

/// Solver-cache seed journaled alongside the state on incremental runs.
pub(crate) struct SolverSeed {
    pub(crate) instance: Instance,
    pub(crate) worker_keys: Vec<u64>,
    pub(crate) cache: CacheSeed,
}

/// A fully decoded frame payload.
pub(crate) struct DecodedFrame {
    pub(crate) round: u64,
    pub(crate) state: LoopState,
    pub(crate) solver: Option<SolverSeed>,
    pub(crate) record_json: Vec<u8>,
}

fn encode_point(w: &mut Writer, p: &Point) {
    w.f64(p.x);
    w.f64(p.y);
}

fn decode_point(r: &mut Reader<'_>) -> Result<Point, DurableError> {
    Ok(Point {
        x: r.f64()?,
        y: r.f64()?,
    })
}

fn encode_instance(w: &mut Writer, inst: &Instance) {
    w.seq(&inst.centers, |w, c| encode_point(w, &c.location));
    w.seq(&inst.workers, |w, wk| {
        encode_point(w, &wk.location);
        w.u64(wk.max_dp as u64);
        w.u32(wk.center.0);
    });
    w.seq(&inst.delivery_points, |w, dp| {
        encode_point(w, &dp.location);
        w.u32(dp.center.0);
    });
    w.seq(&inst.tasks, |w, t| {
        w.u32(t.delivery_point.0);
        w.f64(t.expiry);
        w.f64(t.reward);
    });
    w.f64(inst.speed);
}

fn decode_instance(r: &mut Reader<'_>) -> Result<Instance, DurableError> {
    let mut idx = 0usize;
    let centers = r.seq(|r| {
        let location = decode_point(r)?;
        let c = DistributionCenter {
            id: CenterId::from_index(idx),
            location,
        };
        idx += 1;
        Ok(c)
    })?;
    let mut idx = 0usize;
    let workers = r.seq(|r| {
        let location = decode_point(r)?;
        let max_dp = r.u64()? as usize;
        let center = CenterId(r.u32()?);
        let w = Worker {
            id: WorkerId::from_index(idx),
            location,
            max_dp,
            center,
        };
        idx += 1;
        Ok(w)
    })?;
    let mut idx = 0usize;
    let delivery_points = r.seq(|r| {
        let location = decode_point(r)?;
        let center = CenterId(r.u32()?);
        let dp = DeliveryPoint {
            id: DeliveryPointId::from_index(idx),
            location,
            center,
        };
        idx += 1;
        Ok(dp)
    })?;
    let mut idx = 0usize;
    let tasks = r.seq(|r| {
        let delivery_point = DeliveryPointId(r.u32()?);
        let expiry = r.f64()?;
        let reward = r.f64()?;
        let t = SpatialTask {
            id: TaskId::from_index(idx),
            delivery_point,
            expiry,
            reward,
        };
        idx += 1;
        Ok(t)
    })?;
    let speed = r.f64()?;
    Instance::new(centers, workers, delivery_points, tasks, speed)
        .map_err(|_| DurableError::Corrupt("journaled instance violates invariants"))
}

fn encode_state(w: &mut Writer, st: &LoopState) {
    w.f64(st.now);
    w.u64(st.rounds as u64);
    w.u64(st.next_arrival as u64);
    w.u64(st.tasks_completed as u64);
    w.u64(st.tasks_expired as u64);
    w.u64(st.tasks_cancelled as u64);
    w.u64(st.tasks_abandoned as u64);
    w.u64(st.reassignments as u64);
    w.u64(st.worker_no_shows as u64);
    w.u64(st.route_dropouts as u64);
    w.u64(st.degraded_rounds as u64);
    w.seq(&st.ledgers, |w, l| {
        w.f64(l.earnings);
        w.f64(l.busy_hours);
        w.u64(l.routes as u64);
        w.u64(l.tasks_delivered as u64);
    });
    w.seq(&st.busy_until, |w, &b| w.f64(b));
    w.seq(&st.location, encode_point);
    w.seq(&st.pending, |w, p| {
        w.f64(p.task.arrival);
        w.u32(p.task.delivery_point.0);
        w.f64(p.task.deadline);
        w.f64(p.task.reward);
        w.opt(&p.cancel_at, |w, &c| w.f64(c));
        w.u32(p.retries);
        w.f64(p.eligible_after);
    });
    w.opt(&st.fault_rng, |w, rng| {
        for s in rng.state() {
            w.u64(s);
        }
    });
    w.opt(&st.last_round, |w, lr| {
        w.f64(lr.now);
        w.seq(&lr.center_workers, |w, cw| {
            w.seq(cw, |w, &orig| w.u64(orig as u64));
        });
        w.seq(&lr.center_tasks, |w, &t| w.u64(t));
    });
}

fn decode_state(r: &mut Reader<'_>) -> Result<LoopState, DurableError> {
    let now = r.f64()?;
    let rounds = r.u64()? as usize;
    let next_arrival = r.u64()? as usize;
    let tasks_completed = r.u64()? as usize;
    let tasks_expired = r.u64()? as usize;
    let tasks_cancelled = r.u64()? as usize;
    let tasks_abandoned = r.u64()? as usize;
    let reassignments = r.u64()? as usize;
    let worker_no_shows = r.u64()? as usize;
    let route_dropouts = r.u64()? as usize;
    let degraded_rounds = r.u64()? as usize;
    let ledgers = r.seq(|r| {
        Ok(WorkerLedger {
            earnings: r.f64()?,
            busy_hours: r.f64()?,
            routes: r.u64()? as usize,
            tasks_delivered: r.u64()? as usize,
        })
    })?;
    let busy_until = r.seq(Reader::f64)?;
    let location = r.seq(decode_point)?;
    let pending = r.seq(|r| {
        let task = ArrivingTask {
            arrival: r.f64()?,
            delivery_point: DeliveryPointId(r.u32()?),
            deadline: r.f64()?,
            reward: r.f64()?,
        };
        Ok(Pending {
            task,
            cancel_at: r.opt(Reader::f64)?,
            retries: r.u32()?,
            eligible_after: r.f64()?,
        })
    })?;
    let fault_rng = r
        .opt(|r| Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?]))?
        .map(StdRng::from_state);
    let last_round = r.opt(|r| {
        let now = r.f64()?;
        let center_workers = r.seq(|r| r.seq(|r| Ok(r.u64()? as usize)))?;
        let center_tasks = r.seq(Reader::u64)?;
        Ok(RoundShape {
            now,
            center_workers,
            center_tasks,
        })
    })?;
    Ok(LoopState {
        now,
        rounds,
        next_arrival,
        tasks_completed,
        tasks_expired,
        tasks_cancelled,
        tasks_abandoned,
        reassignments,
        worker_no_shows,
        route_dropouts,
        degraded_rounds,
        ledgers,
        busy_until,
        location,
        pending,
        fault_rng,
        last_round,
    })
}

/// Encodes one round's self-contained frame payload. The solver-cache
/// seed is passed by parts (`instance`, stable worker keys, cache) so the
/// hot journaling path never clones the round's [`Instance`].
pub(crate) fn encode_frame(
    round: u64,
    st: &LoopState,
    solver: Option<(&Instance, &[u64], &CacheSeed)>,
    record_json: &[u8],
) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(STATE_VERSION);
    w.u64(round);
    encode_state(&mut w, st);
    match solver {
        None => w.u8(0),
        Some((instance, worker_keys, cache)) => {
            w.u8(1);
            encode_instance(&mut w, instance);
            w.seq(worker_keys, |w, &k| w.u64(k));
            w.seq(&cache.centers, |w, c| {
                w.u32(c.center);
                w.seq(&c.selections, |w, sel| {
                    w.opt(sel, |w, &mask| w.u128(mask));
                });
            });
        }
    }
    w.bytes(record_json);
    w.into_bytes()
}

/// Decodes a frame payload produced by [`encode_frame`].
pub(crate) fn decode_frame(payload: &[u8]) -> Result<DecodedFrame, DurableError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != STATE_VERSION {
        return Err(DurableError::BadVersion {
            expected: u32::from(STATE_VERSION),
            found: u32::from(version),
        });
    }
    let round = r.u64()?;
    let state = decode_state(&mut r)?;
    let solver = match r.u8()? {
        0 => None,
        1 => {
            let instance = decode_instance(&mut r)?;
            let worker_keys = r.seq(Reader::u64)?;
            let centers = r.seq(|r| {
                let center = r.u32()?;
                let selections = r.seq(|r| r.opt(Reader::u128))?;
                Ok(CenterSeed { center, selections })
            })?;
            Some(SolverSeed {
                instance,
                worker_keys,
                cache: CacheSeed { centers },
            })
        }
        _ => return Err(DurableError::Corrupt("bad solver-seed discriminant")),
    };
    let record_json = r.bytes()?.to_vec();
    r.finish()?;
    Ok(DecodedFrame {
        round,
        state,
        solver,
        record_json,
    })
}

/// Human-readable summary of one journaled frame, decoded without the
/// scenario — what `fta wal-dump` prints per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameInfo {
    /// 1-based assignment round the frame captures the state after.
    pub round: u64,
    /// Simulated instant of that round, hours.
    pub sim_hours: f64,
    /// Cumulative completed tasks.
    pub tasks_completed: u64,
    /// Cumulative expired tasks.
    pub tasks_expired: u64,
    /// Cumulative cancelled tasks.
    pub tasks_cancelled: u64,
    /// Cumulative abandoned tasks.
    pub tasks_abandoned: u64,
    /// Tasks pending (unassigned) at the frame instant.
    pub pending: u64,
    /// Workers in the scenario.
    pub workers: u64,
    /// Sum of banked earnings across all worker ledgers.
    pub earnings_total: f64,
    /// Whether the frame carries a fault-RNG state (faulted run).
    pub has_fault_rng: bool,
    /// Whether the frame carries a solver-cache seed (incremental run).
    pub has_solver_cache: bool,
    /// Whether the frame carries the round's ledger record.
    pub has_ledger_record: bool,
}

/// Decodes the summary of one frame payload (see [`FrameInfo`]).
pub fn frame_info(payload: &[u8]) -> Result<FrameInfo, DurableError> {
    let f = decode_frame(payload)?;
    Ok(FrameInfo {
        round: f.round,
        sim_hours: f.state.now,
        tasks_completed: f.state.tasks_completed as u64,
        tasks_expired: f.state.tasks_expired as u64,
        tasks_cancelled: f.state.tasks_cancelled as u64,
        tasks_abandoned: f.state.tasks_abandoned as u64,
        pending: f.state.pending.len() as u64,
        workers: f.state.ledgers.len() as u64,
        earnings_total: f.state.ledgers.iter().map(|l| l.earnings).sum(),
        has_fault_rng: f.state.fault_rng.is_some(),
        has_solver_cache: f.solver.is_some(),
        has_ledger_record: !f.record_json.is_empty(),
    })
}

/// 64-bit FNV-1a over `data`.
fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fingerprint of (scenario, config): recovery refuses to restore a
/// journal written under a different world or policy, because the resumed
/// day would be silently plausible and silently wrong. The durable
/// settings themselves (directory, fsync policy, snapshot cadence, crash
/// drill) are deliberately excluded — recovering with a different fsync
/// policy is legitimate.
pub(crate) fn fingerprint(scenario: &Scenario, config: &SimConfig) -> u64 {
    let mut w = Writer::new();
    w.bytes(b"fta-sim-state-v1");
    w.u64(scenario.centers.len() as u64);
    w.u64(scenario.delivery_points.len() as u64);
    w.u64(scenario.workers.len() as u64);
    w.u64(scenario.tasks.len() as u64);
    for c in &scenario.centers {
        encode_point(&mut w, &c.location);
    }
    for dp in &scenario.delivery_points {
        encode_point(&mut w, &dp.location);
        w.u32(dp.center.0);
    }
    for wk in &scenario.workers {
        encode_point(&mut w, &wk.location);
        w.u64(wk.max_dp as u64);
        w.u32(wk.center.0);
    }
    for t in &scenario.tasks {
        w.f64(t.arrival);
        w.u32(t.delivery_point.0);
        w.f64(t.deadline);
        w.f64(t.reward);
    }
    w.f64(scenario.config.speed);
    w.f64(config.horizon);
    w.f64(config.assignment_period);
    // Policy, VDPS, budget, and fault settings are folded in through their
    // (deterministic) Debug rendering; derive-generated and stable.
    w.bytes(format!("{:?}", config.policy).as_bytes());
    w.bytes(format!("{:?}", config.vdps).as_bytes());
    w.bytes(format!("{:?}", config.budget).as_bytes());
    w.bytes(format!("{:?}", config.faults).as_bytes());
    w.bytes(format!("{:?}", config.shards).as_bytes());
    w.bytes(format!("{:?}", config.shard_by).as_bytes());
    w.u8(u8::from(config.parallel));
    w.u8(u8::from(config.incremental));
    fnv64(&w.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_algorithms::Algorithm;
    use rand::{Rng, SeedableRng};

    fn sample_state() -> LoopState {
        let mut rng = StdRng::seed_from_u64(3);
        rng.gen_range(0.0f64..1.0);
        LoopState {
            now: 1.25,
            rounds: 5,
            next_arrival: 17,
            tasks_completed: 9,
            tasks_expired: 2,
            tasks_cancelled: 1,
            tasks_abandoned: 0,
            reassignments: 3,
            worker_no_shows: 1,
            route_dropouts: 2,
            degraded_rounds: 0,
            ledgers: vec![
                WorkerLedger {
                    earnings: 4.5,
                    busy_hours: 1.75,
                    routes: 3,
                    tasks_delivered: 5,
                },
                WorkerLedger::default(),
            ],
            busy_until: vec![1.5, 0.25],
            location: vec![Point { x: 0.5, y: -1.0 }, Point { x: 2.0, y: 3.0 }],
            pending: vec![Pending {
                task: ArrivingTask {
                    arrival: 0.7,
                    delivery_point: DeliveryPointId(4),
                    deadline: 2.1,
                    reward: 1.0,
                },
                cancel_at: Some(1.9),
                retries: 1,
                eligible_after: 1.5,
            }],
            fault_rng: Some(rng),
            last_round: Some(RoundShape {
                now: 1.25,
                center_workers: vec![vec![0], vec![1]],
                center_tasks: vec![3, 0],
            }),
        }
    }

    #[test]
    fn frame_round_trips_bitwise() {
        let st = sample_state();
        let payload = encode_frame(5, &st, None, b"{\"type\":\"solve\"}");
        let decoded = decode_frame(&payload).unwrap();
        assert_eq!(decoded.round, 5);
        let d = &decoded.state;
        assert_eq!(d.now.to_bits(), st.now.to_bits());
        assert_eq!(d.rounds, st.rounds);
        assert_eq!(d.next_arrival, st.next_arrival);
        assert_eq!(d.ledgers, st.ledgers);
        assert_eq!(
            d.busy_until.iter().map(|b| b.to_bits()).collect::<Vec<_>>(),
            st.busy_until
                .iter()
                .map(|b| b.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(d.pending.len(), 1);
        assert_eq!(d.pending[0].cancel_at, st.pending[0].cancel_at);
        assert_eq!(decoded.record_json, b"{\"type\":\"solve\"}");
        // The restored RNG continues the exact same stream.
        let mut a = st.fault_rng.clone().unwrap();
        let mut b = d.fault_rng.clone().unwrap();
        for _ in 0..20 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
        let lr = d.last_round.as_ref().unwrap();
        assert_eq!(lr.center_workers, vec![vec![0], vec![1]]);
        assert_eq!(lr.center_tasks, vec![3, 0]);
    }

    #[test]
    fn version_mismatch_is_typed() {
        let st = sample_state();
        let mut payload = encode_frame(1, &st, None, b"");
        payload[0] = 9;
        assert!(matches!(
            decode_frame(&payload),
            Err(DurableError::BadVersion { found: 9, .. })
        ));
    }

    #[test]
    fn truncated_payload_is_typed_not_panic() {
        let st = sample_state();
        let payload = encode_frame(1, &st, None, b"r");
        for cut in [1usize, 8, 20, payload.len() - 1] {
            assert!(decode_frame(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn frame_info_summarises_without_scenario() {
        let st = sample_state();
        let payload = encode_frame(5, &st, None, b"{}");
        let info = frame_info(&payload).unwrap();
        assert_eq!(info.round, 5);
        assert_eq!(info.tasks_completed, 9);
        assert_eq!(info.pending, 1);
        assert_eq!(info.workers, 2);
        assert!((info.earnings_total - 4.5).abs() < 1e-12);
        assert!(info.has_fault_rng);
        assert!(!info.has_solver_cache);
        assert!(info.has_ledger_record);
    }

    #[test]
    fn fingerprint_separates_scenarios_and_configs() {
        let s1 = Scenario::generate(&crate::scenario::ScenarioConfig::default(), 1.0, 1);
        let s2 = Scenario::generate(&crate::scenario::ScenarioConfig::default(), 1.0, 2);
        let cfg = SimConfig::day(Algorithm::Gta);
        let f1 = fingerprint(&s1, &cfg);
        assert_eq!(f1, fingerprint(&s1, &cfg), "fingerprint must be stable");
        assert_ne!(f1, fingerprint(&s2, &cfg), "different scenario, same print");
        let mut other = cfg.clone();
        other.incremental = true;
        assert_ne!(f1, fingerprint(&s1, &other), "different config, same print");
    }
}

//! Seeded fault injection for the simulator.
//!
//! A [`FaultPlan`] describes a deterministic stochastic adversary layered
//! over a simulation run: couriers who accept a route and never start it,
//! couriers who abandon mid-route, requesters who cancel tasks after
//! posting them, and travel times that come in worse than planned. The
//! plan carries its own seed, so the same `(Scenario, SimConfig)` pair
//! always produces the same faults and therefore the same
//! [`DayMetrics`](crate::DayMetrics) — chaos, but reproducible chaos.
//!
//! The engine reacts with *requeue-on-failure*: tasks on a failed route
//! return to the pending pool with a retry counter and a backoff window,
//! and are abandoned once the retry budget is exhausted. See
//! [`run`](crate::run) for the exact mechanics.

/// A deterministic fault-injection plan for one simulation run.
///
/// All probabilities are per-event Bernoulli draws from a dedicated RNG
/// seeded with [`FaultPlan::seed`]; setting every rate to zero yields a
/// plan that provably changes nothing (the fault RNG never feeds back
/// into dispatch decisions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault RNG (independent of the scenario seed).
    pub seed: u64,
    /// Probability that an assigned worker never starts the route
    /// (a *no-show*): the worker stays idle and every task on the route
    /// is requeued.
    pub p_no_show: f64,
    /// Probability that a worker abandons a started route partway
    /// (a *dropout*): a uniformly drawn prefix of stops is delivered and
    /// the tasks at the remaining stops are requeued.
    pub p_dropout: f64,
    /// Probability that an arriving task is cancelled by its requester
    /// at a uniformly drawn instant between arrival and deadline.
    pub p_cancel: f64,
    /// Log-normal travel-time inflation: each executed route's travel
    /// time is multiplied by `exp(travel_sigma * z)` with `z` standard
    /// normal. Zero disables inflation. Inflation delays the worker's
    /// return to the idle pool (and accrues busy hours) but does not
    /// retroactively fail deliveries.
    pub travel_sigma: f64,
    /// How many times a task may be requeued after failed routes before
    /// it is abandoned. `0` means any failure abandons the task.
    pub max_retries: u32,
    /// Hours a requeued task must wait before it is eligible for
    /// reassignment (a retry backoff).
    pub backoff: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            p_no_show: 0.0,
            p_dropout: 0.0,
            p_cancel: 0.0,
            travel_sigma: 0.0,
            max_retries: 0,
            backoff: 0.0,
        }
    }

    /// A stress preset: 10% no-shows, 5% dropouts, 5% cancellations,
    /// moderate travel inflation, two retries with a 15-minute backoff.
    #[must_use]
    pub fn stress(seed: u64) -> Self {
        Self {
            seed,
            p_no_show: 0.10,
            p_dropout: 0.05,
            p_cancel: 0.05,
            travel_sigma: 0.25,
            max_retries: 2,
            backoff: 0.25,
        }
    }

    /// Whether every fault channel is disabled.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.p_no_show == 0.0
            && self.p_dropout == 0.0
            && self.p_cancel == 0.0
            && self.travel_sigma == 0.0
    }

    /// Validates the plan: probabilities in `[0, 1]`, non-negative and
    /// finite sigma/backoff.
    ///
    /// # Errors
    ///
    /// Returns a description of the first offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("p_no_show", self.p_no_show),
            ("p_dropout", self.p_dropout),
            ("p_cancel", self.p_cancel),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        if !self.travel_sigma.is_finite() || self.travel_sigma < 0.0 {
            return Err(format!(
                "travel_sigma must be finite and >= 0, got {}",
                self.travel_sigma
            ));
        }
        if !self.backoff.is_finite() || self.backoff < 0.0 {
            return Err(format!(
                "backoff must be finite and >= 0, got {}",
                self.backoff
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none_and_valid() {
        let p = FaultPlan::none(1);
        assert!(p.is_none());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn stress_is_faulty_and_valid() {
        let p = FaultPlan::stress(1);
        assert!(!p.is_none());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_fields() {
        assert!(FaultPlan {
            p_no_show: 1.5,
            ..FaultPlan::none(0)
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            p_cancel: -0.1,
            ..FaultPlan::none(0)
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            travel_sigma: f64::NAN,
            ..FaultPlan::none(0)
        }
        .validate()
        .is_err());
        assert!(FaultPlan {
            backoff: -1.0,
            ..FaultPlan::none(0)
        }
        .validate()
        .is_err());
    }
}

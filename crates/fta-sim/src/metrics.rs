//! Longitudinal outcomes of a simulated day.

use fta_core::fairness::FairnessReport;
use fta_core::WorkerId;

/// Per-worker running totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerLedger {
    /// Total reward earned so far.
    pub earnings: f64,
    /// Hours spent travelling (busy).
    pub busy_hours: f64,
    /// Number of delivery routes completed.
    pub routes: usize,
    /// Number of tasks delivered.
    pub tasks_delivered: usize,
}

/// End-of-horizon metrics of one simulation run.
///
/// Task accounting is conserved even under fault injection:
/// `tasks_completed + tasks_expired + tasks_pending + tasks_cancelled +
/// tasks_abandoned == tasks_arrived`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DayMetrics {
    /// One ledger per worker, indexed by [`WorkerId`].
    pub ledgers: Vec<WorkerLedger>,
    /// Tasks that arrived during the horizon.
    pub tasks_arrived: usize,
    /// Tasks delivered before their deadline.
    pub tasks_completed: usize,
    /// Tasks that expired unassigned.
    pub tasks_expired: usize,
    /// Tasks still pending when the horizon ended.
    pub tasks_pending: usize,
    /// Tasks cancelled by their requester (fault injection).
    pub tasks_cancelled: usize,
    /// Tasks dropped after exhausting their requeue retry budget
    /// (fault injection).
    pub tasks_abandoned: usize,
    /// Task-requeue events: each time a failed route returned a task to
    /// the pending pool for another attempt.
    pub reassignments: usize,
    /// Routes whose assigned worker never started them (fault injection).
    pub worker_no_shows: usize,
    /// Routes abandoned partway by their worker (fault injection).
    pub route_dropouts: usize,
    /// Assignment rounds whose solve degraded down the ladder (budgeted
    /// runs only; see `fta_algorithms::DegradationReport`).
    pub degraded_rounds: usize,
    /// Number of assignment rounds executed.
    pub rounds: usize,
    /// Simulated horizon, hours.
    pub horizon: f64,
}

impl DayMetrics {
    /// Fraction of arrived tasks delivered on time.
    #[must_use]
    pub fn completion_rate(&self) -> f64 {
        if self.tasks_arrived == 0 {
            return 1.0;
        }
        self.tasks_completed as f64 / self.tasks_arrived as f64
    }

    /// Tasks lost to faults: cancelled by requesters plus abandoned after
    /// exhausting their retry budget.
    #[must_use]
    pub fn tasks_lost_to_faults(&self) -> usize {
        self.tasks_cancelled + self.tasks_abandoned
    }

    /// Whether the task accounting identity holds (`completed + expired +
    /// pending + cancelled + abandoned == arrived`). Always true for
    /// engine-produced metrics; useful as a test invariant.
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.tasks_completed
            + self.tasks_expired
            + self.tasks_pending
            + self.tasks_cancelled
            + self.tasks_abandoned
            == self.tasks_arrived
    }

    /// Per-worker earnings, in worker-id order.
    #[must_use]
    pub fn earnings(&self) -> Vec<f64> {
        self.ledgers.iter().map(|l| l.earnings).collect()
    }

    /// Fairness of the day's cumulative earnings — the longitudinal
    /// counterpart of the paper's per-assignment payoff difference.
    #[must_use]
    pub fn earnings_fairness(&self) -> FairnessReport {
        FairnessReport::from_payoffs(&self.earnings())
    }

    /// Mean fraction of the horizon each worker spent travelling.
    #[must_use]
    pub fn mean_utilization(&self) -> f64 {
        if self.ledgers.is_empty() || self.horizon <= 0.0 {
            return 0.0;
        }
        self.ledgers
            .iter()
            .map(|l| l.busy_hours / self.horizon)
            .sum::<f64>()
            / self.ledgers.len() as f64
    }

    /// The busiest worker by earnings, if any earned anything.
    #[must_use]
    pub fn top_earner(&self) -> Option<(WorkerId, f64)> {
        self.ledgers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.earnings > 0.0)
            .max_by(|a, b| a.1.earnings.total_cmp(&b.1.earnings))
            .map(|(i, l)| (WorkerId::from_index(i), l.earnings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(earnings: &[f64]) -> DayMetrics {
        DayMetrics {
            ledgers: earnings
                .iter()
                .map(|&e| WorkerLedger {
                    earnings: e,
                    busy_hours: 2.0,
                    routes: 1,
                    tasks_delivered: 2,
                })
                .collect(),
            tasks_arrived: 10,
            tasks_completed: 6,
            tasks_expired: 3,
            tasks_pending: 1,
            rounds: 4,
            horizon: 8.0,
            ..DayMetrics::default()
        }
    }

    #[test]
    fn completion_rate_is_completed_over_arrived() {
        let m = metrics(&[1.0, 2.0]);
        assert!((m.completion_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_day_is_vacuously_complete() {
        let m = DayMetrics::default();
        assert_eq!(m.completion_rate(), 1.0);
        assert_eq!(m.mean_utilization(), 0.0);
        assert!(m.top_earner().is_none());
    }

    #[test]
    fn earnings_fairness_uses_the_standard_metrics() {
        let m = metrics(&[2.0, 2.0, 2.0]);
        assert_eq!(m.earnings_fairness().payoff_difference, 0.0);
        let m = metrics(&[0.0, 4.0]);
        assert!(m.earnings_fairness().payoff_difference > 0.0);
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let m = metrics(&[1.0, 1.0]);
        assert!((m.mean_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conservation_accounts_for_fault_losses() {
        let mut m = metrics(&[1.0]);
        assert!(m.is_conserved());
        m.tasks_cancelled = 1;
        assert!(!m.is_conserved());
        m.tasks_arrived += 1;
        assert!(m.is_conserved());
        m.tasks_abandoned = 2;
        m.tasks_arrived += 2;
        assert!(m.is_conserved());
        assert_eq!(m.tasks_lost_to_faults(), 3);
    }

    #[test]
    fn top_earner_is_nan_robust() {
        let m = metrics(&[1.0, f64::NAN, 3.0]);
        // total_cmp orders NaN above every finite value; the point is that
        // this must not panic even on poisoned ledgers.
        assert!(m.top_earner().is_some());
    }

    #[test]
    fn top_earner_picks_the_maximum() {
        let m = metrics(&[1.0, 5.0, 3.0]);
        let (w, e) = m.top_earner().unwrap();
        assert_eq!(w, WorkerId(1));
        assert_eq!(e, 5.0);
    }
}

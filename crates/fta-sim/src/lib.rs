//! # fta-sim — a streaming spatial-crowdsourcing platform simulator
//!
//! The paper assigns "all the available tasks and workers at a particular
//! time instance" (Section III) — i.e. a real platform runs the FTA solver
//! periodically over a *stream* of tasks, with workers going offline while
//! they deliver and coming back online where their last route ended. This
//! crate provides that surrounding platform as a discrete-event simulator,
//! so the single-instant algorithms of `fta-algorithms` can be evaluated
//! longitudinally:
//!
//! * [`scenario`] — the static world (distribution centers, delivery
//!   points, worker homes) plus stochastic task arrivals (Poisson process,
//!   seeded and deterministic);
//! * [`engine`] — the event loop: every `assignment_period` hours the
//!   platform snapshots pending tasks and idle workers into an
//!   [`Instance`](fta_core::Instance), runs the configured assignment
//!   algorithm, and applies the result (workers become busy, tasks
//!   complete or expire);
//! * [`metrics`] — longitudinal outcomes: per-worker cumulative earnings,
//!   task completion/expiration counts, utilisation, and end-of-day
//!   earnings fairness;
//! * [`faults`] — a seeded fault-injection layer (worker no-shows,
//!   mid-route dropouts, task cancellations, log-normal travel-time
//!   inflation) with requeue-on-failure and bounded retries, for testing
//!   how the assignment algorithms hold up on a bad day.
//!
//! The headline use: compare GTA and IEGT not on one assignment but on a
//! simulated working day, where the paper's motivation — fair payoffs keep
//! workers participating — becomes measurable as the distribution of
//! *daily earnings*. See `examples/simulation_day.rs`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod faults;
pub mod metrics;
pub mod scenario;
pub mod state;

pub use engine::{
    restore, restore_with_ledger, run, run_with_ledger, DispatchPolicy, DurableConfig,
    RecoveryInfo, SimConfig, SimReport,
};
pub use faults::FaultPlan;
pub use metrics::{DayMetrics, WorkerLedger};
pub use scenario::{Scenario, ScenarioConfig};
pub use state::{frame_info, FrameInfo};

//! Property-based tests of the simulation engine: conservation laws and
//! physical plausibility must hold for every scenario and policy.

use fta_algorithms::{Algorithm, IegtConfig};
use fta_sim::{run, FaultPlan, Scenario, ScenarioConfig, SimConfig};
use fta_vdps::VdpsConfig;
use proptest::prelude::*;

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        1u64..1000,     // seed
        2usize..10,     // workers
        4usize..20,     // delivery points
        10.0f64..120.0, // arrival rate
        0.5f64..3.0,    // expiry offset
    )
        .prop_map(|(seed, n_workers, n_dps, rate, expiry)| {
            Scenario::generate(
                &ScenarioConfig {
                    n_workers,
                    n_delivery_points: n_dps,
                    extent: 3.0,
                    arrival_rate: rate,
                    expiry_offset: expiry,
                    ..ScenarioConfig::default()
                },
                2.0,
                seed,
            )
        })
}

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (0.1f64..0.6, prop::bool::ANY).prop_map(|(period, fair)| SimConfig {
        horizon: 2.0,
        assignment_period: period,
        policy: fta_sim::DispatchPolicy::Batch(if fair {
            Algorithm::Iegt(IegtConfig::default())
        } else {
            Algorithm::Gta
        }),
        vdps: VdpsConfig::pruned(1.5, 3),
        ..SimConfig::day(Algorithm::Gta)
    })
}

fn arb_faults() -> impl Strategy<Value = FaultPlan> {
    (
        (
            0u64..1000,  // fault seed
            0.0f64..0.5, // no-show rate
            0.0f64..0.5, // dropout rate
            0.0f64..0.5, // cancel rate
        ),
        (
            0.0f64..0.5, // travel sigma
            0u32..4,     // retry budget
            0.0f64..0.5, // backoff hours
        ),
    )
        .prop_map(
            |((seed, p_no_show, p_dropout, p_cancel), (travel_sigma, max_retries, backoff))| {
                FaultPlan {
                    seed,
                    p_no_show,
                    p_dropout,
                    p_cancel,
                    travel_sigma,
                    max_retries,
                    backoff,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tasks_are_conserved(scenario in arb_scenario(), config in arb_config()) {
        let m = run(&scenario, &config);
        prop_assert_eq!(m.tasks_arrived, scenario.tasks.len());
        prop_assert_eq!(
            m.tasks_completed + m.tasks_expired + m.tasks_pending,
            m.tasks_arrived
        );
        let delivered: usize = m.ledgers.iter().map(|l| l.tasks_delivered).sum();
        prop_assert_eq!(delivered, m.tasks_completed);
    }

    #[test]
    fn earnings_equal_delivered_rewards(
        scenario in arb_scenario(),
        config in arb_config(),
    ) {
        let m = run(&scenario, &config);
        let total: f64 = m.ledgers.iter().map(|l| l.earnings).sum();
        // Unit rewards in the default scenario config.
        prop_assert!((total - m.tasks_completed as f64).abs() < 1e-6);
    }

    #[test]
    fn ledgers_are_physically_plausible(
        scenario in arb_scenario(),
        config in arb_config(),
    ) {
        let m = run(&scenario, &config);
        for l in &m.ledgers {
            prop_assert!(l.earnings >= 0.0);
            prop_assert!(l.busy_hours >= 0.0);
            // A worker can hold at most one route at a time, each started
            // within the horizon; the final route may overhang.
            prop_assert!(l.busy_hours <= m.horizon + scenario.config.expiry_offset + 3.0);
            if l.routes == 0 {
                prop_assert_eq!(l.tasks_delivered, 0);
                prop_assert!(l.earnings.abs() < 1e-12);
            }
        }
    }

    #[test]
    fn runs_are_deterministic(scenario in arb_scenario(), config in arb_config()) {
        prop_assert_eq!(run(&scenario, &config), run(&scenario, &config));
    }

    #[test]
    fn faulted_runs_conserve_tasks_and_are_deterministic(
        scenario in arb_scenario(),
        config in arb_config(),
        plan in arb_faults(),
    ) {
        let cfg = config.with_faults(plan);
        let m = run(&scenario, &cfg);
        prop_assert_eq!(m.tasks_arrived, scenario.tasks.len());
        prop_assert!(
            m.is_conserved(),
            "completed {} + expired {} + pending {} + cancelled {} + abandoned {} != arrived {}",
            m.tasks_completed, m.tasks_expired, m.tasks_pending,
            m.tasks_cancelled, m.tasks_abandoned, m.tasks_arrived
        );
        let delivered: usize = m.ledgers.iter().map(|l| l.tasks_delivered).sum();
        prop_assert_eq!(delivered, m.tasks_completed);
        // Same scenario + same fault seed reproduces the same day.
        prop_assert_eq!(m, run(&scenario, &cfg));
    }
}

//! Crash-injection harness: a journaled day is "crashed" by truncating
//! its commit log at a fuzzed byte offset — any offset, including
//! mid-header and mid-payload — and recovery must either finish the day
//! **bit-for-bit** equal to the uninterrupted run or fail typed with
//! `NoState` (when the cut destroyed every recovery point). Nothing in
//! between: no panics, no silently-divergent days, and the conservation
//! identity holds on every recovered outcome.

use fta_algorithms::Algorithm;
use fta_sim::engine::DurableConfig;
use fta_sim::{restore, run, DayMetrics, FaultPlan, Scenario, ScenarioConfig, SimConfig};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

struct Fixture {
    scenario: Scenario,
    config: SimConfig,
    uninterrupted: DayMetrics,
    /// Pristine bytes of the full day's commit log (no snapshots: the
    /// fixture uses an effectively-infinite snapshot cadence so every
    /// round survives in the log and any prefix is a valid crash state).
    wal: Vec<u8>,
}

fn dir_for(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fta-crash-harness-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = Scenario::generate(
            &ScenarioConfig {
                n_workers: 8,
                n_delivery_points: 20,
                extent: 3.0,
                arrival_rate: 60.0,
                ..ScenarioConfig::default()
            },
            2.0,
            424_242,
        );
        let dir = dir_for("fixture");
        let config = SimConfig {
            horizon: 2.0,
            assignment_period: 0.25,
            vdps: fta_vdps::VdpsConfig::pruned(1.5, 3),
            ..SimConfig::day(Algorithm::Gta)
        }
        .with_faults(FaultPlan::stress(99))
        .with_durable(DurableConfig {
            dir: dir.clone(),
            fsync: fta_durable::FsyncPolicy::Never,
            snapshot_every: u64::MAX,
            crash_after_round: None,
        });
        let uninterrupted = run(&scenario, &config);
        let wal = fs::read(dir.join(fta_durable::WAL_FILE)).expect("journaled wal exists");
        let _ = fs::remove_dir_all(&dir);
        Fixture {
            scenario,
            config,
            uninterrupted,
            wal,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_truncation_point_recovers_bit_for_bit_or_fails_typed(frac in 0.0f64..1.0) {
        let fx = fixture();
        let cut = ((fx.wal.len() as f64) * frac) as usize;
        let dir = dir_for("case");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(fta_durable::WAL_FILE), &fx.wal[..cut]).unwrap();
        let mut config = fx.config.clone();
        config.durable.as_mut().unwrap().dir.clone_from(&dir);

        match restore(&fx.scenario, &config) {
            Ok((recovered, info)) => {
                prop_assert_eq!(
                    &recovered,
                    &fx.uninterrupted,
                    "cut at byte {} of {} diverged (resumed round {})",
                    cut,
                    fx.wal.len(),
                    info.resumed_round
                );
                prop_assert!(recovered.is_conserved(), "conservation broken: {recovered:?}");
                prop_assert!(info.resumed_round >= 1);
            }
            // The cut destroyed every clean frame: the only acceptable
            // failure, and it must be the typed one.
            Err(fta_durable::DurableError::NoState) => {}
            Err(other) => prop_assert!(false, "unexpected recovery error: {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn wal_dump_decodes_a_fault_injected_journal() {
    // Every clean frame of a faulted day's journal must decode to a
    // plausible FrameInfo — the CLI `fta wal-dump` path end to end.
    let fx = fixture();
    let log_frames = {
        let dir = dir_for("dump");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(fta_durable::WAL_FILE), &fx.wal).unwrap();
        let log = fta_durable::read_log(&dir.join(fta_durable::WAL_FILE)).unwrap();
        let _ = fs::remove_dir_all(&dir);
        log
    };
    assert!(!log_frames.frames.is_empty());
    assert!(!log_frames.torn_tail);
    let mut prev_round = 0u64;
    for frame in &log_frames.frames {
        let info = fta_sim::frame_info(frame).expect("clean frame decodes");
        assert!(
            info.round > prev_round,
            "rounds must be strictly increasing"
        );
        prev_round = info.round;
        assert_eq!(info.workers, fx.scenario.workers.len() as u64);
        assert!(info.sim_hours > 0.0 && info.sim_hours <= 2.0);
        assert!(info.has_fault_rng, "faulted day journals its RNG stream");
        assert!(
            info.has_ledger_record,
            "durable batch rounds journal records"
        );
    }
    // The final frame's cumulative counters are bounded by the day's.
    let last = fta_sim::frame_info(log_frames.frames.last().unwrap()).unwrap();
    assert!(last.tasks_completed <= fx.uninterrupted.tasks_completed as u64);
    let day_total: f64 = fx.uninterrupted.earnings().iter().sum();
    assert!(last.earnings_total <= day_total + 1e-9);
}

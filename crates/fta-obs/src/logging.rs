//! Leveled stderr logging behind the [`crate::log!`] macro family.
//!
//! The maximum level is read once from the `FTA_LOG` environment
//! variable (`error`, `warn`, `info`, `debug`, or `off`; default
//! `info`) and cached in an atomic, so a filtered-out log line costs
//! one relaxed load. Diagnostics go to stderr; user-facing result
//! output belongs on stdout and must not use these macros.
//!
//! Lines carry a monotonic elapsed-milliseconds prefix (since the first
//! log call of the process). `FTA_LOG_FORMAT=json` switches stderr to
//! one JSON object per line (`{"t_ms":…,"level":…,"msg":…}`) for
//! machine consumption; any other value (or unset) keeps the
//! human-readable `[   123ms] level: message` form.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-visible failures. Never filtered out
    /// (except by `FTA_LOG=off`).
    Error = 0,
    /// Suspicious conditions worth surfacing by default.
    Warn = 1,
    /// Progress diagnostics; shown by default.
    Info = 2,
    /// Verbose tracing; hidden unless `FTA_LOG=debug`.
    Debug = 3,
}

impl Level {
    /// Lower-case name, as used in `FTA_LOG` and line prefixes.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

const UNINITIALIZED: u8 = u8::MAX;
/// `FTA_LOG=off` sentinel: below even `Error`.
const OFF: u8 = 100;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINITIALIZED);

fn parse_level(value: &str) -> u8 {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => OFF,
        "error" => Level::Error as u8,
        "warn" | "warning" => Level::Warn as u8,
        "" | "info" => Level::Info as u8,
        "debug" | "trace" => Level::Debug as u8,
        _ => Level::Info as u8,
    }
}

fn max_level_raw() -> u8 {
    let cached = MAX_LEVEL.load(Ordering::Relaxed);
    if cached != UNINITIALIZED {
        return cached;
    }
    let parsed = std::env::var("FTA_LOG")
        .map(|v| parse_level(&v))
        .unwrap_or(Level::Info as u8);
    // A racing first call parses the same env var; last store wins.
    MAX_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// True when lines at `level` should be written under the current
/// `FTA_LOG` filter.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    let max = max_level_raw();
    max != OFF && (level as u8) <= max
}

/// Override the level filter programmatically (wins over `FTA_LOG`;
/// `None` silences everything). Intended for tests and embedding.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// Stderr line format, cached from `FTA_LOG_FORMAT` on first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

const FORMAT_UNINITIALIZED: u8 = u8::MAX;
static FORMAT: AtomicU8 = AtomicU8::new(FORMAT_UNINITIALIZED);

fn format_mode() -> Format {
    let cached = FORMAT.load(Ordering::Relaxed);
    if cached != FORMAT_UNINITIALIZED {
        return if cached == Format::Json as u8 {
            Format::Json
        } else {
            Format::Text
        };
    }
    let parsed = match std::env::var("FTA_LOG_FORMAT") {
        Ok(v) if v.trim().eq_ignore_ascii_case("json") => Format::Json,
        _ => Format::Text,
    };
    FORMAT.store(parsed as u8, Ordering::Relaxed);
    parsed
}

/// Milliseconds since the first log line of this process (monotonic).
fn elapsed_ms() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Render one log line (without trailing newline) in the given format.
/// Factored out of [`write`] so tests can check shapes without
/// capturing stderr.
fn render(level: Level, args: fmt::Arguments<'_>, t_ms: u64, format: Format) -> String {
    match format {
        Format::Text => format!("[{t_ms:>6}ms] {}: {args}", level.as_str()),
        Format::Json => {
            use serde_json::Value;
            let line = Value::Object(vec![
                ("t_ms".to_owned(), Value::UInt(t_ms)),
                ("level".to_owned(), Value::String(level.as_str().to_owned())),
                ("msg".to_owned(), Value::String(format!("{args}"))),
            ]);
            serde_json::to_string(&line).unwrap_or_default()
        }
    }
}

/// Write one formatted line to stderr with a monotonic elapsed-ms
/// timestamp and a `level:` prefix (or as a JSON object when
/// `FTA_LOG_FORMAT=json`). Called by [`crate::log!`] after the level
/// check; prefer the macros.
pub fn write(level: Level, args: fmt::Arguments<'_>) {
    eprintln!("{}", render(level, args, elapsed_ms(), format_mode()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(parse_level("debug"), Level::Debug as u8);
        assert_eq!(parse_level("WARN"), Level::Warn as u8);
        assert_eq!(parse_level(" info "), Level::Info as u8);
        assert_eq!(parse_level("error"), Level::Error as u8);
        assert_eq!(parse_level("off"), OFF);
        assert_eq!(parse_level("unknown"), Level::Info as u8);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn set_max_level_filters() {
        let _guard = crate::recorder::test_lock::serialize_recorder_tests();
        set_max_level(Some(Level::Warn));
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        set_max_level(None);
        assert!(!level_enabled(Level::Error));
        set_max_level(Some(Level::Debug));
        assert!(level_enabled(Level::Debug));
        // Leave the default behind for other tests in this binary.
        set_max_level(Some(Level::Info));
    }

    #[test]
    fn render_shapes_text_and_json_lines() {
        let text = render(
            Level::Warn,
            format_args!("took {} rounds", 12),
            7,
            Format::Text,
        );
        assert_eq!(text, "[     7ms] warn: took 12 rounds");
        let json = render(
            Level::Error,
            format_args!("quote \" and slash \\"),
            123,
            Format::Json,
        );
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.field("t_ms").and_then(|v| v.as_u64()), Some(123));
        assert_eq!(
            parsed.field("level").and_then(|v| v.as_str()),
            Some("error")
        );
        assert_eq!(
            parsed.field("msg").and_then(|v| v.as_str()),
            Some("quote \" and slash \\")
        );
    }

    #[test]
    fn macros_compile_and_respect_filter() {
        let _guard = crate::recorder::test_lock::serialize_recorder_tests();
        set_max_level(Some(Level::Info));
        crate::info!("info line with arg {}", 42);
        crate::debug!(
            "filtered out, but formatting must still compile {:?}",
            (1, 2)
        );
        crate::log!(Level::Warn, "explicit level");
        crate::error!("error line");
        crate::warn!("warn line");
    }
}

//! Leveled stderr logging behind the [`crate::log!`] macro family.
//!
//! The maximum level is read once from the `FTA_LOG` environment
//! variable (`error`, `warn`, `info`, `debug`, or `off`; default
//! `info`) and cached in an atomic, so a filtered-out log line costs
//! one relaxed load. Diagnostics go to stderr; user-facing result
//! output belongs on stdout and must not use these macros.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or user-visible failures. Never filtered out
    /// (except by `FTA_LOG=off`).
    Error = 0,
    /// Suspicious conditions worth surfacing by default.
    Warn = 1,
    /// Progress diagnostics; shown by default.
    Info = 2,
    /// Verbose tracing; hidden unless `FTA_LOG=debug`.
    Debug = 3,
}

impl Level {
    /// Lower-case name, as used in `FTA_LOG` and line prefixes.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

const UNINITIALIZED: u8 = u8::MAX;
/// `FTA_LOG=off` sentinel: below even `Error`.
const OFF: u8 = 100;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNINITIALIZED);

fn parse_level(value: &str) -> u8 {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => OFF,
        "error" => Level::Error as u8,
        "warn" | "warning" => Level::Warn as u8,
        "" | "info" => Level::Info as u8,
        "debug" | "trace" => Level::Debug as u8,
        _ => Level::Info as u8,
    }
}

fn max_level_raw() -> u8 {
    let cached = MAX_LEVEL.load(Ordering::Relaxed);
    if cached != UNINITIALIZED {
        return cached;
    }
    let parsed = std::env::var("FTA_LOG")
        .map(|v| parse_level(&v))
        .unwrap_or(Level::Info as u8);
    // A racing first call parses the same env var; last store wins.
    MAX_LEVEL.store(parsed, Ordering::Relaxed);
    parsed
}

/// True when lines at `level` should be written under the current
/// `FTA_LOG` filter.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    let max = max_level_raw();
    max != OFF && (level as u8) <= max
}

/// Override the level filter programmatically (wins over `FTA_LOG`;
/// `None` silences everything). Intended for tests and embedding.
pub fn set_max_level(level: Option<Level>) {
    MAX_LEVEL.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// Write one formatted line to stderr with a `level:` prefix. Called
/// by [`crate::log!`] after the level check; prefer the macros.
pub fn write(level: Level, args: fmt::Arguments<'_>) {
    eprintln!("{}: {args}", level.as_str());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(parse_level("debug"), Level::Debug as u8);
        assert_eq!(parse_level("WARN"), Level::Warn as u8);
        assert_eq!(parse_level(" info "), Level::Info as u8);
        assert_eq!(parse_level("error"), Level::Error as u8);
        assert_eq!(parse_level("off"), OFF);
        assert_eq!(parse_level("unknown"), Level::Info as u8);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn set_max_level_filters() {
        let _guard = crate::recorder::test_lock::serialize_recorder_tests();
        set_max_level(Some(Level::Warn));
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        set_max_level(None);
        assert!(!level_enabled(Level::Error));
        set_max_level(Some(Level::Debug));
        assert!(level_enabled(Level::Debug));
        // Leave the default behind for other tests in this binary.
        set_max_level(Some(Level::Info));
    }

    #[test]
    fn macros_compile_and_respect_filter() {
        let _guard = crate::recorder::test_lock::serialize_recorder_tests();
        set_max_level(Some(Level::Info));
        crate::info!("info line with arg {}", 42);
        crate::debug!(
            "filtered out, but formatting must still compile {:?}",
            (1, 2)
        );
        crate::log!(Level::Warn, "explicit level");
        crate::error!("error line");
        crate::warn!("warn line");
    }
}

//! The flight recorder: an always-on, bounded, per-thread ring buffer of
//! recent telemetry events, dumped to a versioned JSONL snapshot when an
//! anomaly fires (a quarantined panic, an exhausted [`SolveBudget`],
//! or a degradation rung below `Full`).
//!
//! [`SolveBudget`]: https://docs.rs/fta-core — `fta_core::SolveBudget`
//!
//! ## Why a second recorder?
//!
//! The [`crate::Recorder`] pipeline is opt-in and unbounded: it keeps
//! *everything* until `finish()`, which is right for `--trace-out` but
//! wrong for a resident dispatcher that runs for days. The flight
//! recorder is the black box next to it: always armed (no install step),
//! per-thread, fixed capacity ([`RING_CAPACITY`] events per thread), so
//! the last moments before any anomaly are recoverable even when no
//! recorder was installed.
//!
//! ## Emit cost contract
//!
//! * **Disarmed** (`FTA_FLIGHT=off` or [`set_armed`]`(false)`): one
//!   relaxed atomic load per emit, nothing else — same contract as the
//!   uninstalled [`crate::Recorder`].
//! * **Armed** (the default): one relaxed load, one monotonic clock
//!   read, and one *uncontended* `try_lock` push into this thread's
//!   ring. The producing thread never blocks: if a dumper holds the
//!   ring lock at that instant the event is counted as dropped instead.
//!   The quick-mode obs bench asserts a per-op budget for this path.
//!
//! Memory is bounded: each live thread owns one fixed-capacity ring
//! (registered in a global registry via `Weak`); when a thread exits,
//! its ring's contents move to a bounded retired list
//! ([`MAX_RETIRED_RINGS`] rings, oldest evicted first) so pool workers
//! that finished before an anomaly still contribute their last events
//! to the dump.
//!
//! ## Dump schema (`fta-flight` version 1)
//!
//! A dump is UTF-8 JSONL:
//!
//! * line 1 — header: `{"schema":"fta-flight","version":1,"reason":s,
//!   "center":u|null,"dumped_unix_ms":u,"threads":u,"dropped":u}`
//! * event lines — `{"type":"event","thread":u,"seq":u,"t_ns":u,
//!   "kind":s,"name":s,"value":u,"center":u|null}` where `kind` is one
//!   of `counter|gauge|hist|span|round|mark`, `t_ns` is nanoseconds
//!   since the process flight epoch, and `seq` is a per-thread
//!   monotonic sequence number (strictly increasing within a thread —
//!   [`parse`] rejects dumps where it is not, which is how tests prove
//!   the ring never tears events).
//!
//! Unknown keys must be ignored by parsers; unknown `kind`/`type`
//! values are an error (bump `version` to add event kinds).

use serde_json::Value;
use std::cell::RefCell;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Value of the dump header's `"schema"` field.
pub const SCHEMA_NAME: &str = "fta-flight";
/// Dump schema version this crate reads and writes.
pub const SCHEMA_VERSION: u64 = 1;
/// Events retained per thread; older events are overwritten in place.
pub const RING_CAPACITY: usize = 2048;
/// Anomaly dumps are capped per process so a pathological round cannot
/// fill a disk with snapshots.
pub const MAX_ANOMALY_DUMPS: u64 = 8;
/// Default minimum milliseconds between two anomaly dumps (coarse rate
/// limit on top of [`MAX_ANOMALY_DUMPS`]); override with the
/// `FTA_FLIGHT_RATE_MS` environment variable (`0` disables the interval
/// limit; the per-process cap still applies).
pub const DEFAULT_DUMP_RATE_MS: u64 = 250;

/// The effective auto-dump rate limit in milliseconds: `FTA_FLIGHT_RATE_MS`
/// when set to a parseable integer, [`DEFAULT_DUMP_RATE_MS`] otherwise.
/// Read once per process and echoed in every dump header as `rate_ms`.
#[must_use]
pub fn dump_rate_ms() -> u64 {
    static RATE: OnceLock<u64> = OnceLock::new();
    *RATE.get_or_init(|| {
        std::env::var("FTA_FLIGHT_RATE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_DUMP_RATE_MS)
    })
}

/// What kind of telemetry a flight event snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A counter increment; `value` is the delta.
    Counter,
    /// A max-aggregated gauge sample; `value` is the observation.
    Gauge,
    /// A histogram sample; `value` is the sample (typically nanoseconds).
    Hist,
    /// A closed span; `value` is the duration in nanoseconds.
    Span,
    /// A solver round; `name` is the algorithm, `value` the round number.
    Round,
    /// An explicit marker (e.g. the anomaly that triggered a dump).
    Mark,
}

impl FlightKind {
    /// Lower-case tag used in dump lines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Counter => "counter",
            Self::Gauge => "gauge",
            Self::Hist => "hist",
            Self::Span => "span",
            Self::Round => "round",
            Self::Mark => "mark",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "counter" => Self::Counter,
            "gauge" => Self::Gauge,
            "hist" => Self::Hist,
            "span" => Self::Span,
            "round" => Self::Round,
            "mark" => Self::Mark,
            _ => return None,
        })
    }
}

/// One event as held in a thread's ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlightEvent {
    seq: u64,
    t_nanos: u64,
    kind: FlightKind,
    name: &'static str,
    value: u64,
    center: Option<u32>,
}

const DISARMED: u8 = 0;
const ARMED_ON: u8 = 1;
const UNINITIALIZED: u8 = 2;

/// Armed by default; `FTA_FLIGHT=off` (or `0`/`false`/`none`) disarms
/// at first emit, and [`set_armed`] overrides either way.
static ARMED: AtomicU8 = AtomicU8::new(UNINITIALIZED);

/// True when the flight recorder is armed. This relaxed load is the
/// whole cost an emit pays when disarmed.
#[inline]
pub fn armed() -> bool {
    match ARMED.load(Ordering::Relaxed) {
        ARMED_ON => true,
        DISARMED => false,
        _ => armed_slow(),
    }
}

#[cold]
fn armed_slow() -> bool {
    let off = std::env::var("FTA_FLIGHT").is_ok_and(|v| {
        matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "false" | "none"
        )
    });
    // A racing first call parses the same env var; last store wins.
    ARMED.store(if off { DISARMED } else { ARMED_ON }, Ordering::Relaxed);
    !off
}

/// Arm or disarm the flight recorder programmatically (wins over
/// `FTA_FLIGHT`). Intended for benches and embedding.
pub fn set_armed(on: bool) {
    ARMED.store(if on { ARMED_ON } else { DISARMED }, Ordering::Relaxed);
}

/// The process flight epoch: every `t_ns` in a dump counts from here.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

struct Ring {
    thread: u64,
    next_seq: u64,
    /// Events the producer dropped because a dumper held the lock.
    dropped: u64,
    buf: Vec<FlightEvent>,
    /// Index the next event overwrites once `buf` is full.
    head: usize,
}

impl Ring {
    fn push(&mut self, mut event: FlightEvent) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() < RING_CAPACITY {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % RING_CAPACITY;
        }
    }

    /// Events in sequence order (oldest retained first).
    fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

static REGISTRY: Mutex<Vec<Weak<Mutex<Ring>>>> = Mutex::new(Vec::new());
static NEXT_FLIGHT_THREAD: AtomicU64 = AtomicU64::new(1);

fn lock_registry() -> std::sync::MutexGuard<'static, Vec<Weak<Mutex<Ring>>>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Retired rings kept after their thread exits, bounded to this many
/// (oldest evicted first, counted as dropped).
pub const MAX_RETIRED_RINGS: usize = 32;

struct RetiredRing {
    thread: u64,
    dropped: u64,
    events: Vec<FlightEvent>,
}

static RETIRED: Mutex<Vec<RetiredRing>> = Mutex::new(Vec::new());
static RETIRED_EVICTED: AtomicU64 = AtomicU64::new(0);

fn lock_retired() -> std::sync::MutexGuard<'static, Vec<RetiredRing>> {
    RETIRED.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thread-local owner of a ring: its destructor moves the ring's final
/// contents to the retired list so pool workers that exited before an
/// anomaly still appear in the dump.
struct RingHandle(Arc<Mutex<Ring>>);

impl Drop for RingHandle {
    fn drop(&mut self) {
        // A dumper holding the lock at thread exit is a teardown race;
        // losing this ring's tail then is acceptable.
        let Ok(ring) = self.0.try_lock() else {
            return;
        };
        let retired = RetiredRing {
            thread: ring.thread,
            dropped: ring.dropped + ring.next_seq.saturating_sub(ring.buf.len() as u64),
            events: ring.snapshot(),
        };
        drop(ring);
        let mut list = lock_retired();
        if list.len() >= MAX_RETIRED_RINGS {
            let evicted = list.remove(0);
            RETIRED_EVICTED.fetch_add(
                evicted.dropped + evicted.events.len() as u64,
                Ordering::Relaxed,
            );
        }
        list.push(retired);
    }
}

thread_local! {
    /// This thread's ring. The `Arc` keeps it alive for the thread's
    /// lifetime; the registry only holds a `Weak`. On thread exit the
    /// [`RingHandle`] destructor retires the ring's contents.
    static RING: RefCell<Option<RingHandle>> = const { RefCell::new(None) };
}

/// Record one event into this thread's ring. The producer never blocks:
/// a rare collision with a dumping thread drops the event (counted in
/// the next dump's `dropped` total).
#[inline]
pub(crate) fn record(kind: FlightKind, name: &'static str, value: u64, center: Option<u32>) {
    if !armed() {
        return;
    }
    record_armed(kind, name, value, center);
}

static CONTENDED_DROPS: AtomicU64 = AtomicU64::new(0);

fn record_armed(kind: FlightKind, name: &'static str, value: u64, center: Option<u32>) {
    let t_nanos = now_nanos();
    let _ = RING.try_with(|cell| {
        let Ok(mut slot) = cell.try_borrow_mut() else {
            return;
        };
        let arc = slot
            .get_or_insert_with(|| {
                let ring = Arc::new(Mutex::new(Ring {
                    thread: NEXT_FLIGHT_THREAD.fetch_add(1, Ordering::Relaxed),
                    next_seq: 0,
                    dropped: 0,
                    buf: Vec::with_capacity(RING_CAPACITY),
                    head: 0,
                }));
                let mut registry = lock_registry();
                registry.retain(|w| w.strong_count() > 0);
                registry.push(Arc::downgrade(&ring));
                RingHandle(ring)
            })
            .0
            .clone();
        drop(slot);
        match arc.try_lock() {
            Ok(mut ring) => ring.push(FlightEvent {
                seq: 0,
                t_nanos,
                kind,
                name,
                value,
                center,
            }),
            // A dumper holds this ring right now; dropping one event
            // beats stalling the solver's hot path.
            Err(_) => {
                CONTENDED_DROPS.fetch_add(1, Ordering::Relaxed);
            }
        };
    });
}

/// Record an explicit marker event (e.g. the anomaly reason, so the
/// dump carries its own trigger).
pub fn mark(name: &'static str, center: Option<u32>) {
    record(FlightKind::Mark, name, 0, center);
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn opt_u32(v: Option<u32>) -> Value {
    match v {
        Some(x) => Value::UInt(u64::from(x)),
        None => Value::Null,
    }
}

/// Serialize the current contents of every live thread ring as a
/// `fta-flight` v1 JSONL dump, merged across threads in time order.
/// Dumping locks each ring briefly; producers that collide drop their
/// event rather than wait.
#[must_use]
pub fn dump(reason: &str, center: Option<u32>) -> String {
    let rings: Vec<Arc<Mutex<Ring>>> = {
        let mut registry = lock_registry();
        registry.retain(|w| w.strong_count() > 0);
        registry.iter().filter_map(Weak::upgrade).collect()
    };
    let mut events: Vec<(u64, FlightEvent)> = Vec::new();
    let mut dropped =
        CONTENDED_DROPS.load(Ordering::Relaxed) + RETIRED_EVICTED.load(Ordering::Relaxed);
    let mut threads = 0u64;
    for ring in rings {
        let ring = ring.lock().unwrap_or_else(PoisonError::into_inner);
        threads += 1;
        dropped += ring.dropped + ring.next_seq.saturating_sub(ring.buf.len() as u64);
        for event in ring.snapshot() {
            events.push((ring.thread, event));
        }
    }
    {
        let retired = lock_retired();
        for ring in retired.iter() {
            threads += 1;
            dropped += ring.dropped;
            for event in &ring.events {
                events.push((ring.thread, *event));
            }
        }
    }
    events.sort_by_key(|&(thread, e)| (e.t_nanos, thread, e.seq));
    let dumped_unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let mut lines = Vec::with_capacity(1 + events.len());
    lines.push(
        serde_json::to_string(&obj(vec![
            ("schema", Value::String(SCHEMA_NAME.to_owned())),
            ("version", Value::UInt(SCHEMA_VERSION)),
            ("reason", Value::String(reason.to_owned())),
            ("center", opt_u32(center)),
            ("dumped_unix_ms", Value::UInt(dumped_unix_ms)),
            ("threads", Value::UInt(threads)),
            ("dropped", Value::UInt(dropped)),
            ("rate_ms", Value::UInt(dump_rate_ms())),
        ]))
        .expect("header serializes"),
    );
    for (thread, event) in events {
        lines.push(
            serde_json::to_string(&obj(vec![
                ("type", Value::String("event".to_owned())),
                ("thread", Value::UInt(thread)),
                ("seq", Value::UInt(event.seq)),
                ("t_ns", Value::UInt(event.t_nanos)),
                ("kind", Value::String(event.kind.name().to_owned())),
                ("name", Value::String(event.name.to_owned())),
                ("value", Value::UInt(event.value)),
                ("center", opt_u32(event.center)),
            ]))
            .expect("event serializes"),
        );
    }
    lines.join("\n") + "\n"
}

/// Write [`dump`] output to `path`.
pub fn dump_to_file(reason: &str, center: Option<u32>, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, dump(reason, center))
}

static DUMP_COUNT: AtomicU64 = AtomicU64::new(0);
static LAST_DUMP_NANOS: AtomicU64 = AtomicU64::new(0);
static LAST_DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Where anomaly dumps land: `FTA_FLIGHT_DIR` if set, the OS temp
/// directory otherwise.
#[must_use]
pub fn dump_dir() -> PathBuf {
    std::env::var_os("FTA_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir)
}

/// Auto-dump entry point for anomaly hooks (panic quarantine, budget
/// exhaustion, degradation). Rate-limited: at most
/// [`MAX_ANOMALY_DUMPS`] per process and one per [`dump_rate_ms`]
/// milliseconds (default 250 ms, tunable via `FTA_FLIGHT_RATE_MS`), so a
/// round with hundreds of degrading centers produces a handful of
/// snapshots, not a disk full. Returns the written path, `None` when
/// disarmed, rate-limited, or the write failed (logged, never fatal).
pub fn anomaly_dump(reason: &'static str, center: Option<u32>) -> Option<PathBuf> {
    if !armed() {
        return None;
    }
    let now = now_nanos().max(1);
    let last = LAST_DUMP_NANOS.load(Ordering::Relaxed);
    if last != 0 && now.saturating_sub(last) < dump_rate_ms().saturating_mul(1_000_000) {
        return None;
    }
    let n = DUMP_COUNT.fetch_add(1, Ordering::Relaxed);
    if n >= MAX_ANOMALY_DUMPS {
        return None;
    }
    LAST_DUMP_NANOS.store(now, Ordering::Relaxed);
    // Embed the trigger in the dump itself before collecting the rings.
    mark(reason, center);
    let dir = dump_dir();
    // A freshly-set FTA_FLIGHT_DIR may not exist yet; a lost anomaly
    // snapshot is worse than a mkdir (failure falls through to the
    // logged write error below).
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("fta-flight-{}-{}.jsonl", std::process::id(), n + 1));
    match dump_to_file(reason, center, &path) {
        Ok(()) => {
            *LAST_DUMP_PATH
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(path.clone());
            crate::warn!(
                "flight recorder dumped to {} (reason: {reason})",
                path.display()
            );
            Some(path)
        }
        Err(e) => {
            crate::warn!("flight recorder dump to {} failed: {e}", path.display());
            None
        }
    }
}

/// Path of the most recent successful [`anomaly_dump`], if any.
#[must_use]
pub fn last_dump_path() -> Option<PathBuf> {
    LAST_DUMP_PATH
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// One event parsed back from a dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEventRecord {
    /// Flight-recorder thread id (not an OS tid).
    pub thread: u64,
    /// Per-thread monotonic sequence number.
    pub seq: u64,
    /// Nanoseconds since the process flight epoch.
    pub t_nanos: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Event name (counter/gauge/hist/span name, or algorithm for
    /// rounds, or the marker reason).
    pub name: String,
    /// Kind-dependent value (delta, sample, duration, round number).
    pub value: u64,
    /// Center attribution, if any.
    pub center: Option<u32>,
}

/// A fully parsed and validated flight dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightDump {
    /// Schema version from the header.
    pub version: u64,
    /// Why the dump was taken.
    pub reason: String,
    /// Center the anomaly concerned, if attributed.
    pub center: Option<u32>,
    /// Unix milliseconds at dump time.
    pub dumped_unix_ms: u64,
    /// Threads contributing events.
    pub threads: u64,
    /// Events lost to ring overwrite or producer/dumper collisions.
    pub dropped: u64,
    /// Auto-dump rate limit (ms) in force when the dump was taken;
    /// [`DEFAULT_DUMP_RATE_MS`] for dumps predating the field.
    pub rate_ms: u64,
    /// All events, in dump (time) order.
    pub events: Vec<FlightEventRecord>,
}

impl FlightDump {
    /// Events of one kind, in dump order.
    pub fn events_of(&self, kind: FlightKind) -> impl Iterator<Item = &FlightEventRecord> {
        self.events.iter().filter(move |e| e.kind == kind)
    }
}

/// Why a flight dump failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightError {
    /// The file is empty or the first line is not a valid header.
    MissingHeader(String),
    /// The header's `version` is not one this crate understands.
    UnsupportedVersion(u64),
    /// A body line is malformed; carries the 1-based line number.
    Line {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what is wrong.
        message: String,
    },
}

impl fmt::Display for FlightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlightError::MissingHeader(why) => {
                write!(f, "missing or invalid {SCHEMA_NAME} header: {why}")
            }
            FlightError::UnsupportedVersion(v) => write!(
                f,
                "unsupported {SCHEMA_NAME} version {v} (expected {SCHEMA_VERSION})"
            ),
            FlightError::Line { line, message } => write!(f, "flight dump line {line}: {message}"),
        }
    }
}

impl std::error::Error for FlightError {}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.field(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn field_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.field(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn field_opt_u32(v: &Value, key: &str) -> Result<Option<u32>, String> {
    match v.field(key) {
        None => Ok(None),
        Some(val) if val.is_null() => Ok(None),
        Some(val) => val
            .as_u64()
            .map(|x| Some(x as u32))
            .ok_or_else(|| format!("non-integer field '{key}'")),
    }
}

/// Parse and validate a flight dump produced by [`dump`]. Beyond shape,
/// this checks the no-torn-events invariant: within each thread, `seq`
/// must be strictly increasing in file order (the dump is time-sorted
/// and each thread's ring is written by that thread alone, so any
/// interleaving or duplication shows up here).
pub fn parse(text: &str) -> Result<FlightDump, FlightError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| FlightError::MissingHeader("empty dump".to_owned()))?;
    let header: Value = serde_json::from_str(header_line)
        .map_err(|e| FlightError::MissingHeader(format!("header is not JSON: {e:?}")))?;
    if header.field("schema").and_then(Value::as_str) != Some(SCHEMA_NAME) {
        return Err(FlightError::MissingHeader(format!(
            "first line lacks \"schema\":\"{SCHEMA_NAME}\""
        )));
    }
    let version = header
        .field("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| FlightError::MissingHeader("header lacks integer 'version'".to_owned()))?;
    if version != SCHEMA_VERSION {
        return Err(FlightError::UnsupportedVersion(version));
    }
    let mut dump = FlightDump {
        version,
        reason: header
            .field("reason")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned(),
        center: field_opt_u32(&header, "center")
            .map_err(|m| FlightError::MissingHeader(m.clone()))?,
        dumped_unix_ms: header
            .field("dumped_unix_ms")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        threads: header.field("threads").and_then(Value::as_u64).unwrap_or(0),
        dropped: header.field("dropped").and_then(Value::as_u64).unwrap_or(0),
        rate_ms: header
            .field("rate_ms")
            .and_then(Value::as_u64)
            .unwrap_or(DEFAULT_DUMP_RATE_MS),
        events: Vec::new(),
    };
    let mut last_seq: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for (index, line) in lines {
        let lineno = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fail = |message: String| FlightError::Line {
            line: lineno,
            message,
        };
        let v: Value =
            serde_json::from_str(line).map_err(|e| fail(format!("not valid JSON: {e:?}")))?;
        match field_str(&v, "type").map_err(&fail)? {
            "event" => {
                let kind_name = field_str(&v, "kind").map_err(&fail)?;
                let kind = FlightKind::from_name(kind_name)
                    .ok_or_else(|| fail(format!("unknown event kind '{kind_name}'")))?;
                let record = FlightEventRecord {
                    thread: field_u64(&v, "thread").map_err(&fail)?,
                    seq: field_u64(&v, "seq").map_err(&fail)?,
                    t_nanos: field_u64(&v, "t_ns").map_err(&fail)?,
                    kind,
                    name: field_str(&v, "name").map_err(&fail)?.to_owned(),
                    value: field_u64(&v, "value").map_err(&fail)?,
                    center: field_opt_u32(&v, "center").map_err(&fail)?,
                };
                if let Some(&prev) = last_seq.get(&record.thread) {
                    if record.seq <= prev {
                        return Err(fail(format!(
                            "torn ring: thread {} seq {} after {}",
                            record.thread, record.seq, prev
                        )));
                    }
                }
                last_seq.insert(record.thread, record.seq);
                dump.events.push(record);
            }
            other => return Err(fail(format!("unknown line type '{other}'"))),
        }
    }
    Ok(dump)
}

/// Read and [`parse`] a flight dump file.
pub fn parse_file(path: &Path) -> Result<FlightDump, FlightError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| FlightError::MissingHeader(format!("cannot read {}: {e}", path.display())))?;
    parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::test_lock::serialize_recorder_tests;

    #[test]
    fn armed_records_and_dump_round_trips() {
        let _guard = serialize_recorder_tests();
        set_armed(true);
        record(FlightKind::Counter, "ring.test_counter", 3, None);
        record(FlightKind::Span, "ring.test_span", 1_500, Some(7));
        mark("ring.test_mark", Some(7));
        let text = dump("unit-test", Some(7));
        let parsed = parse(&text).expect("own dump parses");
        assert_eq!(parsed.version, SCHEMA_VERSION);
        assert_eq!(parsed.reason, "unit-test");
        assert_eq!(parsed.center, Some(7));
        assert!(parsed.threads >= 1);
        let counter = parsed
            .events
            .iter()
            .find(|e| e.name == "ring.test_counter")
            .expect("counter captured");
        assert_eq!(counter.kind, FlightKind::Counter);
        assert_eq!(counter.value, 3);
        let span = parsed
            .events
            .iter()
            .find(|e| e.name == "ring.test_span")
            .expect("span captured");
        assert_eq!(span.center, Some(7));
        assert_eq!(span.value, 1_500);
        assert!(parsed
            .events_of(FlightKind::Mark)
            .any(|e| e.name == "ring.test_mark"));
    }

    #[test]
    fn dump_header_echoes_rate_limit() {
        let _guard = serialize_recorder_tests();
        set_armed(true);
        let parsed = parse(&dump("rate-test", None)).unwrap();
        assert_eq!(parsed.rate_ms, dump_rate_ms());
        // Dumps predating the field fall back to the default.
        let legacy = concat!(
            "{\"schema\":\"fta-flight\",\"version\":1,\"reason\":\"x\",",
            "\"center\":null,\"dumped_unix_ms\":0,\"threads\":0,\"dropped\":0}\n"
        );
        assert_eq!(parse(legacy).unwrap().rate_ms, DEFAULT_DUMP_RATE_MS);
    }

    #[test]
    fn disarmed_emits_are_dropped() {
        let _guard = serialize_recorder_tests();
        set_armed(false);
        record(FlightKind::Counter, "ring.disarmed_counter", 9, None);
        set_armed(true);
        let parsed = parse(&dump("disarmed-test", None)).unwrap();
        assert!(
            !parsed
                .events
                .iter()
                .any(|e| e.name == "ring.disarmed_counter"),
            "disarmed event leaked into the ring"
        );
    }

    #[test]
    fn ring_overwrites_oldest_and_reports_drops() {
        let _guard = serialize_recorder_tests();
        set_armed(true);
        // On a worker thread so this test owns a private ring.
        std::thread::spawn(|| {
            for i in 0..(RING_CAPACITY as u64 + 50) {
                record(FlightKind::Counter, "ring.wrap", i, None);
            }
            let parsed = parse(&dump("wrap-test", None)).unwrap();
            let wraps: Vec<_> = parsed
                .events
                .iter()
                .filter(|e| e.name == "ring.wrap")
                .collect();
            assert_eq!(wraps.len(), RING_CAPACITY);
            // The oldest 50 were overwritten; retained events are the tail.
            assert_eq!(wraps.first().unwrap().value, 50);
            assert_eq!(wraps.last().unwrap().value, RING_CAPACITY as u64 + 49);
            assert!(parsed.dropped >= 50);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn cross_thread_dump_keeps_per_thread_seq_monotone() {
        let _guard = serialize_recorder_tests();
        set_armed(true);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        record(FlightKind::Counter, "ring.mt", t * 1000 + i, None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // parse() itself enforces per-thread strictly-increasing seq.
        let parsed = parse(&dump("mt-test", None)).expect("no torn events");
        assert!(parsed.events.iter().filter(|e| e.name == "ring.mt").count() >= 4 * 200);
    }

    #[test]
    fn parse_rejects_bad_dumps() {
        assert!(matches!(parse(""), Err(FlightError::MissingHeader(_))));
        assert!(matches!(
            parse("{\"schema\":\"other\",\"version\":1}\n"),
            Err(FlightError::MissingHeader(_))
        ));
        assert!(matches!(
            parse("{\"schema\":\"fta-flight\",\"version\":9}\n"),
            Err(FlightError::UnsupportedVersion(9))
        ));
        let header = "{\"schema\":\"fta-flight\",\"version\":1,\"reason\":\"t\"}";
        let bad_kind = format!(
            "{header}\n{{\"type\":\"event\",\"thread\":1,\"seq\":0,\"t_ns\":1,\"kind\":\"mystery\",\"name\":\"x\",\"value\":0}}\n"
        );
        assert!(matches!(
            parse(&bad_kind),
            Err(FlightError::Line { line: 2, .. })
        ));
        let torn = format!(
            "{header}\n\
             {{\"type\":\"event\",\"thread\":1,\"seq\":5,\"t_ns\":1,\"kind\":\"counter\",\"name\":\"x\",\"value\":1}}\n\
             {{\"type\":\"event\",\"thread\":1,\"seq\":5,\"t_ns\":2,\"kind\":\"counter\",\"name\":\"x\",\"value\":1}}\n"
        );
        let err = parse(&torn).unwrap_err();
        assert!(matches!(err, FlightError::Line { line: 3, .. }), "{err}");
        assert!(err.to_string().contains("torn ring"));
        // Header alone is a valid (empty) dump.
        let empty = parse(&format!("{header}\n")).unwrap();
        assert!(empty.events.is_empty());
    }

    #[test]
    fn anomaly_dump_writes_rate_limited_snapshots() {
        let _guard = serialize_recorder_tests();
        set_armed(true);
        record(FlightKind::Counter, "ring.anomaly", 1, Some(3));
        let first = anomaly_dump("test-anomaly", Some(3));
        if let Some(p) = &first {
            let parsed = parse_file(p).expect("anomaly dump parses");
            assert_eq!(parsed.reason, "test-anomaly");
            assert_eq!(last_dump_path().as_deref(), Some(p.as_path()));
            std::fs::remove_file(p).ok();
        }
        // Immediately again: the 250 ms interval suppresses it.
        assert_eq!(anomaly_dump("test-anomaly", Some(3)), None);
    }
}

//! JSONL trace sink: schema `fta-obs-trace` version 1.
//!
//! A trace file is UTF-8 text, one JSON object per line:
//!
//! * line 1 — header: `{"schema":"fta-obs-trace","version":1,
//!   "epoch_unix_ms":<u64>}`
//! * span lines — `{"type":"span","name":s,"id":u,"parent":u|null,
//!   "thread":u,"center":u|null,"layer":u|null,"start_ns":u,"dur_ns":u}`
//! * round lines — `{"type":"round","algo":s,"center":u,"round":u,
//!   "moves":u,"payoff_difference":f,"average_payoff":f,"potential":f}`
//! * aggregate lines (written after all spans/rounds) —
//!   `{"type":"counter","name":s,"value":u}`,
//!   `{"type":"gauge","name":s,"value":u}`, and
//!   `{"type":"hist","name":s,"count":u,"sum":u,
//!   "buckets":[[index,count],…]}` (sparse log2 buckets; see
//!   [`crate::hist`]).
//!
//! Unknown keys must be ignored by parsers; unknown `type` values are
//! an error (bump `version` to add event kinds). [`parse`] validates
//! and loads a trace, [`to_chrome_trace`] converts the span lines to
//! the Chrome `chrome://tracing` / Perfetto JSON format.

use crate::snapshot::Snapshot;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Value of the header's `"schema"` field.
pub const SCHEMA_NAME: &str = "fta-obs-trace";
/// Trace schema version this crate reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn opt_u32(v: Option<u32>) -> Value {
    match v {
        Some(x) => Value::UInt(u64::from(x)),
        None => Value::Null,
    }
}

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(x) => Value::UInt(x),
        None => Value::Null,
    }
}

/// Serialize a snapshot as a JSONL trace string (header first, then
/// spans in start-time order, round events, and final aggregate lines).
pub fn to_jsonl(snapshot: &Snapshot) -> String {
    let mut lines = Vec::with_capacity(
        2 + snapshot.spans.len()
            + snapshot.rounds.len()
            + snapshot.counters.len()
            + snapshot.gauges.len()
            + snapshot.histograms.len(),
    );
    lines.push(
        serde_json::to_string(&obj(vec![
            ("schema", Value::String(SCHEMA_NAME.to_owned())),
            ("version", Value::UInt(SCHEMA_VERSION)),
            ("epoch_unix_ms", Value::UInt(snapshot.epoch_unix_ms)),
        ]))
        .expect("header serializes"),
    );
    let mut spans: Vec<_> = snapshot.spans.iter().collect();
    spans.sort_by_key(|s| (s.start_nanos, s.id));
    for span in spans {
        lines.push(
            serde_json::to_string(&obj(vec![
                ("type", Value::String("span".to_owned())),
                ("name", Value::String(span.name.to_owned())),
                ("id", Value::UInt(span.id)),
                ("parent", opt_u64(span.parent)),
                ("thread", Value::UInt(span.thread)),
                ("center", opt_u32(span.center)),
                ("layer", opt_u32(span.layer)),
                ("start_ns", Value::UInt(span.start_nanos)),
                ("dur_ns", Value::UInt(span.duration_nanos)),
            ]))
            .expect("span serializes"),
        );
    }
    for round in &snapshot.rounds {
        lines.push(
            serde_json::to_string(&obj(vec![
                ("type", Value::String("round".to_owned())),
                ("algo", Value::String(round.algo.to_owned())),
                ("center", Value::UInt(u64::from(round.center))),
                ("round", Value::UInt(u64::from(round.round))),
                ("moves", Value::UInt(round.moves)),
                ("payoff_difference", Value::Float(round.payoff_difference)),
                ("average_payoff", Value::Float(round.average_payoff)),
                ("potential", Value::Float(round.potential)),
            ]))
            .expect("round serializes"),
        );
    }
    for (name, value) in &snapshot.counters {
        lines.push(
            serde_json::to_string(&obj(vec![
                ("type", Value::String("counter".to_owned())),
                ("name", Value::String((*name).to_owned())),
                ("value", Value::UInt(*value)),
            ]))
            .expect("counter serializes"),
        );
    }
    for (name, value) in &snapshot.gauges {
        lines.push(
            serde_json::to_string(&obj(vec![
                ("type", Value::String("gauge".to_owned())),
                ("name", Value::String((*name).to_owned())),
                ("value", Value::UInt(*value)),
            ]))
            .expect("gauge serializes"),
        );
    }
    for (name, hist) in &snapshot.histograms {
        let buckets = hist
            .nonzero_buckets()
            .map(|(i, c)| Value::Array(vec![Value::UInt(i as u64), Value::UInt(c)]))
            .collect();
        lines.push(
            serde_json::to_string(&obj(vec![
                ("type", Value::String("hist".to_owned())),
                ("name", Value::String((*name).to_owned())),
                ("count", Value::UInt(hist.count)),
                ("sum", Value::UInt(hist.sum)),
                ("buckets", Value::Array(buckets)),
            ]))
            .expect("hist serializes"),
        );
    }
    lines.join("\n") + "\n"
}

/// Write [`to_jsonl`] output to `path`.
pub fn write_file(snapshot: &Snapshot, path: &Path) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(to_jsonl(snapshot).as_bytes())?;
    file.flush()
}

/// A span parsed back from a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedSpan {
    /// Span name.
    pub name: String,
    /// Process-unique span id.
    pub id: u64,
    /// Parent span id, if any.
    pub parent: Option<u64>,
    /// Emitting thread id.
    pub thread: u64,
    /// Center attribution, if any.
    pub center: Option<u32>,
    /// DP-layer attribution, if any.
    pub layer: Option<u32>,
    /// Nanoseconds since the recorder epoch.
    pub start_nanos: u64,
    /// Duration in nanoseconds.
    pub duration_nanos: u64,
}

/// A solver round event parsed back from a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRound {
    /// Algorithm name.
    pub algo: String,
    /// Center the loop ran for.
    pub center: u32,
    /// 1-based round number.
    pub round: u32,
    /// Strategy switches this round.
    pub moves: u64,
    /// Max−min payoff difference after the round.
    pub payoff_difference: f64,
    /// Average worker payoff after the round.
    pub average_payoff: f64,
    /// Potential value after the round.
    pub potential: f64,
}

/// A histogram aggregate parsed back from a trace file (sparse form).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedHist {
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// `(bucket_index, count)` pairs for non-empty buckets.
    pub buckets: Vec<(usize, u64)>,
}

/// A fully parsed and validated trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParsedTrace {
    /// Schema version from the header.
    pub version: u64,
    /// Unix milliseconds at recorder install.
    pub epoch_unix_ms: u64,
    /// All span lines, in file order.
    pub spans: Vec<ParsedSpan>,
    /// All round lines, in file order.
    pub rounds: Vec<ParsedRound>,
    /// Counter aggregates by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge aggregates by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub hists: BTreeMap<String, ParsedHist>,
}

impl ParsedTrace {
    /// Spans named `name`, in file order.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a ParsedSpan> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// Round events for algorithm `algo`, in file order.
    pub fn rounds_for<'a>(&'a self, algo: &'a str) -> impl Iterator<Item = &'a ParsedRound> {
        self.rounds.iter().filter(move |r| r.algo == algo)
    }
}

/// Why a trace failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file is empty or the first line is not a valid header.
    MissingHeader(String),
    /// The header's `version` is not one this crate understands.
    UnsupportedVersion(u64),
    /// A body line is malformed; carries the 1-based line number.
    Line {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what is wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MissingHeader(why) => {
                write!(f, "missing or invalid {SCHEMA_NAME} header: {why}")
            }
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported {SCHEMA_NAME} version {v} (expected {SCHEMA_VERSION})"
                )
            }
            TraceError::Line { line, message } => write!(f, "trace line {line}: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.field(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn field_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.field(key) {
        None => Ok(None),
        Some(val) if val.is_null() => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer field '{key}'")),
    }
}

fn field_opt_u32(v: &Value, key: &str) -> Result<Option<u32>, String> {
    Ok(field_opt_u64(v, key)?.map(|x| x as u32))
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    v.field(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

/// Floats serialize as `null` when non-finite; read those back as NaN.
fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    match v.field(key) {
        None => Err(format!("missing field '{key}'")),
        Some(val) if val.is_null() => Ok(f64::NAN),
        Some(val) => val
            .as_f64()
            .ok_or_else(|| format!("non-numeric field '{key}'")),
    }
}

/// Parse and validate a JSONL trace produced by [`to_jsonl`] (or any
/// writer of schema v1). Every line must be valid JSON of a known
/// event type with all required fields present and well-typed.
pub fn parse(text: &str) -> Result<ParsedTrace, TraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| TraceError::MissingHeader("empty trace".to_owned()))?;
    let header: Value = serde_json::from_str(header_line)
        .map_err(|e| TraceError::MissingHeader(format!("header is not JSON: {e:?}")))?;
    if header.field("schema").and_then(Value::as_str) != Some(SCHEMA_NAME) {
        return Err(TraceError::MissingHeader(format!(
            "first line lacks \"schema\":\"{SCHEMA_NAME}\""
        )));
    }
    let version = header
        .field("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| TraceError::MissingHeader("header lacks integer 'version'".to_owned()))?;
    if version != SCHEMA_VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let mut trace = ParsedTrace {
        version,
        epoch_unix_ms: header
            .field("epoch_unix_ms")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        ..ParsedTrace::default()
    };
    for (index, line) in lines {
        let lineno = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fail = |message: String| TraceError::Line {
            line: lineno,
            message,
        };
        let v: Value =
            serde_json::from_str(line).map_err(|e| fail(format!("not valid JSON: {e:?}")))?;
        let kind = field_str(&v, "type").map_err(&fail)?;
        match kind.as_str() {
            "span" => trace.spans.push(ParsedSpan {
                name: field_str(&v, "name").map_err(&fail)?,
                id: field_u64(&v, "id").map_err(&fail)?,
                parent: field_opt_u64(&v, "parent").map_err(&fail)?,
                thread: field_u64(&v, "thread").map_err(&fail)?,
                center: field_opt_u32(&v, "center").map_err(&fail)?,
                layer: field_opt_u32(&v, "layer").map_err(&fail)?,
                start_nanos: field_u64(&v, "start_ns").map_err(&fail)?,
                duration_nanos: field_u64(&v, "dur_ns").map_err(&fail)?,
            }),
            "round" => trace.rounds.push(ParsedRound {
                algo: field_str(&v, "algo").map_err(&fail)?,
                center: field_u64(&v, "center").map_err(&fail)? as u32,
                round: field_u64(&v, "round").map_err(&fail)? as u32,
                moves: field_u64(&v, "moves").map_err(&fail)?,
                payoff_difference: field_f64(&v, "payoff_difference").map_err(&fail)?,
                average_payoff: field_f64(&v, "average_payoff").map_err(&fail)?,
                potential: field_f64(&v, "potential").map_err(&fail)?,
            }),
            "counter" => {
                trace.counters.insert(
                    field_str(&v, "name").map_err(&fail)?,
                    field_u64(&v, "value").map_err(&fail)?,
                );
            }
            "gauge" => {
                trace.gauges.insert(
                    field_str(&v, "name").map_err(&fail)?,
                    field_u64(&v, "value").map_err(&fail)?,
                );
            }
            "hist" => {
                let buckets_value = v
                    .field("buckets")
                    .and_then(Value::as_array)
                    .ok_or_else(|| fail("missing or non-array field 'buckets'".to_owned()))?;
                let mut buckets = Vec::with_capacity(buckets_value.len());
                for pair in buckets_value {
                    let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                        fail("bucket entry is not a [index, count] pair".to_owned())
                    })?;
                    let index = pair[0]
                        .as_u64()
                        .ok_or_else(|| fail("bucket index is not an integer".to_owned()))?;
                    let count = pair[1]
                        .as_u64()
                        .ok_or_else(|| fail("bucket count is not an integer".to_owned()))?;
                    if index as usize >= crate::hist::BUCKETS {
                        return Err(fail(format!("bucket index {index} out of range")));
                    }
                    buckets.push((index as usize, count));
                }
                let hist = ParsedHist {
                    count: field_u64(&v, "count").map_err(&fail)?,
                    sum: field_u64(&v, "sum").map_err(&fail)?,
                    buckets,
                };
                if hist.buckets.iter().map(|&(_, c)| c).sum::<u64>() != hist.count {
                    return Err(fail("bucket counts do not sum to 'count'".to_owned()));
                }
                trace
                    .hists
                    .insert(field_str(&v, "name").map_err(&fail)?, hist);
            }
            other => return Err(fail(format!("unknown event type '{other}'"))),
        }
    }
    Ok(trace)
}

/// Read and [`parse`] a trace file.
pub fn parse_file(path: &Path) -> Result<ParsedTrace, TraceError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TraceError::MissingHeader(format!("cannot read {}: {e}", path.display())))?;
    parse(&text)
}

/// Convert a parsed trace's spans into Chrome trace-event JSON
/// (loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)):
/// one complete (`"ph":"X"`) event per span, microsecond timestamps,
/// thread ids mapped to `tid`. Aggregate lines have no timeline
/// position and are omitted.
pub fn to_chrome_trace(trace: &ParsedTrace) -> String {
    let events = trace
        .spans
        .iter()
        .map(|span| {
            let mut fields = vec![
                ("name", Value::String(span.name.clone())),
                ("cat", Value::String("span".to_owned())),
                ("ph", Value::String("X".to_owned())),
                ("ts", Value::Float(span.start_nanos as f64 / 1_000.0)),
                ("dur", Value::Float(span.duration_nanos as f64 / 1_000.0)),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(span.thread)),
            ];
            let mut args = Vec::new();
            args.push(("id".to_owned(), Value::UInt(span.id)));
            if let Some(parent) = span.parent {
                args.push(("parent".to_owned(), Value::UInt(parent)));
            }
            if let Some(center) = span.center {
                args.push(("center".to_owned(), Value::UInt(u64::from(center))));
            }
            if let Some(layer) = span.layer {
                args.push(("layer".to_owned(), Value::UInt(u64::from(layer))));
            }
            fields.push(("args", Value::Object(args)));
            obj(fields)
        })
        .collect();
    serde_json::to_string(&obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::String("ms".to_owned())),
    ]))
    .expect("chrome trace serializes")
}

/// Validate Prometheus text exposition as produced by
/// [`Snapshot::to_prometheus`]: every non-comment, non-blank line must
/// be `name[{labels}] value` with a finite numeric value. Returns the
/// number of samples on success.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (index, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line}", index + 1))?;
        let metric = name_part.split('{').next().unwrap_or("");
        if metric.is_empty()
            || !metric
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: invalid metric name: {line}", index + 1));
        }
        let value: f64 = value_part
            .parse()
            .map_err(|_| format!("line {}: non-numeric value: {line}", index + 1))?;
        if !value.is_finite() {
            return Err(format!("line {}: non-finite value: {line}", index + 1));
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_owned());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Event;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.epoch_unix_ms = 1_700_000_000_000;
        snap.apply(&Event::Span {
            name: "solver.center",
            id: 7,
            parent: None,
            thread: 1,
            center: Some(2),
            layer: None,
            start_nanos: 100,
            duration_nanos: 5_000,
        });
        snap.apply(&Event::Span {
            name: "vdps.layer",
            id: 8,
            parent: Some(7),
            thread: 1,
            center: Some(2),
            layer: Some(3),
            start_nanos: 150,
            duration_nanos: 900,
        });
        snap.apply(&Event::Round {
            algo: "FGT",
            center: 2,
            round: 1,
            moves: 4,
            payoff_difference: 0.25,
            average_payoff: 1.5,
            potential: 12.0,
        });
        snap.apply(&Event::Counter {
            name: "vdps.states",
            delta: 99,
        });
        snap.apply(&Event::GaugeMax {
            name: "pool.queue_depth",
            value: 6,
        });
        snap.apply(&Event::Hist {
            name: "sim.assign_nanos",
            value: 450,
        });
        snap
    }

    #[test]
    fn jsonl_round_trips() {
        let snap = sample_snapshot();
        let text = to_jsonl(&snap);
        let parsed = parse(&text).expect("round-trip parses");
        assert_eq!(parsed.version, SCHEMA_VERSION);
        assert_eq!(parsed.epoch_unix_ms, snap.epoch_unix_ms);
        assert_eq!(parsed.spans.len(), 2);
        let layer_span = parsed.spans_named("vdps.layer").next().unwrap();
        assert_eq!(layer_span.parent, Some(7));
        assert_eq!(layer_span.center, Some(2));
        assert_eq!(layer_span.layer, Some(3));
        assert_eq!(layer_span.start_nanos, 150);
        assert_eq!(layer_span.duration_nanos, 900);
        let round = parsed.rounds_for("FGT").next().unwrap();
        assert_eq!(round.center, 2);
        assert_eq!(round.moves, 4);
        assert!((round.payoff_difference - 0.25).abs() < 1e-12);
        assert_eq!(parsed.counters["vdps.states"], 99);
        assert_eq!(parsed.gauges["pool.queue_depth"], 6);
        let hist = &parsed.hists["sim.assign_nanos"];
        assert_eq!(hist.count, 1);
        assert_eq!(hist.sum, 450);
        assert_eq!(hist.buckets, vec![(crate::hist::bucket_index(450), 1)]);
    }

    #[test]
    fn parse_rejects_bad_traces() {
        assert!(matches!(parse(""), Err(TraceError::MissingHeader(_))));
        assert!(matches!(
            parse("{\"schema\":\"other\",\"version\":1}\n"),
            Err(TraceError::MissingHeader(_))
        ));
        assert!(matches!(
            parse("{\"schema\":\"fta-obs-trace\",\"version\":99}\n"),
            Err(TraceError::UnsupportedVersion(99))
        ));
        let header = "{\"schema\":\"fta-obs-trace\",\"version\":1,\"epoch_unix_ms\":0}";
        let bad_type = format!("{header}\n{{\"type\":\"mystery\"}}\n");
        assert!(matches!(
            parse(&bad_type),
            Err(TraceError::Line { line: 2, .. })
        ));
        let missing_field = format!("{header}\n{{\"type\":\"counter\",\"name\":\"x\"}}\n");
        assert!(matches!(
            parse(&missing_field),
            Err(TraceError::Line { line: 2, .. })
        ));
        let bad_hist = format!(
            "{header}\n{{\"type\":\"hist\",\"name\":\"h\",\"count\":2,\"sum\":5,\"buckets\":[[1,1]]}}\n"
        );
        assert!(matches!(
            parse(&bad_hist),
            Err(TraceError::Line { line: 2, .. })
        ));
        // Blank lines are tolerated; header alone is a valid empty trace.
        let ok = parse(&format!("{header}\n\n")).unwrap();
        assert!(ok.spans.is_empty() && ok.counters.is_empty());
    }

    #[test]
    fn chrome_trace_contains_complete_events() {
        let parsed = parse(&to_jsonl(&sample_snapshot())).unwrap();
        let chrome = to_chrome_trace(&parsed);
        let v: Value = serde_json::from_str(&chrome).expect("chrome trace is JSON");
        let events = v.field("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(first.field("ph").and_then(Value::as_str), Some("X"));
        assert!(first.field("ts").and_then(Value::as_f64).is_some());
        assert!(first.field("dur").and_then(Value::as_f64).is_some());
        assert!(first.field("tid").and_then(Value::as_u64).is_some());
    }

    #[test]
    fn prometheus_validator_accepts_own_output_and_rejects_garbage() {
        let samples = validate_prometheus(&sample_snapshot().to_prometheus()).unwrap();
        assert!(samples >= 6, "expected several samples, got {samples}");
        assert!(validate_prometheus("").is_err());
        assert!(validate_prometheus("# only comments\n").is_err());
        assert!(validate_prometheus("ok_metric notanumber\n").is_err());
        assert!(validate_prometheus("bad metric name 1\n").is_err());
    }
}

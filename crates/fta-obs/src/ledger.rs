//! The solve ledger: a versioned per-solve/per-round structured record
//! with causal attribution per center, plus the ledger/Prometheus diff
//! used by `fta obs-diff`.
//!
//! One [`SolveRecord`] answers "why did center 17 fall to GTA in round
//! 40" from the file alone: per center it carries the degradation-ladder
//! rung, the budget axis that triggered it, the resolve path taken
//! (clean/warm/cold + why), the best-response and VDPS work counters,
//! and per-record fairness (pairwise payoff difference and the
//! per-worker income distribution).
//!
//! ## File schema (`fta-ledger` version 1)
//!
//! A ledger file is UTF-8 JSONL:
//!
//! * line 1 — header: `{"schema":"fta-ledger","version":1,"label":s,
//!   "created_unix_ms":u}`
//! * solve lines — `{"type":"solve","round":u|null,"sim_hours":f|null,
//!   "algo":s,"engine":s,"degraded":b,"budget_exhausted":b,
//!   "centers":[…],"fairness":{…}}` where each center object is
//!   `{"center":u,"rung":s,"budget_axis":s|null,"resolve":s,
//!   "shard":u|null,"br_rounds":u,"br_evaluations":u,"br_switches":u,
//!   "vdps_count":u,"vdps_states":u,"vdps_truncations":u,"vdps_ns":u,
//!   "assign_ns":u,"events":[s,…]}` and fairness is
//!   `{"payoff_difference":f,"average_payoff":f,"gini":f,
//!   "incomes":[f,…]}`.
//!
//! Unknown keys must be ignored by parsers; unknown `type` values are an
//! error (bump `version` to add record kinds). A header with no solve
//! lines is a valid, empty ledger (e.g. a zero-center instance).
//!
//! ## Diff semantics
//!
//! [`Ledger::flatten`] and [`flatten_prometheus`] project a ledger or a
//! Prometheus snapshot onto a flat `name → value` map; [`diff_maps`]
//! compares two such maps with a relative tolerance band (percent of
//! the larger magnitude), reporting every key's delta and whether it is
//! within band. Diffing a run against itself reports zero deltas.

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// Value of the header's `"schema"` field.
pub const SCHEMA_NAME: &str = "fta-ledger";
/// Ledger schema version this crate reads and writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Per-center causal attribution for one solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CenterRecord {
    /// The distribution center.
    pub center: u64,
    /// Degradation-ladder rung the center was solved at
    /// (`full`, `degraded-vdps`, `gta-fallback`,
    /// `immediate-single-stop`, `skipped`).
    pub rung: String,
    /// The budget axis that drove the degradation (`wall_ms`,
    /// `max_states`, `max_rounds`, or `panic`), `None` at `full`.
    pub budget_axis: Option<String>,
    /// Resolve path taken: `cold`, `clean`, or `warm`.
    pub resolve: String,
    /// Shard the center was solved on (sharded solves only; `None` — the
    /// schema-v1 optional-key convention — on unsharded solves and when
    /// reading ledgers written before sharding existed).
    pub shard: Option<u64>,
    /// Best-response rounds run for this center.
    pub br_rounds: u64,
    /// Candidate strategies evaluated for this center.
    pub br_evaluations: u64,
    /// Strategy switches performed for this center.
    pub br_switches: u64,
    /// VDPSs in the center's final pool.
    pub vdps_count: u64,
    /// DP states materialised during generation.
    pub vdps_states: u64,
    /// Layer-boundary truncations during generation.
    pub vdps_truncations: u64,
    /// Nanoseconds spent generating the pool this round.
    pub vdps_nanos: u64,
    /// Nanoseconds spent in the assignment algorithm this round.
    pub assign_nanos: u64,
    /// Human-readable degradation events, in firing order.
    pub events: Vec<String>,
}

/// Fairness trajectory point for one solve record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FairnessRecord {
    /// Pairwise payoff difference (max − min worker payoff).
    pub payoff_difference: f64,
    /// Mean worker payoff.
    pub average_payoff: f64,
    /// Gini coefficient of the income distribution.
    pub gini: f64,
    /// Per-worker income distribution (cumulative in simulate ledgers,
    /// per-solve payoffs in solve ledgers), worker order.
    pub incomes: Vec<f64>,
}

/// One solve (or one simulated round) as recorded in a ledger.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveRecord {
    /// Simulation round number, `None` for a one-shot solve.
    pub round: Option<u64>,
    /// Simulated time of day in hours, `None` for a one-shot solve.
    pub sim_hours: Option<f64>,
    /// Algorithm name (`GTA`, `FGT`, `IEGT`, …).
    pub algo: String,
    /// Best-response engine label (`incremental`, `rivalset`, …).
    pub engine: String,
    /// Whether any center was solved below the full rung.
    pub degraded: bool,
    /// Whether the solve budget bound anywhere.
    pub budget_exhausted: bool,
    /// Per-center attribution, in center order.
    pub centers: Vec<CenterRecord>,
    /// Fairness snapshot after this solve.
    pub fairness: FairnessRecord,
}

/// A full ledger: header metadata plus records in time order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// Free-form label (instance path, scenario name).
    pub label: String,
    /// Unix milliseconds at ledger creation.
    pub created_unix_ms: u64,
    /// Solve records, in the order they happened.
    pub records: Vec<SolveRecord>,
}

impl Ledger {
    /// A new, empty ledger stamped with the current wall clock.
    #[must_use]
    pub fn new(label: impl Into<String>) -> Self {
        Ledger {
            label: label.into(),
            created_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            records: Vec::new(),
        }
    }

    /// Appends one solve record.
    pub fn push(&mut self, record: SolveRecord) {
        self.records.push(record);
    }

    /// Projects the ledger onto a flat `name → value` map of aggregate
    /// metrics, the input of [`diff_maps`]. Counters sum over records;
    /// `fairness.final_*` take the last record's value.
    #[must_use]
    pub fn flatten(&self) -> BTreeMap<String, f64> {
        let mut out: BTreeMap<String, f64> = BTreeMap::new();
        let mut add = |key: &str, v: f64| *out.entry(key.to_owned()).or_insert(0.0) += v;
        add("records", self.records.len() as f64);
        for record in &self.records {
            add("degraded_records", f64::from(u8::from(record.degraded)));
            add(
                "budget_exhausted_records",
                f64::from(u8::from(record.budget_exhausted)),
            );
            add("centers", record.centers.len() as f64);
            for center in &record.centers {
                add(&format!("rung.{}", center.rung), 1.0);
                add(&format!("resolve.{}", center.resolve), 1.0);
                if let Some(shard) = center.shard {
                    add(&format!("shard.{shard}.centers"), 1.0);
                }
                add("br.rounds", center.br_rounds as f64);
                add("br.evaluations", center.br_evaluations as f64);
                add("br.switches", center.br_switches as f64);
                add("vdps.count", center.vdps_count as f64);
                add("vdps.states", center.vdps_states as f64);
                add("vdps.truncations", center.vdps_truncations as f64);
                add("vdps.nanos", center.vdps_nanos as f64);
                add("assign.nanos", center.assign_nanos as f64);
            }
        }
        if let Some(last) = self.records.last() {
            out.insert(
                "fairness.final_payoff_difference".to_owned(),
                last.fairness.payoff_difference,
            );
            out.insert(
                "fairness.final_average_payoff".to_owned(),
                last.fairness.average_payoff,
            );
            out.insert("fairness.final_gini".to_owned(), last.fairness.gini);
        }
        out
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(x) => Value::UInt(x),
        None => Value::Null,
    }
}

fn opt_f64(v: Option<f64>) -> Value {
    match v {
        Some(x) => Value::Float(x),
        None => Value::Null,
    }
}

fn opt_string(v: &Option<String>) -> Value {
    match v {
        Some(s) => Value::String(s.clone()),
        None => Value::Null,
    }
}

fn center_value(center: &CenterRecord) -> Value {
    obj(vec![
        ("center", Value::UInt(center.center)),
        ("rung", Value::String(center.rung.clone())),
        ("budget_axis", opt_string(&center.budget_axis)),
        ("resolve", Value::String(center.resolve.clone())),
        ("shard", opt_u64(center.shard)),
        ("br_rounds", Value::UInt(center.br_rounds)),
        ("br_evaluations", Value::UInt(center.br_evaluations)),
        ("br_switches", Value::UInt(center.br_switches)),
        ("vdps_count", Value::UInt(center.vdps_count)),
        ("vdps_states", Value::UInt(center.vdps_states)),
        ("vdps_truncations", Value::UInt(center.vdps_truncations)),
        ("vdps_ns", Value::UInt(center.vdps_nanos)),
        ("assign_ns", Value::UInt(center.assign_nanos)),
        (
            "events",
            Value::Array(
                center
                    .events
                    .iter()
                    .map(|e| Value::String(e.clone()))
                    .collect(),
            ),
        ),
    ])
}

fn record_value(record: &SolveRecord) -> Value {
    obj(vec![
        ("type", Value::String("solve".to_owned())),
        ("round", opt_u64(record.round)),
        ("sim_hours", opt_f64(record.sim_hours)),
        ("algo", Value::String(record.algo.clone())),
        ("engine", Value::String(record.engine.clone())),
        ("degraded", Value::Bool(record.degraded)),
        ("budget_exhausted", Value::Bool(record.budget_exhausted)),
        (
            "centers",
            Value::Array(record.centers.iter().map(center_value).collect()),
        ),
        (
            "fairness",
            obj(vec![
                (
                    "payoff_difference",
                    Value::Float(record.fairness.payoff_difference),
                ),
                (
                    "average_payoff",
                    Value::Float(record.fairness.average_payoff),
                ),
                ("gini", Value::Float(record.fairness.gini)),
                (
                    "incomes",
                    Value::Array(
                        record
                            .fairness
                            .incomes
                            .iter()
                            .map(|&i| Value::Float(i))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Serialize one record as a standalone JSON line — the exact line format
/// [`to_jsonl`] emits for records. The durability layer journals each
/// round's record this way so `fta recover` can rebuild a ledger.
#[must_use]
pub fn record_to_json(record: &SolveRecord) -> String {
    serde_json::to_string(&record_value(record)).expect("record serializes")
}

/// Parse one record line produced by [`record_to_json`] (or any `"solve"`
/// line of a schema-v1 ledger).
pub fn record_from_json(line: &str) -> Result<SolveRecord, LedgerError> {
    let fail = |message: String| LedgerError::Line { line: 1, message };
    let v: Value =
        serde_json::from_str(line).map_err(|e| fail(format!("not valid JSON: {e:?}")))?;
    match field_str(&v, "type").map_err(&fail)?.as_str() {
        "solve" => parse_record(&v).map_err(&fail),
        other => Err(fail(format!("unknown record type '{other}'"))),
    }
}

/// Serialize a ledger as a JSONL string (header first, then one line
/// per record).
#[must_use]
pub fn to_jsonl(ledger: &Ledger) -> String {
    let mut lines = Vec::with_capacity(1 + ledger.records.len());
    lines.push(
        serde_json::to_string(&obj(vec![
            ("schema", Value::String(SCHEMA_NAME.to_owned())),
            ("version", Value::UInt(SCHEMA_VERSION)),
            ("label", Value::String(ledger.label.clone())),
            ("created_unix_ms", Value::UInt(ledger.created_unix_ms)),
        ]))
        .expect("header serializes"),
    );
    for record in &ledger.records {
        lines.push(serde_json::to_string(&record_value(record)).expect("record serializes"));
    }
    lines.join("\n") + "\n"
}

/// Write [`to_jsonl`] output to `path`.
pub fn write_file(ledger: &Ledger, path: &Path) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(to_jsonl(ledger).as_bytes())?;
    file.flush()
}

/// Why a ledger failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The file is empty or the first line is not a valid header.
    MissingHeader(String),
    /// The header's `version` is not one this crate understands.
    UnsupportedVersion(u64),
    /// A body line is malformed; carries the 1-based line number.
    Line {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of what is wrong.
        message: String,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::MissingHeader(why) => {
                write!(f, "missing or invalid {SCHEMA_NAME} header: {why}")
            }
            LedgerError::UnsupportedVersion(v) => write!(
                f,
                "unsupported {SCHEMA_NAME} version {v} (expected {SCHEMA_VERSION})"
            ),
            LedgerError::Line { line, message } => write!(f, "ledger line {line}: {message}"),
        }
    }
}

impl std::error::Error for LedgerError {}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.field(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field '{key}'"))
}

fn field_str(v: &Value, key: &str) -> Result<String, String> {
    v.field(key)
        .and_then(Value::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

fn field_bool(v: &Value, key: &str) -> Result<bool, String> {
    v.field(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing or non-boolean field '{key}'"))
}

/// Floats serialize as `null` when non-finite; read those back as NaN.
fn field_f64(v: &Value, key: &str) -> Result<f64, String> {
    match v.field(key) {
        None => Err(format!("missing field '{key}'")),
        Some(val) if val.is_null() => Ok(f64::NAN),
        Some(val) => val
            .as_f64()
            .ok_or_else(|| format!("non-numeric field '{key}'")),
    }
}

fn field_opt_u64(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.field(key) {
        None => Ok(None),
        Some(val) if val.is_null() => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("non-integer field '{key}'")),
    }
}

fn field_opt_f64(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.field(key) {
        None => Ok(None),
        Some(val) if val.is_null() => Ok(None),
        Some(val) => val
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric field '{key}'")),
    }
}

fn field_opt_str(v: &Value, key: &str) -> Result<Option<String>, String> {
    match v.field(key) {
        None => Ok(None),
        Some(val) if val.is_null() => Ok(None),
        Some(val) => val
            .as_str()
            .map(|s| Some(s.to_owned()))
            .ok_or_else(|| format!("non-string field '{key}'")),
    }
}

fn parse_center(v: &Value) -> Result<CenterRecord, String> {
    let events_value = v
        .field("events")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing or non-array field 'events'".to_owned())?;
    let mut events = Vec::with_capacity(events_value.len());
    for e in events_value {
        events.push(
            e.as_str()
                .ok_or_else(|| "non-string entry in 'events'".to_owned())?
                .to_owned(),
        );
    }
    Ok(CenterRecord {
        center: field_u64(v, "center")?,
        rung: field_str(v, "rung")?,
        budget_axis: field_opt_str(v, "budget_axis")?,
        resolve: field_str(v, "resolve")?,
        shard: field_opt_u64(v, "shard")?,
        br_rounds: field_u64(v, "br_rounds")?,
        br_evaluations: field_u64(v, "br_evaluations")?,
        br_switches: field_u64(v, "br_switches")?,
        vdps_count: field_u64(v, "vdps_count")?,
        vdps_states: field_u64(v, "vdps_states")?,
        vdps_truncations: field_u64(v, "vdps_truncations")?,
        vdps_nanos: field_u64(v, "vdps_ns")?,
        assign_nanos: field_u64(v, "assign_ns")?,
        events,
    })
}

fn parse_fairness(v: &Value) -> Result<FairnessRecord, String> {
    let fairness = v
        .field("fairness")
        .ok_or_else(|| "missing field 'fairness'".to_owned())?;
    let incomes_value = fairness
        .field("incomes")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing or non-array field 'fairness.incomes'".to_owned())?;
    let mut incomes = Vec::with_capacity(incomes_value.len());
    for i in incomes_value {
        incomes.push(if i.is_null() {
            f64::NAN
        } else {
            i.as_f64()
                .ok_or_else(|| "non-numeric entry in 'fairness.incomes'".to_owned())?
        });
    }
    Ok(FairnessRecord {
        payoff_difference: field_f64(fairness, "payoff_difference")?,
        average_payoff: field_f64(fairness, "average_payoff")?,
        gini: field_f64(fairness, "gini")?,
        incomes,
    })
}

fn parse_record(v: &Value) -> Result<SolveRecord, String> {
    let centers_value = v
        .field("centers")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing or non-array field 'centers'".to_owned())?;
    let mut centers = Vec::with_capacity(centers_value.len());
    for c in centers_value {
        centers.push(parse_center(c)?);
    }
    Ok(SolveRecord {
        round: field_opt_u64(v, "round")?,
        sim_hours: field_opt_f64(v, "sim_hours")?,
        algo: field_str(v, "algo")?,
        engine: field_str(v, "engine")?,
        degraded: field_bool(v, "degraded")?,
        budget_exhausted: field_bool(v, "budget_exhausted")?,
        centers,
        fairness: parse_fairness(v)?,
    })
}

/// Parse and validate a JSONL ledger produced by [`to_jsonl`] (or any
/// writer of schema v1). Every line must be valid JSON of a known
/// record type with all required fields present and well-typed.
pub fn parse(text: &str) -> Result<Ledger, LedgerError> {
    let mut lines = text.lines().enumerate();
    let (_, header_line) = lines
        .next()
        .ok_or_else(|| LedgerError::MissingHeader("empty ledger".to_owned()))?;
    let header: Value = serde_json::from_str(header_line)
        .map_err(|e| LedgerError::MissingHeader(format!("header is not JSON: {e:?}")))?;
    if header.field("schema").and_then(Value::as_str) != Some(SCHEMA_NAME) {
        return Err(LedgerError::MissingHeader(format!(
            "first line lacks \"schema\":\"{SCHEMA_NAME}\""
        )));
    }
    let version = header
        .field("version")
        .and_then(Value::as_u64)
        .ok_or_else(|| LedgerError::MissingHeader("header lacks integer 'version'".to_owned()))?;
    if version != SCHEMA_VERSION {
        return Err(LedgerError::UnsupportedVersion(version));
    }
    let mut ledger = Ledger {
        label: header
            .field("label")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_owned(),
        created_unix_ms: header
            .field("created_unix_ms")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        records: Vec::new(),
    };
    for (index, line) in lines {
        let lineno = index + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fail = |message: String| LedgerError::Line {
            line: lineno,
            message,
        };
        let v: Value =
            serde_json::from_str(line).map_err(|e| fail(format!("not valid JSON: {e:?}")))?;
        match field_str(&v, "type").map_err(&fail)?.as_str() {
            "solve" => ledger.records.push(parse_record(&v).map_err(&fail)?),
            other => return Err(fail(format!("unknown record type '{other}'"))),
        }
    }
    Ok(ledger)
}

/// Read and [`parse`] a ledger file.
pub fn parse_file(path: &Path) -> Result<Ledger, LedgerError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| LedgerError::MissingHeader(format!("cannot read {}: {e}", path.display())))?;
    parse(&text)
}

/// One key's values in a diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Metric key.
    pub key: String,
    /// Value in the first input (0 when absent).
    pub a: f64,
    /// Value in the second input (0 when absent).
    pub b: f64,
}

impl DiffEntry {
    /// `b − a`.
    #[must_use]
    pub fn delta(&self) -> f64 {
        self.b - self.a
    }

    /// Whether the delta is inside the relative tolerance band:
    /// `|b − a| ≤ tolerance_pct/100 · max(|a|, |b|)`. NaNs on both
    /// sides compare equal (a ledger can carry NaN fairness for empty
    /// instances).
    #[must_use]
    pub fn within(&self, tolerance_pct: f64) -> bool {
        if self.a.is_nan() && self.b.is_nan() {
            return true;
        }
        let scale = self.a.abs().max(self.b.abs());
        (self.b - self.a).abs() <= tolerance_pct / 100.0 * scale
    }
}

/// The result of diffing two flat metric maps.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Every key present in either input, sorted.
    pub entries: Vec<DiffEntry>,
    /// The tolerance band the diff was evaluated under, in percent.
    pub tolerance_pct: f64,
}

impl DiffReport {
    /// Entries whose delta exceeds the tolerance band.
    #[must_use]
    pub fn out_of_band(&self) -> Vec<&DiffEntry> {
        self.entries
            .iter()
            .filter(|e| !e.within(self.tolerance_pct))
            .collect()
    }

    /// Entries with any delta at all (ignoring the band).
    #[must_use]
    pub fn changed(&self) -> Vec<&DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.delta() != 0.0 && !(e.a.is_nan() && e.b.is_nan()))
            .collect()
    }
}

/// Diff two flat metric maps under a relative tolerance band (percent).
#[must_use]
pub fn diff_maps(
    a: &BTreeMap<String, f64>,
    b: &BTreeMap<String, f64>,
    tolerance_pct: f64,
) -> DiffReport {
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    let entries = keys
        .into_iter()
        .map(|key| DiffEntry {
            key: key.clone(),
            a: a.get(key).copied().unwrap_or(0.0),
            b: b.get(key).copied().unwrap_or(0.0),
        })
        .collect();
    DiffReport {
        entries,
        tolerance_pct,
    }
}

/// Project Prometheus text exposition (as written by
/// [`crate::Snapshot::to_prometheus`]) onto a flat `name → value` map.
/// Bucketed histogram samples keep their `le` label in the key.
pub fn flatten_prometheus(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (index, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator: {line}", index + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: non-numeric value: {line}", index + 1))?;
        out.insert(name.to_owned(), value);
    }
    if out.is_empty() {
        return Err("no samples in exposition".to_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ledger() -> Ledger {
        let mut ledger = Ledger {
            label: "syn-3c".to_owned(),
            created_unix_ms: 1_700_000_000_000,
            records: Vec::new(),
        };
        ledger.push(SolveRecord {
            round: Some(4),
            sim_hours: Some(2.5),
            algo: "IEGT".to_owned(),
            engine: "rivalset".to_owned(),
            degraded: true,
            budget_exhausted: true,
            centers: vec![
                CenterRecord {
                    center: 0,
                    rung: "full".to_owned(),
                    budget_axis: None,
                    resolve: "warm".to_owned(),
                    shard: Some(1),
                    br_rounds: 12,
                    br_evaluations: 480,
                    br_switches: 9,
                    vdps_count: 64,
                    vdps_states: 200,
                    vdps_truncations: 0,
                    vdps_nanos: 10_000,
                    assign_nanos: 22_000,
                    events: vec![],
                },
                CenterRecord {
                    center: 17,
                    rung: "gta-fallback".to_owned(),
                    budget_axis: Some("wall_ms".to_owned()),
                    resolve: "cold".to_owned(),
                    shard: None,
                    br_rounds: 0,
                    br_evaluations: 0,
                    br_switches: 0,
                    vdps_count: 8,
                    vdps_states: 30,
                    vdps_truncations: 1,
                    vdps_nanos: 4_000,
                    assign_nanos: 600,
                    events: vec!["center 17: fell back to greedy assignment".to_owned()],
                },
            ],
            fairness: FairnessRecord {
                payoff_difference: 0.75,
                average_payoff: 3.25,
                gini: 0.12,
                incomes: vec![3.0, 3.5, 3.25],
            },
        });
        ledger
    }

    #[test]
    fn jsonl_round_trips() {
        let ledger = sample_ledger();
        let text = to_jsonl(&ledger);
        let parsed = parse(&text).expect("round-trip parses");
        assert_eq!(parsed, ledger);
        // The causal question is answerable from the file alone.
        let record = &parsed.records[0];
        let c17 = record.centers.iter().find(|c| c.center == 17).unwrap();
        assert_eq!(c17.rung, "gta-fallback");
        assert_eq!(c17.budget_axis.as_deref(), Some("wall_ms"));
        assert_eq!(c17.resolve, "cold");
        assert!(c17.events[0].contains("greedy"));
    }

    #[test]
    fn ledgers_without_shard_key_parse_as_unsharded() {
        // Ledgers written before sharding existed have no "shard" key in
        // their center rows; schema v1 reads them as unsharded.
        let text = to_jsonl(&sample_ledger());
        assert!(text.contains("\"shard\""), "writer emits the shard key");
        let stripped = text
            .replace("\"shard\":1,", "")
            .replace("\"shard\":null,", "");
        assert!(!stripped.contains("\"shard\""));
        let parsed = parse(&stripped).expect("pre-sharding ledgers still parse");
        assert!(parsed.records[0].centers.iter().all(|c| c.shard.is_none()));
    }

    #[test]
    fn empty_ledger_round_trips() {
        // A zero-center instance yields a header-only ledger.
        let empty = Ledger {
            label: "empty".to_owned(),
            created_unix_ms: 1,
            records: Vec::new(),
        };
        let parsed = parse(&to_jsonl(&empty)).unwrap();
        assert_eq!(parsed, empty);
        assert_eq!(parsed.flatten()["records"], 0.0);
        // And so does a record with no centers.
        let mut zero_centers = empty.clone();
        zero_centers.push(SolveRecord {
            algo: "GTA".to_owned(),
            engine: "incremental".to_owned(),
            fairness: FairnessRecord {
                payoff_difference: f64::NAN,
                average_payoff: f64::NAN,
                gini: f64::NAN,
                incomes: vec![],
            },
            ..SolveRecord::default()
        });
        let parsed = parse(&to_jsonl(&zero_centers)).unwrap();
        assert!(parsed.records[0].centers.is_empty());
        assert!(parsed.records[0].fairness.payoff_difference.is_nan());
    }

    #[test]
    fn parse_rejects_bad_ledgers() {
        assert!(matches!(parse(""), Err(LedgerError::MissingHeader(_))));
        assert!(matches!(
            parse("{\"schema\":\"fta-obs-trace\",\"version\":1}\n"),
            Err(LedgerError::MissingHeader(_))
        ));
        assert!(matches!(
            parse("{\"schema\":\"fta-ledger\",\"version\":99}\n"),
            Err(LedgerError::UnsupportedVersion(99))
        ));
        let header =
            "{\"schema\":\"fta-ledger\",\"version\":1,\"label\":\"x\",\"created_unix_ms\":0}";
        assert!(matches!(
            parse(&format!("{header}\n{{\"type\":\"mystery\"}}\n")),
            Err(LedgerError::Line { line: 2, .. })
        ));
        let missing = format!("{header}\n{{\"type\":\"solve\",\"algo\":\"GTA\"}}\n");
        assert!(matches!(
            parse(&missing),
            Err(LedgerError::Line { line: 2, .. })
        ));
        // Blank lines are tolerated.
        assert!(parse(&format!("{header}\n\n")).unwrap().records.is_empty());
    }

    #[test]
    fn self_diff_reports_zero_deltas() {
        let flat = sample_ledger().flatten();
        let report = diff_maps(&flat, &flat, 0.0);
        assert!(!report.entries.is_empty());
        assert!(report.changed().is_empty());
        assert!(report.out_of_band().is_empty());
    }

    #[test]
    fn diff_applies_relative_tolerance_band() {
        let mut a = BTreeMap::new();
        a.insert("br.rounds".to_owned(), 100.0);
        a.insert("only_a".to_owned(), 5.0);
        let mut b = BTreeMap::new();
        b.insert("br.rounds".to_owned(), 104.0);
        b.insert("only_b".to_owned(), 7.0);
        let tight = diff_maps(&a, &b, 1.0);
        let keys: Vec<&str> = tight.out_of_band().iter().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["br.rounds", "only_a", "only_b"]);
        let loose = diff_maps(&a, &b, 5.0);
        let keys: Vec<&str> = loose.out_of_band().iter().map(|e| e.key.as_str()).collect();
        // 104 vs 100 is within 5%; absent keys never are (relative to 5 and 7).
        assert_eq!(keys, vec!["only_a", "only_b"]);
        assert_eq!(loose.changed().len(), 3);
    }

    #[test]
    fn flatten_prometheus_maps_samples() {
        let text = "# TYPE fta_x_total counter\nfta_x_total 42\nfta_lat_bucket{le=\"3\"} 1\n";
        let flat = flatten_prometheus(text).unwrap();
        assert_eq!(flat["fta_x_total"], 42.0);
        assert_eq!(flat["fta_lat_bucket{le=\"3\"}"], 1.0);
        assert!(flatten_prometheus("# only comments\n").is_err());
    }

    #[test]
    fn flatten_ledger_aggregates_counters() {
        let flat = sample_ledger().flatten();
        assert_eq!(flat["records"], 1.0);
        assert_eq!(flat["centers"], 2.0);
        assert_eq!(flat["rung.full"], 1.0);
        assert_eq!(flat["rung.gta-fallback"], 1.0);
        assert_eq!(flat["resolve.warm"], 1.0);
        assert_eq!(flat["br.rounds"], 12.0);
        assert_eq!(flat["fairness.final_gini"], 0.12);
    }
}

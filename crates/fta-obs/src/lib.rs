//! # fta-obs: unified observability for the FTA workspace
//!
//! A std-only telemetry layer with three primitives, all near-zero cost
//! when no recorder is installed:
//!
//! * **Spans** — scoped RAII timers ([`span!`], [`span`], [`span_center`],
//!   [`span_layer`]) carrying nanosecond start/duration, the emitting
//!   thread, and the parent span (tracked per-thread in a span stack).
//! * **Counters** — monotonic named counters ([`counter`]) and
//!   max-aggregated gauges ([`gauge_max`]).
//! * **Histograms** — fixed-bucket log2 latency histograms
//!   ([`observe_nanos`], [`hist_timer`]) with 65 power-of-two buckets.
//!
//! ## Architecture
//!
//! A global [`Recorder`] is installed with [`Recorder::install`]. Each
//! emitting thread buffers events in a thread-local `Vec` and flushes
//! batches through an `mpsc` channel to a dedicated accumulator thread
//! (the metrics-accumulator pattern), which folds them into a
//! [`Snapshot`]. [`Recorder::finish`] tears the pipeline down and
//! returns the snapshot. When **no** recorder is installed every
//! emit-path entry point is a single relaxed atomic load and an early
//! return — hot loops may therefore keep obs calls unconditionally.
//!
//! Hot paths should still pre-aggregate: emit one `counter` per chunk or
//! layer rather than one per inner-loop iteration (see
//! `fta-vdps::flat`, which folds dedup-probe counts into its per-chunk
//! counters and emits them once per layer).
//!
//! ## Sinks
//!
//! * [`trace::to_jsonl`] — versioned JSONL trace (schema
//!   `fta-obs-trace` v1, one event per line, Chrome-trace-convertible
//!   via [`trace::to_chrome_trace`]).
//! * [`Snapshot::to_prometheus`] — Prometheus text exposition
//!   (`fta_*_total` counters, `_bucket{le=…}`/`_sum`/`_count`
//!   histograms, `_p50`/`_p95`/`_p99` quantile gauges).
//!
//! ## Forensics
//!
//! * [`ring`] — the always-on flight recorder: bounded per-thread ring
//!   buffers of recent events, auto-dumped to a versioned JSONL
//!   snapshot ([`ring::anomaly_dump`]) on panics, budget exhaustion,
//!   and degradation. Armed by default; `FTA_FLIGHT=off` disarms.
//! * [`ledger`] — the solve ledger: per-solve/per-round structured
//!   records with per-center causal attribution (rung, budget axis,
//!   resolve path, work counters) and fairness trajectories, plus the
//!   tolerance-band diff behind `fta obs-diff`.
//!
//! ## Logging
//!
//! [`log!`] and its level shorthands [`error!`], [`warn!`], [`info!`],
//! [`debug!`] write leveled diagnostics to stderr, filtered by the
//! `FTA_LOG` environment variable (`error|warn|info|debug`, default
//! `info`). User-facing result output should stay on stdout and never
//! go through these macros.
//!
//! ```
//! let recorder = fta_obs::Recorder::install();
//! {
//!     let _solve = fta_obs::span!("doc.solve");
//!     fta_obs::counter("doc.widgets", 3);
//!     fta_obs::observe_nanos("doc.latency_nanos", 1_500);
//! }
//! let snapshot = recorder.finish();
//! assert_eq!(snapshot.counter("doc.widgets"), 3);
//! assert_eq!(snapshot.span_count("doc.solve"), 1);
//! let jsonl = fta_obs::trace::to_jsonl(&snapshot);
//! let parsed = fta_obs::trace::parse(&jsonl).unwrap();
//! assert_eq!(parsed.counters["doc.widgets"], 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hist;
pub mod ledger;
pub mod logging;
pub mod recorder;
pub mod ring;
pub mod snapshot;
pub mod trace;

pub use hist::Histogram;
pub use recorder::{
    counter, enabled, flush_thread, gauge_max, hist_timer, observe_nanos, round_event, span,
    span_center, span_layer, Event, HistTimer, Recorder, SpanGuard,
};
pub use snapshot::{RoundRecord, Snapshot, SpanRecord};

/// Open a scoped span timer; returns a guard that records the span when
/// dropped. Near-zero cost when no recorder is installed.
///
/// ```
/// let _span = fta_obs::span!("phase");
/// let _per_center = fta_obs::span!("phase", center = 3);
/// let _per_layer = fta_obs::span!("phase", center = 3, layer = 2);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, center = $center:expr) => {
        $crate::span_center($name, $center)
    };
    ($name:expr, center = $center:expr, layer = $layer:expr) => {
        $crate::span_layer($name, $center, $layer)
    };
}

/// Leveled stderr logging, filtered by `FTA_LOG` (default `info`).
///
/// ```
/// fta_obs::log!(fta_obs::logging::Level::Warn, "took {} rounds", 12);
/// ```
#[macro_export]
macro_rules! log {
    ($level:expr, $($arg:tt)*) => {{
        let level = $level;
        if $crate::logging::level_enabled(level) {
            $crate::logging::write(level, ::core::format_args!($($arg)*));
        }
    }};
}

/// [`log!`] at `Level::Error` (never filtered out).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log!($crate::logging::Level::Error, $($arg)*) };
}

/// [`log!`] at `Level::Warn`.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log!($crate::logging::Level::Warn, $($arg)*) };
}

/// [`log!`] at `Level::Info` (shown by default).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log!($crate::logging::Level::Info, $($arg)*) };
}

/// [`log!`] at `Level::Debug` (hidden unless `FTA_LOG=debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log!($crate::logging::Level::Debug, $($arg)*) };
}

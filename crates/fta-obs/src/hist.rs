//! Fixed-bucket log2 histograms.
//!
//! 65 buckets: bucket 0 holds exact zeros, bucket `i` (1 ≤ i ≤ 64)
//! holds values in `[2^(i-1), 2^i)`. Every `u64` maps to exactly one
//! bucket with two instructions (`leading_zeros` + subtract), so
//! recording is branch-light and allocation-free, and two histograms
//! merge by elementwise addition.

/// Number of buckets in a [`Histogram`] (zeros + one per power of two).
pub const BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples (typically nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts; see [`bucket_index`] for the mapping.
    pub buckets: [u64; BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (saturating).
    pub sum: u64,
}

/// Bucket index for a sample: 0 for 0, otherwise `64 - leading_zeros(v)`
/// so that `v ∈ [2^(i-1), 2^i)` lands in bucket `i`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`, as used for Prometheus `le`
/// labels: bucket 0 ≤ 0, bucket i ≤ 2^i − 1 (bucket 64 ≤ `u64::MAX`).
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold another histogram into this one (elementwise).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (inclusive) of the smallest bucket whose cumulative
    /// count reaches `q · count` — a coarse quantile (within 2×).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target.max(1) {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// `(bucket_index, count)` pairs for non-empty buckets (sparse form,
    /// as serialized in the JSONL trace).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_map_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..=64usize {
            // Lower edge of bucket i is 2^(i-1); its predecessor is in i-1.
            let low = 1u64 << (i - 1);
            assert_eq!(bucket_index(low), i, "low edge of bucket {i}");
            assert_eq!(bucket_index(low - 1), i - 1, "below bucket {i}");
            assert_eq!(bucket_index(bucket_upper_bound(i)), i, "upper bound of {i}");
        }
    }

    #[test]
    fn record_tracks_count_sum_and_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 1, 5, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1031);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[11], 1);
        assert!((h.mean() - 1031.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3, 9, 200] {
            a.record(v);
        }
        for v in [0, 3, 4096] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count, 6);
        assert_eq!(merged.sum, a.sum + b.sum);
        for i in 0..BUCKETS {
            assert_eq!(merged.buckets[i], a.buckets[i] + b.buckets[i], "bucket {i}");
        }
        // Merging an empty histogram is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::new());
        assert_eq!(with_empty, a);
    }

    #[test]
    fn saturating_sum_does_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 2);
        assert_eq!(h.buckets[64], 2);
    }

    #[test]
    fn quantile_upper_bound_is_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q50 = h.quantile_upper_bound(0.5);
        let q99 = h.quantile_upper_bound(0.99);
        assert!(q50 <= q99);
        assert!(q99 >= 999);
        assert_eq!(Histogram::new().quantile_upper_bound(0.5), 0);
    }
}

//! The global recorder: install/finish lifecycle, thread-local event
//! buffers, and the emit-path entry points (spans, counters, gauges,
//! histogram samples, per-round solver events).
//!
//! ## Lifecycle
//!
//! [`Recorder::install`] spawns an accumulator thread, publishes an
//! `mpsc` sender plus a monotonic epoch in a global slot, and flips the
//! global `ENABLED` flag. Emitting threads lazily initialize a
//! thread-local buffer bound to the recorder's *generation*; events are
//! appended locally and flushed to the accumulator in batches of
//! [`FLUSH_THRESHOLD`] (and from the thread-local destructor, so scoped
//! worker threads flush before their pool scope returns).
//! [`Recorder::finish`] clears `ENABLED`, flushes the calling thread,
//! drops the sender (closing the channel), bumps the generation so
//! stale thread-locals discard themselves, and joins the accumulator to
//! obtain the final [`Snapshot`].
//!
//! ## Disabled cost
//!
//! Every entry point starts with a single `Relaxed` atomic load and
//! returns immediately when no recorder is installed; no thread-local
//! is touched and no time is read. The vdps bench's `FTA_BENCH_QUICK`
//! overhead check pins this down.
//!
//! Recorders are process-global: do not overlap two installs. Tests
//! that install a recorder must serialize on a lock.

use crate::snapshot::Snapshot;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Thread-local buffers flush to the accumulator once they hold this
/// many events (and always from the thread-local destructor).
pub const FLUSH_THRESHOLD: usize = 128;

/// One telemetry event, as buffered per-thread and folded into a
/// [`Snapshot`] by the accumulator thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed span: a named scope with nanosecond start/duration
    /// (relative to the recorder epoch), the emitting thread, and the
    /// enclosing span on that thread, if any.
    Span {
        /// Static span name, e.g. `"vdps.generate"`.
        name: &'static str,
        /// Process-unique span id.
        id: u64,
        /// Id of the span that was open on this thread when this one
        /// started.
        parent: Option<u64>,
        /// Small per-thread id assigned on first emit.
        thread: u64,
        /// Center index this span is attributed to, if any.
        center: Option<u32>,
        /// DP layer (route length) this span is attributed to, if any.
        layer: Option<u32>,
        /// Start time in nanoseconds since the recorder epoch.
        start_nanos: u64,
        /// Span duration in nanoseconds.
        duration_nanos: u64,
    },
    /// A monotonic counter increment.
    Counter {
        /// Static counter name, e.g. `"vdps.dedup_probes"`.
        name: &'static str,
        /// Amount to add.
        delta: u64,
    },
    /// A gauge sample aggregated by maximum (e.g. peak queue depth).
    GaugeMax {
        /// Static gauge name, e.g. `"pool.queue_depth"`.
        name: &'static str,
        /// Observed value; the snapshot keeps the maximum.
        value: u64,
    },
    /// A histogram sample (typically a latency in nanoseconds).
    Hist {
        /// Static histogram name, e.g. `"sim.assign_nanos"`.
        name: &'static str,
        /// Sample value.
        value: u64,
    },
    /// One best-response round of a game-theoretic solver loop.
    Round {
        /// Algorithm name (`"FGT"`, `"PFGT"`, `"IEGT"`).
        algo: &'static str,
        /// Center the loop runs for.
        center: u32,
        /// 1-based round number within the current (re)start.
        round: u32,
        /// Strategy switches performed this round.
        moves: u64,
        /// Max−min payoff difference after the round.
        payoff_difference: f64,
        /// Average worker payoff after the round.
        average_payoff: f64,
        /// Potential-function value after the round.
        potential: f64,
    },
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped on install *and* finish so thread-local state bound to an old
/// recorder is discarded lazily.
static GENERATION: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

struct Shared {
    tx: Sender<Vec<Event>>,
    epoch: Instant,
    generation: u64,
}

static SHARED: Mutex<Option<Shared>> = Mutex::new(None);

fn lock_shared() -> std::sync::MutexGuard<'static, Option<Shared>> {
    SHARED.lock().unwrap_or_else(PoisonError::into_inner)
}

struct TlsBuf {
    generation: u64,
    epoch: Instant,
    buf: Vec<Event>,
    span_stack: Vec<u64>,
}

impl TlsBuf {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::replace(&mut self.buf, Vec::with_capacity(FLUSH_THRESHOLD));
        send_batch(self.generation, batch);
    }

    fn push(&mut self, event: Event) {
        self.buf.push(event);
        if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush();
        }
    }
}

impl Drop for TlsBuf {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            let batch = std::mem::take(&mut self.buf);
            send_batch(self.generation, batch);
        }
    }
}

fn send_batch(generation: u64, batch: Vec<Event>) {
    let guard = lock_shared();
    if let Some(shared) = guard.as_ref() {
        if shared.generation == generation {
            // The accumulator outlives every sender; a send can only
            // fail during teardown races, in which case the events
            // belong to a recorder that is already gone.
            let _ = shared.tx.send(batch);
        }
    }
}

thread_local! {
    static TLS: RefCell<Option<TlsBuf>> = const { RefCell::new(None) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn thread_id() -> u64 {
    THREAD_ID.try_with(|id| *id).unwrap_or(0)
}

/// Run `f` against this thread's event buffer, (re)binding it to the
/// current recorder generation first. Returns `None` when no recorder
/// is installed or the thread-local is unavailable (thread teardown).
fn with_tls<R>(f: impl FnOnce(&mut TlsBuf) -> R) -> Option<R> {
    TLS.try_with(|cell| -> Option<R> {
        let mut slot = cell.try_borrow_mut().ok()?;
        let generation = GENERATION.load(Ordering::Acquire);
        let bound = matches!(slot.as_ref(), Some(t) if t.generation == generation);
        if !bound {
            let guard = lock_shared();
            let shared = guard.as_ref()?;
            // Events buffered for a previous recorder are dropped here:
            // their accumulator is gone.
            *slot = Some(TlsBuf {
                generation: shared.generation,
                epoch: shared.epoch,
                buf: Vec::with_capacity(FLUSH_THRESHOLD),
                span_stack: Vec::new(),
            });
        }
        slot.as_mut().map(f)
    })
    .ok()
    .flatten()
}

/// True when a recorder is installed. The only cost emit paths pay when
/// recording is off is this relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flush this thread's buffered events to the accumulator immediately.
/// Useful before reading cross-thread state in tests; never required
/// for correctness on pool workers (their thread-local destructors
/// flush at scope exit).
pub fn flush_thread() {
    let _ = TLS.try_with(|cell| {
        if let Ok(mut slot) = cell.try_borrow_mut() {
            if let Some(tls) = slot.as_mut() {
                tls.flush();
            }
        }
    });
}

/// Add `delta` to the monotonic counter `name`. No-op when disabled or
/// `delta == 0`. Also feeds the always-on flight ring when armed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if delta == 0 {
        return;
    }
    crate::ring::record(crate::ring::FlightKind::Counter, name, delta, None);
    if !enabled() {
        return;
    }
    with_tls(|tls| tls.push(Event::Counter { name, delta }));
}

/// Record a gauge sample aggregated by maximum (e.g. peak queue depth).
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    crate::ring::record(crate::ring::FlightKind::Gauge, name, value, None);
    if !enabled() {
        return;
    }
    with_tls(|tls| tls.push(Event::GaugeMax { name, value }));
}

/// Record one histogram sample (typically nanoseconds).
#[inline]
pub fn observe_nanos(name: &'static str, value: u64) {
    crate::ring::record(crate::ring::FlightKind::Hist, name, value, None);
    if !enabled() {
        return;
    }
    with_tls(|tls| tls.push(Event::Hist { name, value }));
}

/// Emit one best-response round event for `algo` at `center`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn round_event(
    algo: &'static str,
    center: u32,
    round: u32,
    moves: u64,
    payoff_difference: f64,
    average_payoff: f64,
    potential: f64,
) {
    crate::ring::record(
        crate::ring::FlightKind::Round,
        algo,
        u64::from(round),
        Some(center),
    );
    if !enabled() {
        return;
    }
    with_tls(|tls| {
        tls.push(Event::Round {
            algo,
            center,
            round,
            moves,
            payoff_difference,
            average_payoff,
            potential,
        })
    });
}

struct SpanInner {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    center: Option<u32>,
    layer: Option<u32>,
    start_nanos: u64,
    generation: u64,
}

/// The flight-ring half of a span guard: records a close event into the
/// per-thread ring even when no recorder is installed.
struct FlightSpan {
    name: &'static str,
    center: Option<u32>,
    start: Instant,
}

/// RAII guard returned by [`span`]; records the span when dropped.
/// Inert when neither a recorder is installed nor the flight ring is
/// armed at creation (no time is read in that case).
#[must_use = "a span measures the scope it is alive for"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
    flight: Option<FlightSpan>,
}

/// Open a scoped span timer. See the [`crate::span!`] macro for the
/// ergonomic form with optional `center`/`layer` attribution.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    span_at(name, None, None)
}

/// Open a span attributed to a center.
#[inline]
pub fn span_center(name: &'static str, center: u32) -> SpanGuard {
    span_at(name, Some(center), None)
}

/// Open a span attributed to a center and a DP layer (route length).
#[inline]
pub fn span_layer(name: &'static str, center: u32, layer: u32) -> SpanGuard {
    span_at(name, Some(center), Some(layer))
}

fn span_at(name: &'static str, center: Option<u32>, layer: Option<u32>) -> SpanGuard {
    let flight = crate::ring::armed().then(|| FlightSpan {
        name,
        center,
        start: Instant::now(),
    });
    if !enabled() {
        return SpanGuard {
            inner: None,
            flight,
        };
    }
    let inner = with_tls(|tls| {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = tls.span_stack.last().copied();
        tls.span_stack.push(id);
        SpanInner {
            name,
            id,
            parent,
            center,
            layer,
            start_nanos: tls.now_nanos(),
            generation: tls.generation,
        }
    });
    SpanGuard { inner, flight }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(flight) = self.flight.take() {
            crate::ring::record(
                crate::ring::FlightKind::Span,
                flight.name,
                flight.start.elapsed().as_nanos() as u64,
                flight.center,
            );
        }
        let Some(inner) = self.inner.take() else {
            return;
        };
        with_tls(|tls| {
            if tls.generation != inner.generation {
                // The recorder this span was opened under is gone; its
                // epoch (and accumulator) with it.
                return;
            }
            match tls.span_stack.last() {
                Some(&top) if top == inner.id => {
                    tls.span_stack.pop();
                }
                _ => {
                    // Out-of-order guard drop: remove by value so the
                    // parent chain stays usable.
                    if let Some(pos) = tls.span_stack.iter().rposition(|&id| id == inner.id) {
                        tls.span_stack.remove(pos);
                    }
                }
            }
            let end = tls.now_nanos();
            tls.push(Event::Span {
                name: inner.name,
                id: inner.id,
                parent: inner.parent,
                thread: thread_id(),
                center: inner.center,
                layer: inner.layer,
                start_nanos: inner.start_nanos,
                duration_nanos: end.saturating_sub(inner.start_nanos),
            });
        });
    }
}

/// RAII guard returned by [`hist_timer`]; records the elapsed
/// nanoseconds as a histogram sample when dropped.
#[must_use = "a histogram timer measures the scope it is alive for"]
pub struct HistTimer {
    name: &'static str,
    start: Option<Instant>,
}

/// Time a scope and record the elapsed nanoseconds into histogram
/// `name` on drop (into the snapshot and, when armed, the flight ring).
/// Inert when neither sink is live at creation.
#[inline]
pub fn hist_timer(name: &'static str) -> HistTimer {
    HistTimer {
        name,
        start: (enabled() || crate::ring::armed()).then(Instant::now),
    }
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            observe_nanos(self.name, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Handle to an installed global recorder; finish (or drop) it to tear
/// the pipeline down and collect the [`Snapshot`].
pub struct Recorder {
    generation: u64,
    handle: Option<JoinHandle<Snapshot>>,
    epoch_unix_ms: u64,
}

impl Recorder {
    /// Install a global recorder and start its accumulator thread.
    ///
    /// Recorders are process-global; installing a second one while the
    /// first is live disconnects the first (its `finish` returns
    /// whatever it had accumulated). Serialize recorder use in tests.
    pub fn install() -> Recorder {
        let (tx, rx) = mpsc::channel::<Vec<Event>>();
        let handle = std::thread::Builder::new()
            .name("fta-obs-accumulator".to_owned())
            .spawn(move || {
                let mut snapshot = Snapshot::new();
                while let Ok(batch) = rx.recv() {
                    for event in &batch {
                        snapshot.apply(event);
                    }
                }
                snapshot
            })
            .expect("spawn fta-obs accumulator thread");
        let epoch_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let generation = GENERATION.fetch_add(1, Ordering::AcqRel) + 1;
        {
            let mut guard = lock_shared();
            *guard = Some(Shared {
                tx,
                epoch: Instant::now(),
                generation,
            });
        }
        ENABLED.store(true, Ordering::Release);
        Recorder {
            generation,
            handle: Some(handle),
            epoch_unix_ms,
        }
    }

    /// Tear down the pipeline and return everything accumulated.
    ///
    /// Threads that finished (or whose pool scope exited) before this
    /// call have flushed via their thread-local destructors; the
    /// calling thread is flushed here. Other still-live threads flush
    /// on their next batch boundary and those events are discarded.
    pub fn finish(mut self) -> Snapshot {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> Snapshot {
        let Some(handle) = self.handle.take() else {
            return Snapshot::new();
        };
        ENABLED.store(false, Ordering::Release);
        flush_thread();
        {
            let mut guard = lock_shared();
            if guard.as_ref().map(|s| s.generation) == Some(self.generation) {
                // Dropping the sender closes the channel; the
                // accumulator drains what was sent and returns.
                *guard = None;
            }
        }
        GENERATION.fetch_add(1, Ordering::AcqRel);
        let mut snapshot = handle.join().unwrap_or_default();
        snapshot.epoch_unix_ms = self.epoch_unix_ms;
        snapshot
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        let _ = self.finish_inner();
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("generation", &self.generation)
            .field("live", &self.handle.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::test_lock::serialize_recorder_tests;

    #[test]
    fn disabled_paths_are_noops() {
        let _guard = serialize_recorder_tests();
        assert!(!enabled());
        counter("t.counter", 5);
        gauge_max("t.gauge", 7);
        observe_nanos("t.hist", 100);
        round_event("FGT", 0, 1, 2, 0.5, 1.0, 3.0);
        let span = span("t.span");
        drop(span);
        // Nothing was installed, so a fresh recorder sees nothing.
        let recorder = Recorder::install();
        let snapshot = recorder.finish();
        assert!(snapshot.is_empty(), "unexpected events: {snapshot:?}");
    }

    #[test]
    fn spans_nest_and_carry_parents() {
        let _guard = serialize_recorder_tests();
        let recorder = Recorder::install();
        {
            let _outer = span("t.outer");
            let _inner = span_center("t.inner", 3);
        }
        let snapshot = recorder.finish();
        assert_eq!(snapshot.span_count("t.outer"), 1);
        assert_eq!(snapshot.span_count("t.inner"), 1);
        let outer = snapshot.spans.iter().find(|s| s.name == "t.outer").unwrap();
        let inner = snapshot.spans.iter().find(|s| s.name == "t.inner").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(inner.center, Some(3));
        assert!(outer.duration_nanos >= inner.duration_nanos);
        assert!(inner.start_nanos >= outer.start_nanos);
    }

    #[test]
    fn counters_gauges_hists_accumulate() {
        let _guard = serialize_recorder_tests();
        let recorder = Recorder::install();
        counter("t.acc", 3);
        counter("t.acc", 0); // no-op
        counter("t.acc", 4);
        gauge_max("t.peak", 9);
        gauge_max("t.peak", 4);
        observe_nanos("t.lat", 10);
        observe_nanos("t.lat", 1000);
        let snapshot = recorder.finish();
        assert_eq!(snapshot.counter("t.acc"), 7);
        assert_eq!(snapshot.gauge("t.peak"), Some(9));
        let hist = snapshot.histograms.get("t.lat").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 1010);
    }

    #[test]
    fn span_opened_under_dead_recorder_is_dropped() {
        let _guard = serialize_recorder_tests();
        let recorder = Recorder::install();
        let stale = span("t.stale");
        drop(recorder);
        drop(stale); // must not panic or leak into the next recorder
        let recorder = Recorder::install();
        counter("t.alive", 1);
        let snapshot = recorder.finish();
        assert_eq!(snapshot.span_count("t.stale"), 0);
        assert_eq!(snapshot.counter("t.alive"), 1);
    }
}

#[cfg(test)]
pub(crate) mod test_lock {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static RECORDER_TEST_LOCK: Mutex<()> = Mutex::new(());

    /// The recorder is process-global, so tests that install one must
    /// not overlap. Hold this guard for the duration of the test.
    pub fn serialize_recorder_tests() -> MutexGuard<'static, ()> {
        RECORDER_TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

//! The accumulated view of one recording session: counters, gauges,
//! histograms, closed spans, and solver round events, plus the
//! Prometheus text exposition.

use crate::hist::{bucket_upper_bound, Histogram};
use crate::recorder::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A closed span as stored in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static span name.
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Per-thread id assigned on first emit.
    pub thread: u64,
    /// Center attribution, if any.
    pub center: Option<u32>,
    /// DP-layer attribution, if any.
    pub layer: Option<u32>,
    /// Nanoseconds since the recorder epoch.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub duration_nanos: u64,
}

/// One best-response round event as stored in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord {
    /// Algorithm name (`"FGT"`, `"PFGT"`, `"IEGT"`).
    pub algo: &'static str,
    /// Center the loop ran for.
    pub center: u32,
    /// 1-based round number within the current (re)start.
    pub round: u32,
    /// Strategy switches performed this round.
    pub moves: u64,
    /// Max−min payoff difference after the round.
    pub payoff_difference: f64,
    /// Average worker payoff after the round.
    pub average_payoff: f64,
    /// Potential-function value after the round.
    pub potential: f64,
}

/// Everything one recording session accumulated, in deterministic
/// (name-sorted) map order. Spans and rounds keep accumulator arrival
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Unix milliseconds at recorder install (trace-header metadata).
    pub epoch_unix_ms: u64,
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Max-aggregated gauges by name.
    pub gauges: BTreeMap<&'static str, u64>,
    /// Log2 histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
    /// All closed spans.
    pub spans: Vec<SpanRecord>,
    /// All solver round events.
    pub rounds: Vec<RoundRecord>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event in (called by the accumulator thread).
    pub fn apply(&mut self, event: &Event) {
        match *event {
            Event::Counter { name, delta } => {
                *self.counters.entry(name).or_insert(0) += delta;
            }
            Event::GaugeMax { name, value } => {
                let slot = self.gauges.entry(name).or_insert(0);
                *slot = (*slot).max(value);
            }
            Event::Hist { name, value } => {
                self.histograms.entry(name).or_default().record(value);
            }
            Event::Span {
                name,
                id,
                parent,
                thread,
                center,
                layer,
                start_nanos,
                duration_nanos,
            } => self.spans.push(SpanRecord {
                name,
                id,
                parent,
                thread,
                center,
                layer,
                start_nanos,
                duration_nanos,
            }),
            Event::Round {
                algo,
                center,
                round,
                moves,
                payoff_difference,
                average_payoff,
                potential,
            } => self.rounds.push(RoundRecord {
                algo,
                center,
                round,
                moves,
                payoff_difference,
                average_payoff,
                potential,
            }),
        }
    }

    /// True when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.rounds.is_empty()
    }

    /// Value of counter `name` (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Value of gauge `name`, if ever sampled.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Number of closed spans named `name`.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Total duration of all spans named `name`, in nanoseconds.
    /// Overlapping spans (e.g. per-chunk spans on parallel workers)
    /// sum their wall-clock independently.
    pub fn span_nanos(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_nanos)
            .sum()
    }

    /// `(count, total_nanos)` aggregates per span name, name-sorted.
    pub fn span_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for span in &self.spans {
            let slot = totals.entry(span.name).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += span.duration_nanos;
        }
        totals
    }

    /// Render the snapshot as Prometheus text exposition (version 0.0.4):
    /// counters as `fta_<name>_total`, gauges as `fta_<name>`, span
    /// aggregates as `fta_span_<name>_{total,nanos_total}`, and
    /// histograms as `fta_<name>` with cumulative `_bucket{le="…"}`
    /// lines plus `_sum`/`_count` and derived `_p50`/`_p95`/`_p99`
    /// quantile gauges (bucket upper bounds, so coarse within 2×).
    /// Every metric carries `# HELP` and `# TYPE` lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let metric = metric_name(name);
            let _ = writeln!(out, "# HELP {metric}_total fta-obs counter '{name}'");
            let _ = writeln!(out, "# TYPE {metric}_total counter");
            let _ = writeln!(out, "{metric}_total {value}");
        }
        for (name, value) in &self.gauges {
            let metric = metric_name(name);
            let _ = writeln!(out, "# HELP {metric} fta-obs max-aggregated gauge '{name}'");
            let _ = writeln!(out, "# TYPE {metric} gauge");
            let _ = writeln!(out, "{metric} {value}");
        }
        for (name, (count, nanos)) in &self.span_totals() {
            let metric = format!("fta_span_{}", sanitize(name));
            let _ = writeln!(out, "# HELP {metric}_total closed '{name}' spans");
            let _ = writeln!(out, "# TYPE {metric}_total counter");
            let _ = writeln!(out, "{metric}_total {count}");
            let _ = writeln!(
                out,
                "# HELP {metric}_nanos_total summed '{name}' span duration in nanoseconds"
            );
            let _ = writeln!(out, "# TYPE {metric}_nanos_total counter");
            let _ = writeln!(out, "{metric}_nanos_total {nanos}");
        }
        for (name, hist) in &self.histograms {
            let metric = metric_name(name);
            let _ = writeln!(out, "# HELP {metric} fta-obs log2 histogram '{name}'");
            let _ = writeln!(out, "# TYPE {metric} histogram");
            let mut cumulative = 0u64;
            for (index, count) in hist.nonzero_buckets() {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{metric}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(index)
                );
            }
            let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{metric}_sum {}", hist.sum);
            let _ = writeln!(out, "{metric}_count {}", hist.count);
            for (suffix, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                let _ = writeln!(
                    out,
                    "# HELP {metric}_{suffix} '{name}' {suffix} bucket upper bound (log2-coarse)"
                );
                let _ = writeln!(out, "# TYPE {metric}_{suffix} gauge");
                let _ = writeln!(out, "{metric}_{suffix} {}", hist.quantile_upper_bound(q));
            }
        }
        out
    }
}

/// `fta_<sanitized name>`.
fn metric_name(name: &str) -> String {
    format!("fta_{}", sanitize(name))
}

/// Map an event name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`); everything else becomes `_`.
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        snap.apply(&Event::Counter {
            name: "vdps.states",
            delta: 40,
        });
        snap.apply(&Event::Counter {
            name: "vdps.states",
            delta: 2,
        });
        snap.apply(&Event::GaugeMax {
            name: "pool.queue_depth",
            value: 5,
        });
        snap.apply(&Event::GaugeMax {
            name: "pool.queue_depth",
            value: 3,
        });
        snap.apply(&Event::Hist {
            name: "sim.assign_nanos",
            value: 3,
        });
        snap.apply(&Event::Hist {
            name: "sim.assign_nanos",
            value: 1000,
        });
        snap.apply(&Event::Span {
            name: "vdps.generate",
            id: 1,
            parent: None,
            thread: 1,
            center: Some(0),
            layer: None,
            start_nanos: 10,
            duration_nanos: 500,
        });
        snap
    }

    #[test]
    fn apply_aggregates_by_kind() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter("vdps.states"), 42);
        assert_eq!(snap.gauge("pool.queue_depth"), Some(5));
        assert_eq!(snap.histograms["sim.assign_nanos"].count, 2);
        assert_eq!(snap.span_count("vdps.generate"), 1);
        assert_eq!(snap.span_nanos("vdps.generate"), 500);
        assert_eq!(snap.span_totals()["vdps.generate"], (1, 500));
        assert!(!snap.is_empty());
        assert!(Snapshot::new().is_empty());
    }

    #[test]
    fn prometheus_exposition_is_parseable_shape() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE fta_vdps_states_total counter"));
        assert!(text.contains("fta_vdps_states_total 42"));
        assert!(text.contains("# TYPE fta_pool_queue_depth gauge"));
        assert!(text.contains("fta_pool_queue_depth 5"));
        assert!(text.contains("fta_span_vdps_generate_total 1"));
        assert!(text.contains("fta_span_vdps_generate_nanos_total 500"));
        assert!(text.contains("# TYPE fta_sim_assign_nanos histogram"));
        // Bucket for value 3 has upper bound 3 (=2^2-1); cumulative 1.
        assert!(text.contains("fta_sim_assign_nanos_bucket{le=\"3\"} 1"));
        // Value 1000 lands in [512,1024), upper bound 1023; cumulative 2.
        assert!(text.contains("fta_sim_assign_nanos_bucket{le=\"1023\"} 2"));
        assert!(text.contains("fta_sim_assign_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fta_sim_assign_nanos_sum 1003"));
        assert!(text.contains("fta_sim_assign_nanos_count 2"));
        // Derived quantile gauges with HELP/TYPE: p50 of {3, 1000} is the
        // first sample's bucket bound, p95/p99 the second's.
        assert!(text.contains("# HELP fta_sim_assign_nanos_p50 "));
        assert!(text.contains("# TYPE fta_sim_assign_nanos_p50 gauge"));
        assert!(text.contains("fta_sim_assign_nanos_p50 3"));
        assert!(text.contains("fta_sim_assign_nanos_p95 1023"));
        assert!(text.contains("fta_sim_assign_nanos_p99 1023"));
        // Every sample has HELP and TYPE lines.
        assert!(text.contains("# HELP fta_vdps_states_total "));
        assert!(text.contains("# HELP fta_pool_queue_depth "));
        assert!(text.contains("# HELP fta_span_vdps_generate_total "));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
        }
    }

    #[test]
    fn sanitize_maps_to_metric_alphabet() {
        assert_eq!(sanitize("vdps.dedup-probes/x"), "vdps_dedup_probes_x");
        assert_eq!(sanitize("already_ok:name1"), "already_ok:name1");
    }
}

//! Concurrency and lifecycle tests for the global recorder.
//!
//! The recorder is process-global, so every test here serializes on
//! `TEST_LOCK` (cargo runs tests in one binary on parallel threads).

use fta_obs::{counter, observe_nanos, span_center, Recorder};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::thread;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// 8 threads each emit thousands of events through their thread-local
/// buffers; after joining them, `finish()` must account for every
/// single event — the accumulator drains all batches sent before the
/// channel closes, and thread-local destructors flush partial batches.
#[test]
fn no_events_lost_across_eight_threads() {
    let _guard = lock();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;

    let recorder = Recorder::install();
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    counter("conc.increments", 1);
                    observe_nanos("conc.samples", i);
                    if i % 100 == 0 {
                        let _span = span_center("conc.span", t as u32);
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("emitting thread panicked");
    }
    let snapshot = recorder.finish();

    assert_eq!(snapshot.counter("conc.increments"), THREADS * PER_THREAD);
    let hist = snapshot
        .histograms
        .get("conc.samples")
        .expect("histogram recorded");
    assert_eq!(hist.count, THREADS * PER_THREAD);
    // Sum of 0..PER_THREAD per thread.
    assert_eq!(hist.sum, THREADS * (PER_THREAD * (PER_THREAD - 1) / 2));
    assert_eq!(
        snapshot.span_count("conc.span"),
        (THREADS * PER_THREAD.div_ceil(100)) as usize
    );
    // Spans carry per-thread ids: all 8 emitters are distinct.
    let mut threads: Vec<u64> = snapshot
        .spans
        .iter()
        .filter(|s| s.name == "conc.span")
        .map(|s| s.thread)
        .collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), THREADS as usize);
}

/// With no recorder installed, emitting is a no-op: a recorder
/// installed afterwards sees nothing from before its install.
#[test]
fn no_recorder_means_no_events() {
    let _guard = lock();
    counter("noop.before", 10);
    observe_nanos("noop.hist", 5);
    {
        let _span = span_center("noop.span", 1);
    }
    let recorder = Recorder::install();
    let snapshot = recorder.finish();
    assert_eq!(snapshot.counter("noop.before"), 0);
    assert!(!snapshot.histograms.contains_key("noop.hist"));
    assert_eq!(snapshot.span_count("noop.span"), 0);
    assert!(snapshot.is_empty(), "expected empty snapshot: {snapshot:?}");
}

/// Back-to-back recording sessions are independent: the second sees
/// neither the first session's events nor stale thread-local state.
#[test]
fn sessions_are_isolated() {
    let _guard = lock();
    let first = Recorder::install();
    counter("iso.first", 1);
    let first_snap = first.finish();
    assert_eq!(first_snap.counter("iso.first"), 1);
    assert_eq!(first_snap.counter("iso.second"), 0);

    let second = Recorder::install();
    counter("iso.second", 2);
    let second_snap = second.finish();
    assert_eq!(second_snap.counter("iso.first"), 0);
    assert_eq!(second_snap.counter("iso.second"), 2);
}

/// Events below the flush threshold still arrive (finish flushes the
/// calling thread; joined threads flush via TLS destructors).
#[test]
fn partial_batches_flush_on_finish() {
    let _guard = lock();
    let recorder = Recorder::install();
    counter("partial.main", 1); // far below FLUSH_THRESHOLD
    let worker = thread::spawn(|| counter("partial.worker", 1));
    worker.join().unwrap();
    let snapshot = recorder.finish();
    assert_eq!(snapshot.counter("partial.main"), 1);
    assert_eq!(snapshot.counter("partial.worker"), 1);
}

//! Schema smoke test: validates JSONL trace and Prometheus exposition
//! artifacts.
//!
//! Two modes:
//!
//! 1. **Self-contained** (always runs): records a small session,
//!    writes both sink formats to a temp directory, and validates them
//!    with the checked-in parser/validator.
//! 2. **External** (CI `obs smoke` step): when `FTA_OBS_TRACE` /
//!    `FTA_OBS_PROM` point at files produced by a real
//!    `fta solve --trace-out … --metrics-out …` run, those files are
//!    validated too — including the acceptance-level requirements
//!    (≥ 1 span per center, per-round solver events, and counters
//!    covering generation, best response, and the worker pool).

use fta_obs::trace::{self, validate_prometheus};
use fta_obs::{counter, observe_nanos, round_event, span_center, Recorder};
use std::path::PathBuf;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fta-obs-smoke-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn self_contained_artifacts_validate() {
    // Sole recorder user in this test binary; no lock needed.
    let recorder = Recorder::install();
    for center in 0..3u32 {
        let _span = span_center("smoke.center", center);
        counter("smoke.states", 10 + u64::from(center));
        observe_nanos("smoke.latency_nanos", 1_000 * u64::from(center + 1));
        for round in 1..=2u32 {
            round_event("FGT", center, round, 5, 0.5, 1.0, 2.0);
        }
    }
    let snapshot = recorder.finish();

    let dir = temp_dir();
    let trace_path = dir.join("trace.jsonl");
    let prom_path = dir.join("metrics.prom");
    trace::write_file(&snapshot, &trace_path).expect("write trace");
    std::fs::write(&prom_path, snapshot.to_prometheus()).expect("write prom");

    let parsed = trace::parse_file(&trace_path).expect("trace validates");
    assert_eq!(parsed.version, trace::SCHEMA_VERSION);
    assert_eq!(parsed.spans_named("smoke.center").count(), 3);
    assert_eq!(parsed.rounds_for("FGT").count(), 6);
    assert_eq!(parsed.counters["smoke.states"], 10 + 11 + 12);
    assert_eq!(parsed.hists["smoke.latency_nanos"].count, 3);

    let prom = std::fs::read_to_string(&prom_path).unwrap();
    let samples = validate_prometheus(&prom).expect("prometheus validates");
    assert!(samples > 0);
    assert!(prom.contains("fta_smoke_states_total 33"));

    // Chrome conversion stays valid JSON with one event per span.
    let chrome = trace::to_chrome_trace(&parsed);
    let v: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    assert_eq!(
        v.field("traceEvents")
            .and_then(serde_json::Value::as_array)
            .map(Vec::len),
        Some(3)
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// CI hands real solver artifacts in via env vars; skip silently when
/// they are absent (local `cargo test`).
#[test]
fn external_artifacts_validate_when_provided() {
    if let Ok(trace_path) = std::env::var("FTA_OBS_TRACE") {
        let parsed = trace::parse_file(trace_path.as_ref())
            .unwrap_or_else(|e| panic!("{trace_path} is not a valid trace: {e}"));
        assert!(
            !parsed.spans.is_empty(),
            "solver trace {trace_path} contains no spans"
        );
        // ≥ 1 span per center: every center a solve span was attributed
        // to also has center-attributed work under it.
        let centers: std::collections::BTreeSet<u32> =
            parsed.spans.iter().filter_map(|s| s.center).collect();
        assert!(
            !centers.is_empty(),
            "no center-attributed spans in {trace_path}"
        );
        assert!(
            !parsed.rounds.is_empty(),
            "no per-round solver events in {trace_path}"
        );
        assert!(
            parsed.counters.keys().any(|k| k.starts_with("vdps.")),
            "no generation counters in {trace_path}"
        );
        assert!(
            parsed.counters.keys().any(|k| k.starts_with("br.")),
            "no best-response counters in {trace_path}"
        );
    }
    if let Ok(prom_path) = std::env::var("FTA_OBS_PROM") {
        let text = std::fs::read_to_string(&prom_path)
            .unwrap_or_else(|e| panic!("cannot read {prom_path}: {e}"));
        let samples = validate_prometheus(&text)
            .unwrap_or_else(|e| panic!("{prom_path} is not valid exposition: {e}"));
        assert!(samples > 0);
        for family in ["fta_vdps_", "fta_br_", "fta_pool_"] {
            assert!(text.contains(family), "{prom_path} lacks {family}* metrics");
        }
    }
}

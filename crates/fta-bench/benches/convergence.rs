//! Convergence benchmarks — Figure 12's story in wall-clock form: how long
//! FGT and IEGT take to reach their equilibria as the population grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fta_algorithms::{solve, Algorithm, FgtConfig, IegtConfig, SolveConfig};
use fta_bench::syn_single_center;
use fta_vdps::VdpsConfig;
use std::hint::black_box;

fn bench_to_equilibrium(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);
    for &n_workers in &[20usize, 40, 80] {
        let instance = syn_single_center(n_workers, 60, 9);
        group.bench_with_input(BenchmarkId::new("FGT", n_workers), &n_workers, |b, _| {
            let cfg = SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm: Algorithm::Fgt(FgtConfig::default()),
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            };
            b.iter(|| black_box(solve(&instance, &cfg).trace.len()));
        });
        group.bench_with_input(BenchmarkId::new("IEGT", n_workers), &n_workers, |b, _| {
            let cfg = SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm: Algorithm::Iegt(IegtConfig::default()),
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            };
            b.iter(|| black_box(solve(&instance, &cfg).trace.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_to_equilibrium);
criterion_main!(benches);

//! Platform-simulator benchmarks: wall time of a simulated day under each
//! dispatch policy and demand level. Complements the `ext4` experiment
//! (which measures fairness outcomes) with throughput numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fta_algorithms::{Algorithm, FgtConfig, IegtConfig};
use fta_sim::{run, DispatchPolicy, Scenario, ScenarioConfig, SimConfig};
use fta_vdps::VdpsConfig;
use std::hint::black_box;

fn policies() -> Vec<(&'static str, DispatchPolicy)> {
    vec![
        ("IMMED", DispatchPolicy::Immediate),
        ("GTA", DispatchPolicy::Batch(Algorithm::Gta)),
        (
            "FGT",
            DispatchPolicy::Batch(Algorithm::Fgt(FgtConfig::default())),
        ),
        (
            "IEGT",
            DispatchPolicy::Batch(Algorithm::Iegt(IegtConfig::default())),
        ),
    ]
}

fn bench_simulated_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_day");
    group.sample_size(10);
    for &rate in &[60.0_f64, 120.0] {
        let scenario = Scenario::generate(
            &ScenarioConfig {
                n_workers: 24,
                n_delivery_points: 48,
                extent: 5.0,
                arrival_rate: rate,
                ..ScenarioConfig::default()
            },
            4.0,
            17,
        );
        for (name, policy) in policies() {
            group.bench_with_input(BenchmarkId::new(name, rate as u64), &rate, |b, _| {
                let cfg = SimConfig {
                    horizon: 4.0,
                    assignment_period: 0.25,
                    policy,
                    vdps: VdpsConfig::pruned(2.0, 3),
                    parallel: false,
                    ..SimConfig::day(fta_algorithms::Algorithm::Gta)
                };
                b.iter(|| black_box(run(&scenario, &cfg)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulated_day);
criterion_main!(benches);

//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//! IEGT redraw policies, FGT restart counts, and IAU weight settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fta_algorithms::{solve, Algorithm, FgtConfig, IegtConfig, RedrawPolicy, SolveConfig};
use fta_bench::syn_single_center;
use fta_core::IauParams;
use fta_vdps::VdpsConfig;
use std::hint::black_box;

fn bench_redraw_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_iegt_redraw");
    group.sample_size(10);
    let instance = syn_single_center(40, 60, 21);
    for (name, policy) in [
        ("uniform", RedrawPolicy::UniformBetter),
        ("minimal", RedrawPolicy::MinimalBetter),
        ("best", RedrawPolicy::BestAvailable),
    ] {
        group.bench_function(name, |b| {
            let cfg = SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm: Algorithm::Iegt(IegtConfig {
                    redraw: policy,
                    ..IegtConfig::default()
                }),
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            };
            b.iter(|| black_box(solve(&instance, &cfg)));
        });
    }
    group.finish();
}

fn bench_fgt_restarts(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_fgt_restarts");
    group.sample_size(10);
    let instance = syn_single_center(40, 60, 22);
    for &restarts in &[0usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(restarts),
            &restarts,
            |b, &restarts| {
                let cfg = SolveConfig {
                    vdps: VdpsConfig::pruned(2.0, 3),
                    algorithm: Algorithm::Fgt(FgtConfig {
                        restarts,
                        ..FgtConfig::default()
                    }),
                    parallel: false,
                    ..SolveConfig::new(Algorithm::Gta)
                };
                b.iter(|| black_box(solve(&instance, &cfg)));
            },
        );
    }
    group.finish();
}

fn bench_iau_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_iau_weights");
    group.sample_size(10);
    let instance = syn_single_center(40, 60, 23);
    for (name, alpha, beta) in [
        ("envy_only", 1.0, 0.0),
        ("balanced", 0.5, 0.5),
        ("guilt_only", 0.0, 1.0),
    ] {
        group.bench_function(name, |b| {
            let cfg = SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm: Algorithm::Fgt(FgtConfig {
                    iau: IauParams { alpha, beta },
                    ..FgtConfig::default()
                }),
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            };
            b.iter(|| black_box(solve(&instance, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_redraw_policies,
    bench_fgt_restarts,
    bench_iau_weights
);
criterion_main!(benches);

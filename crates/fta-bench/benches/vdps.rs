//! C-VDPS generation benchmarks — the CPU-time story of Figures 2–3:
//! ε-pruned generation vs the unpruned `-W` variant across delivery-point
//! counts and ε values, plus the ISSUE 2 engine comparison (brute-force
//! naive / hash-map oracle / flat frontier, sequential and pooled) and a
//! sequential-vs-pooled whole-solve benchmark on a multi-center instance.
//!
//! Set `FTA_BENCH_QUICK=1` for a CI-sized run (small sweeps, few samples).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fta_algorithms::{solve_with_pool, Algorithm, SolveConfig};
use fta_bench::syn_single_center;
use fta_data::SynConfig;
use fta_vdps::generator::generate_c_vdps_hashmap;
use fta_vdps::naive::generate_naive;
use fta_vdps::{generate_c_vdps_flat, StrategySpace, VdpsConfig, WorkerPool};
use std::hint::black_box;

/// CI quick mode: tiny sweeps so `cargo bench -- vdps` finishes in seconds.
fn quick() -> bool {
    std::env::var_os("FTA_BENCH_QUICK").is_some()
}

fn sample_size() -> usize {
    if quick() {
        3
    } else {
        10
    }
}

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdps_generation");
    group.sample_size(sample_size());
    let sizes: &[usize] = if quick() {
        &[20, 40]
    } else {
        &[20, 40, 60, 80, 100]
    };
    for &n_dps in sizes {
        let instance = syn_single_center(40, n_dps, 7);
        let views = instance.center_views();
        group.bench_with_input(BenchmarkId::new("pruned_eps2", n_dps), &n_dps, |b, _| {
            b.iter(|| {
                black_box(StrategySpace::build(
                    &instance,
                    &views[0],
                    &VdpsConfig::pruned(2.0, 3),
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("unpruned_W", n_dps), &n_dps, |b, _| {
            b.iter(|| {
                black_box(StrategySpace::build(
                    &instance,
                    &views[0],
                    &VdpsConfig::unpruned(3),
                ))
            });
        });
    }
    group.finish();
}

fn bench_epsilon_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdps_epsilon_sweep");
    group.sample_size(sample_size());
    let instance = syn_single_center(40, if quick() { 40 } else { 100 }, 11);
    let views = instance.center_views();
    let epsilons: &[f64] = if quick() {
        &[0.5, 2.0]
    } else {
        &[0.5, 1.0, 2.0, 3.0, 4.0]
    };
    for &eps in epsilons {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                black_box(StrategySpace::build(
                    &instance,
                    &views[0],
                    &VdpsConfig::pruned(eps, 3),
                ))
            });
        });
    }
    group.finish();
}

/// ISSUE 2: naive reference vs hash-map oracle vs flat engine (sequential
/// and pooled) on the unpruned DP — the configuration where generation
/// cost dominates (Figures 2–3 `-W` CPU panels).
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdps_engines");
    group.sample_size(sample_size());
    let sizes: &[usize] = if quick() { &[20] } else { &[20, 40, 60] };
    let config = VdpsConfig::unpruned(3);
    let pool = WorkerPool::new();
    for &n_dps in sizes {
        let instance = syn_single_center(40, n_dps, 7);
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        // Brute force is only tractable at the smallest size.
        if n_dps <= 20 {
            group.bench_with_input(BenchmarkId::new("naive", n_dps), &n_dps, |b, _| {
                b.iter(|| black_box(generate_naive(&instance, &aggs, &views[0], &config)));
            });
        }
        group.bench_with_input(BenchmarkId::new("hashmap", n_dps), &n_dps, |b, _| {
            b.iter(|| {
                black_box(generate_c_vdps_hashmap(
                    &instance, &aggs, &views[0], &config,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("flat", n_dps), &n_dps, |b, _| {
            b.iter(|| {
                black_box(generate_c_vdps_flat(
                    &instance, &aggs, &views[0], &config, None,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("flat_pooled", n_dps), &n_dps, |b, _| {
            b.iter(|| {
                pool.scope(|ts| {
                    black_box(generate_c_vdps_flat(
                        &instance,
                        &aggs,
                        &views[0],
                        &config,
                        Some(ts),
                    ))
                })
            });
        });
    }
    group.finish();
}

/// ISSUE 2: whole-instance solve on a multi-center instance, sequential vs
/// the shared bounded worker pool (which replaced the old
/// one-thread-per-center spawn).
fn bench_pooled_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_multi_center");
    group.sample_size(sample_size());
    let (centers, workers, tasks, dps) = if quick() {
        (4, 24, 400, 60)
    } else {
        (8, 64, 2_000, 200)
    };
    let instance = fta_data::generate_syn(
        &SynConfig {
            n_centers: centers,
            n_workers: workers,
            n_tasks: tasks,
            n_delivery_points: dps,
            extent: 8.0,
            ..SynConfig::bench_scale()
        },
        13,
    );
    let config = SolveConfig::new(Algorithm::Gta);
    let sequential = WorkerPool::sequential();
    let pooled = WorkerPool::new();
    group.bench_with_input(BenchmarkId::new("sequential", centers), &centers, |b, _| {
        b.iter(|| black_box(solve_with_pool(&instance, &config, &sequential)));
    });
    group.bench_with_input(
        BenchmarkId::new(format!("pooled_{}threads", pooled.threads()), centers),
        &centers,
        |b, _| {
            b.iter(|| black_box(solve_with_pool(&instance, &config, &pooled)));
        },
    );
    group.finish();
}

/// ISSUE 3: telemetry overhead on the generation hot path.
/// `recording_off` is the production configuration — no recorder is
/// installed, so every instrumentation point costs one relaxed atomic
/// load — and must track the plain pre-telemetry numbers;
/// `recording_on` measures the full TLS-buffered recording pipeline.
fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdps_telemetry");
    group.sample_size(sample_size());
    let n_dps = if quick() { 20 } else { 40 };
    let instance = syn_single_center(40, n_dps, 7);
    let aggs = instance.dp_aggregates();
    let views = instance.center_views();
    let config = VdpsConfig::unpruned(3);
    group.bench_with_input(BenchmarkId::new("recording_off", n_dps), &n_dps, |b, _| {
        assert!(!fta_obs::enabled(), "no recorder may be active here");
        b.iter(|| {
            black_box(generate_c_vdps_flat(
                &instance, &aggs, &views[0], &config, None,
            ))
        });
    });
    group.bench_with_input(BenchmarkId::new("recording_on", n_dps), &n_dps, |b, _| {
        let recorder = fta_obs::Recorder::install();
        b.iter(|| {
            black_box(generate_c_vdps_flat(
                &instance, &aggs, &views[0], &config, None,
            ))
        });
        let snapshot = recorder.finish();
        assert!(snapshot.counter("vdps.states") > 0);
    });
    group.finish();

    // CI quick-mode hard bound: a disabled emit is one relaxed load plus
    // a branch, so leaving the instrumentation compiled in cannot shift
    // the paper's CPU-time plots. Budget is deliberately generous to
    // stay flake-free on shared runners.
    if quick() {
        let iters = 1_000_000u64;
        let per_op = |t: std::time::Instant| {
            t.elapsed().as_nanos() as f64 / f64::from(u32::try_from(iters).unwrap())
        };

        // Everything off (no recorder, flight ring disarmed): one relaxed
        // load plus a branch per emit.
        fta_obs::ring::set_armed(false);
        let t = std::time::Instant::now();
        for i in 0..iters {
            fta_obs::counter("bench.disabled_probe", black_box(i) | 1);
        }
        let off_ns = per_op(t);
        assert!(
            off_ns < 50.0,
            "disabled telemetry emit costs {off_ns:.1} ns/op (budget 50 ns)"
        );

        // Production default: no recorder but the flight ring armed, so
        // every emit also lands in the per-thread ring (uncontended
        // try_lock + slot write). Emits happen once per solve/batch, not
        // per inner-loop iteration, so this budget is generous.
        fta_obs::ring::set_armed(true);
        let t = std::time::Instant::now();
        for i in 0..iters {
            fta_obs::counter("bench.disabled_probe", black_box(i) | 1);
        }
        let armed_ns = per_op(t);
        assert!(
            armed_ns < 250.0,
            "armed flight-ring emit costs {armed_ns:.1} ns/op (budget 250 ns)"
        );
        println!(
            "emit cost: {off_ns:.2} ns/op everything-off (budget 50 ns), \
             {armed_ns:.2} ns/op with armed flight ring (budget 250 ns)"
        );
    }
}

criterion_group!(
    benches,
    bench_pruning,
    bench_epsilon_sweep,
    bench_engines,
    bench_pooled_solve,
    bench_telemetry_overhead
);
criterion_main!(benches);

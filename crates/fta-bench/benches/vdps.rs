//! C-VDPS generation benchmarks — the CPU-time story of Figures 2–3:
//! ε-pruned generation vs the unpruned `-W` variant across delivery-point
//! counts and ε values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fta_bench::syn_single_center;
use fta_vdps::{StrategySpace, VdpsConfig};
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdps_generation");
    group.sample_size(10);
    for &n_dps in &[20usize, 40, 60, 80, 100] {
        let instance = syn_single_center(40, n_dps, 7);
        let views = instance.center_views();
        group.bench_with_input(BenchmarkId::new("pruned_eps2", n_dps), &n_dps, |b, _| {
            b.iter(|| {
                black_box(StrategySpace::build(
                    &instance,
                    &views[0],
                    &VdpsConfig::pruned(2.0, 3),
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("unpruned_W", n_dps), &n_dps, |b, _| {
            b.iter(|| {
                black_box(StrategySpace::build(
                    &instance,
                    &views[0],
                    &VdpsConfig::unpruned(3),
                ))
            });
        });
    }
    group.finish();
}

fn bench_epsilon_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("vdps_epsilon_sweep");
    group.sample_size(10);
    let instance = syn_single_center(40, 100, 11);
    let views = instance.center_views();
    for &eps in &[0.5, 1.0, 2.0, 3.0, 4.0] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| {
                black_box(StrategySpace::build(
                    &instance,
                    &views[0],
                    &VdpsConfig::pruned(eps, 3),
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pruning, bench_epsilon_sweep);
criterion_main!(benches);

//! Assignment-algorithm benchmarks — the CPU-time panels of Figures 4–9:
//! MPTA vs GTA vs FGT vs IEGT across worker counts and delivery-point
//! counts on single-center subproblems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fta_algorithms::{solve, Algorithm, FgtConfig, IegtConfig, MptaConfig, SolveConfig};
use fta_bench::{gm_default, syn_single_center};
use fta_vdps::VdpsConfig;
use std::hint::black_box;

fn algorithms() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("MPTA", Algorithm::Mpta(MptaConfig::default())),
        ("GTA", Algorithm::Gta),
        ("FGT", Algorithm::Fgt(FgtConfig::default())),
        ("IEGT", Algorithm::Iegt(IegtConfig::default())),
    ]
}

fn bench_workers(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_by_workers");
    group.sample_size(10);
    for &n_workers in &[20usize, 40, 80] {
        let instance = syn_single_center(n_workers, 60, 3);
        for (name, algorithm) in algorithms() {
            group.bench_with_input(BenchmarkId::new(name, n_workers), &n_workers, |b, _| {
                let cfg = SolveConfig {
                    vdps: VdpsConfig::pruned(2.0, 3),
                    algorithm,
                    parallel: false,
                    ..SolveConfig::new(Algorithm::Gta)
                };
                b.iter(|| black_box(solve(&instance, &cfg)));
            });
        }
    }
    group.finish();
}

fn bench_gm_default(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment_gm_default");
    group.sample_size(10);
    let instance = gm_default(5);
    for (name, algorithm) in algorithms() {
        group.bench_function(name, |b| {
            let cfg = SolveConfig {
                vdps: VdpsConfig::pruned(0.6, 3),
                algorithm,
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            };
            b.iter(|| black_box(solve(&instance, &cfg)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workers, bench_gm_default);
criterion_main!(benches);

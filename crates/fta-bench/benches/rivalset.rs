//! Rival-payoff engine benchmarks — rebuild-per-turn vs incremental
//! order-statistic maintenance in the FGT best-response loop.
//!
//! The rebuild engine constructs a fresh `IauEvaluator` (an `O(n)` copy of
//! every rival payoff) for each worker turn; the incremental engine builds
//! one `RivalSet` per run and patches it with `O(log n)` remove/insert
//! pairs. The gap widens with the worker count, so the sweep goes up to
//! `n = 1000` workers on a single-center instance. VDPS generation is done
//! once outside the timed region: only the equilibrium loop is measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fta_algorithms::{fgt, BestResponseEngine, FgtConfig, GameContext};
use fta_bench::syn_single_center;
use fta_vdps::{StrategySpace, VdpsConfig};
use std::hint::black_box;

fn engines() -> Vec<(&'static str, BestResponseEngine)> {
    vec![
        ("rebuild", BestResponseEngine::Rebuild),
        ("incremental", BestResponseEngine::Incremental),
    ]
}

/// FGT configuration used by the sweep: no restarts and a modest round cap
/// so both engines do the same bounded amount of best-response work.
fn fgt_config(engine: BestResponseEngine) -> FgtConfig {
    FgtConfig {
        max_rounds: 8,
        restarts: 0,
        engine,
        ..FgtConfig::default()
    }
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fgt_engine");
    group.sample_size(10);
    for &n_workers in &[50usize, 200, 1000] {
        // Delivery points are capped at 128 per center (`u128` taken mask);
        // 60 keeps the strategy spaces realistic at every sweep point.
        let instance = syn_single_center(n_workers, 60, 3);
        let views = instance.center_views();
        let space = StrategySpace::build(&instance, &views[0], &VdpsConfig::pruned(2.0, 3));
        for (name, engine) in engines() {
            group.bench_with_input(BenchmarkId::new(name, n_workers), &n_workers, |b, _| {
                let cfg = fgt_config(engine);
                b.iter(|| {
                    let mut ctx = GameContext::new(&space);
                    black_box(fgt(&mut ctx, &cfg))
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

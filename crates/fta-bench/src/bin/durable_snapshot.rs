//! Writes `BENCH_durable.json`: a machine-readable snapshot of what the
//! durability layer costs. Each grid row runs the *same* faulted,
//! incremental simulated day twice — once plain, once journaling every
//! round through `fta-durable` at one fsync policy — and reports the
//! wall-time overhead plus the journal's on-disk shape (frames left in
//! the log after snapshot truncation, valid log bytes, snapshots cut).
//!
//! The day is deliberately full-fat: fault injection (so every frame
//! carries the fault RNG stream) and incremental solving (so every frame
//! carries the solver cache seed) make the journaled payload the largest
//! the engine produces, and the snapshot cadence keeps at least one
//! snapshot + log-truncate cycle inside the timed window — the numbers
//! cover the whole durability path, not just the append.
//!
//! Usage: `cargo run -p fta-bench --release --bin durable_snapshot --
//! [OUT]` (default OUT: `BENCH_durable.json`). Set `FTA_BENCH_QUICK=1`
//! to shrink the day and repetition counts (CI smoke mode). In every
//! mode the binary *asserts* that the journaled day's metrics are
//! bit-identical to the plain day's (journaling observes the day, it
//! never changes it) and that the recommended `every-8` cadence stays
//! inside `gates::durable_overhead_ceiling` — CI runs it in quick mode
//! as a regression gate.

use fta_algorithms::Algorithm;
use fta_bench::{gates, obj};
use fta_durable::{read_log, FsyncPolicy, WAL_FILE};
use fta_sim::{run, DurableConfig, FaultPlan, Scenario, ScenarioConfig, SimConfig};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Snapshot cadence under test. Full mode measures the production
/// default (`DurableConfig::new`: every 16 rounds); the quick-mode day
/// is only 8 rounds, so quick shrinks the cadence to keep at least one
/// snapshot + log-truncate cycle inside the timed window.
fn snapshot_every(quick: bool) -> u64 {
    if quick {
        5
    } else {
        16
    }
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_durable.json".to_owned());
    let quick = gates::quick_mode();
    let reps = if quick { 3 } else { 12 };
    let horizon = if quick { 2.0 } else { 8.0 };
    let cadence = snapshot_every(quick);

    let seed = 11;
    // A city bigger than the single-center default: at 30 couriers a
    // round costs ~4 ms and the journaling delta (~0.1–0.3 ms of encode
    // + CRC + write per round) reads as several percent; at platform
    // scale the solve dominates and the measured overhead reflects what
    // a production day would actually pay.
    let scenario_config = ScenarioConfig {
        n_workers: 60,
        n_delivery_points: 120,
        arrival_rate: 400.0,
        ..ScenarioConfig::default()
    };
    let scenario = Scenario::generate(&scenario_config, horizon, seed);
    let mut plain = SimConfig::day(Algorithm::Gta);
    plain.horizon = horizon;
    plain.incremental = true;
    plain.faults = Some(FaultPlan::stress(seed));

    let baseline = run(&scenario, &plain);
    assert!(baseline.is_conserved(), "baseline day lost tasks");

    // Fresh journal directories per policy; `Journal::create` truncates
    // the log and snapshot names repeat per round, so repeated timed runs
    // into the same directory do not accumulate state.
    let scratch = std::env::temp_dir().join(format!("fta-durable-bench-{}", std::process::id()));

    let policies = [
        ("never", FsyncPolicy::Never),
        ("every-8", FsyncPolicy::EveryN(8)),
        ("always", FsyncPolicy::Always),
    ];
    let configs: Vec<SimConfig> = policies
        .iter()
        .map(|(label, fsync)| {
            plain.clone().with_durable(DurableConfig {
                dir: scratch.join(label),
                fsync: *fsync,
                snapshot_every: cadence,
                crash_after_round: None,
            })
        })
        .collect();

    // Interleaved best-of-reps: one plain day and one day per policy per
    // round-robin pass, keeping each config's minimum. The journaling
    // delta is microseconds against a ~100 ms day, while this machine's
    // load drifts tens of percent over seconds — timing each config in
    // its own contiguous block (plain `best_secs`) lets one noisy block
    // swamp the comparison, whereas interleaving gives every config a
    // rep in each quiet window.
    let mut plain_s = f64::INFINITY;
    let mut durable_s = vec![f64::INFINITY; configs.len()];
    for _ in 0..reps {
        let t = Instant::now();
        black_box(run(&scenario, &plain));
        plain_s = plain_s.min(t.elapsed().as_secs_f64());
        for (i, config) in configs.iter().enumerate() {
            let t = Instant::now();
            black_box(run(&scenario, config));
            durable_s[i] = durable_s[i].min(t.elapsed().as_secs_f64());
        }
    }

    let mut grid = Vec::new();
    for (&(label, _), (config, &durable_s)) in policies.iter().zip(configs.iter().zip(&durable_s)) {
        // One audited run: the observability pin. A journaled day must be
        // bit-for-bit the plain day — earnings, ledgers, fault counters,
        // everything.
        let audited = run(&scenario, config);
        assert_eq!(
            audited, baseline,
            "{label}: journaling perturbed the day's metrics"
        );
        let dir = scratch.join(label);
        let log = read_log(&dir.join(WAL_FILE)).expect("journal log reads back");
        assert!(!log.torn_tail, "{label}: clean run left a torn tail");
        let snapshots = std::fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().ends_with(".ftas"))
            .count();
        assert!(snapshots > 0, "{label}: day cut no snapshots");

        let overhead = durable_s / plain_s;
        fta_obs::info!(
            "{label}: plain {:.1} ms, durable {:.1} ms ({:+.1}% overhead); \
             {} log frame(s), {} valid bytes, {} snapshot(s)",
            plain_s * 1e3,
            durable_s * 1e3,
            (overhead - 1.0) * 1e2,
            log.frames.len(),
            log.valid_len,
            snapshots,
        );

        // Regression gate (shared with the schema tests via
        // `fta_bench::gates`): the recommended cadence must stay inside
        // the acceptance budget. `never`/`always` are reported for the
        // trade-off table but not gated — `always` is priced per fsync by
        // whatever disk CI runs on.
        if label == "every-8" {
            let ceiling = gates::durable_overhead_ceiling(quick);
            assert!(
                overhead <= ceiling,
                "every-8 journaling overhead {:.2}x exceeds the {ceiling:.2}x ceiling",
                overhead
            );
        }

        grid.push(obj(vec![
            ("fsync", Value::String(label.to_owned())),
            ("rounds", Value::UInt(baseline.rounds as u64)),
            ("plain_ms", Value::Float(plain_s * 1e3)),
            ("durable_ms", Value::Float(durable_s * 1e3)),
            ("overhead", Value::Float(overhead)),
            ("log_frames", Value::UInt(log.frames.len() as u64)),
            ("log_bytes", Value::UInt(log.valid_len)),
            ("snapshots", Value::UInt(snapshots as u64)),
        ]));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let snapshot = obj(vec![
        (
            "description",
            Value::String(
                "Durability overhead: one faulted incremental GTA day \
                 journaled round-by-round through fta-durable (checksummed \
                 commit log + periodic snapshots at the production \
                 cadence) vs the \
                 identical un-journaled day, per fsync policy, best-of-N; \
                 metrics pinned bit-identical across all rows"
                    .to_owned(),
            ),
        ),
        ("algorithm", Value::String("gta".to_owned())),
        ("reps", Value::UInt(reps as u64)),
        ("horizon_hours", Value::Float(horizon)),
        ("workers", Value::UInt(scenario_config.n_workers as u64)),
        ("snapshot_every", Value::UInt(cadence)),
        ("grid", Value::Array(grid)),
    ]);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serialises");
    std::fs::write(&out, json + "\n")?;
    fta_obs::info!("wrote {out}");
    Ok(())
}

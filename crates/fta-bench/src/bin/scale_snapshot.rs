//! Writes `BENCH_scale.json`: the geo-sharded scale-out snapshot —
//! concurrent shard solves with cost-aware (largest-first) scheduling
//! against the flat sequential per-center path, swept up to 10⁵ workers
//! across 200 distribution centers.
//!
//! Each grid row generates one synthetic city, solves it twice — flat
//! sequential, then sharded on a `WorkerPool` bounded by the machine's
//! hardware threads — asserts the two assignments are bit-identical
//! (GTA is deterministic and the shard layer only regroups *where* each
//! center solves), and records wall times, worker throughput, the
//! shard-balance figure of merit, and the process's peak RSS.
//!
//! Parallel speedup is a property of the hardware as much as the code,
//! so the headline gate is capability-conditioned (see
//! [`fta_bench::gates`]): the `SCALE_SPEEDUP_FLOOR` is asserted only on
//! rows solved with at least `SCALE_FLOOR_MIN_THREADS` pool threads and
//! `SCALE_FLOOR_MIN_CENTERS` centers; on narrower machines — where a
//! concurrent win is physically impossible — every row is instead held
//! to the no-loss `scale_noise_band`. The snapshot records the thread
//! count it ran with so the schema test applies the same conditional
//! logic to the committed file.
//!
//! Usage: `cargo run -p fta-bench --release --bin scale_snapshot --
//! [OUT]` (default OUT: `BENCH_scale.json`). Set `FTA_BENCH_QUICK=1`
//! to shrink the sweep (CI smoke mode).

use fta_algorithms::{
    estimate_center_cost, solve, solve_sharded_with_pool, Algorithm, SolveConfig,
};
use fta_bench::{best_secs, gates, obj};
use fta_core::{ShardBy, ShardPlan};
use fta_data::SynConfig;
use fta_vdps::{VdpsConfig, WorkerPool};
use serde_json::Value;
use std::hint::black_box;

struct Row {
    label: &'static str,
    n_centers: usize,
    n_workers: usize,
    n_dps: usize,
    n_tasks: usize,
    seed: u64,
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` off Linux or when the field is absent.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_scale.json".to_owned());
    let quick = gates::quick_mode();
    let reps = if quick { 2 } else { 3 };
    let config = SolveConfig {
        vdps: VdpsConfig::pruned(2.0, 3),
        ..SolveConfig::new(Algorithm::Gta)
    };

    let rows: &[Row] = if quick {
        &[
            Row {
                label: "quick-small",
                n_centers: 8,
                n_workers: 400,
                n_dps: 160,
                n_tasks: 1_600,
                seed: 7,
            },
            Row {
                label: "quick-mid",
                n_centers: 16,
                n_workers: 2_000,
                n_dps: 320,
                n_tasks: 3_200,
                seed: 7,
            },
        ]
    } else {
        &[
            Row {
                label: "city",
                n_centers: 16,
                n_workers: 1_000,
                n_dps: 320,
                n_tasks: 3_200,
                seed: 7,
            },
            Row {
                label: "metro",
                n_centers: 64,
                n_workers: 10_000,
                n_dps: 1_280,
                n_tasks: 12_800,
                seed: 7,
            },
            Row {
                label: "megacity",
                n_centers: 200,
                n_workers: 100_000,
                n_dps: 4_000,
                n_tasks: 40_000,
                seed: 7,
            },
        ]
    };

    let pool = WorkerPool::new();
    let threads = pool.threads();
    let band = gates::scale_noise_band(quick);
    let mut grid = Vec::new();

    for row in rows {
        let instance = fta_data::generate_syn(
            &SynConfig {
                n_centers: row.n_centers,
                n_workers: row.n_workers,
                n_tasks: row.n_tasks,
                n_delivery_points: row.n_dps,
                extent: (row.n_centers as f64).sqrt() * 2.0,
                ..SynConfig::bench_scale()
            },
            row.seed,
        );
        let shards = (threads * 2).clamp(2, row.n_centers);

        // Shard-balance figure of merit under the same cost model the
        // scheduler uses; both partitioners, but geo is the headline.
        let views = instance.center_views();
        let cost = |ci: usize| estimate_center_cost(&instance, &views[ci], &config, None);
        let geo_plan = ShardPlan::build(&instance.centers, shards, ShardBy::Geo);
        let hash_plan = ShardPlan::build(&instance.centers, shards, ShardBy::Hash);
        let geo_imbalance = geo_plan.imbalance_pct(cost);
        let hash_imbalance = hash_plan.imbalance_pct(cost);

        let sequential_s = best_secs(reps, || black_box(solve(&instance, &config)));
        let sharded_s = best_secs(reps, || {
            black_box(solve_sharded_with_pool(
                &instance,
                &config,
                &pool,
                shards,
                ShardBy::Geo,
                None,
            ))
        });

        // Determinism gate: sharding must not change the assignment, on
        // either partitioner.
        let flat = solve(&instance, &config);
        for by in [ShardBy::Geo, ShardBy::Hash] {
            let sharded = solve_sharded_with_pool(&instance, &config, &pool, shards, by, None);
            assert_eq!(
                sharded.assignment, flat.assignment,
                "{}: sharded GTA diverged from sequential ({by:?}, {shards} shards)",
                row.label
            );
        }

        let speedup = sequential_s / sharded_s;
        let throughput = row.n_workers as f64 / sharded_s;
        fta_obs::info!(
            "{}: {} centers x {} workers, {shards} shards on {threads} threads — \
             sequential {:.1} ms, sharded {:.1} ms ({speedup:.2}x), \
             {throughput:.0} workers/s, geo imbalance {geo_imbalance:.1}%",
            row.label,
            row.n_centers,
            row.n_workers,
            sequential_s * 1e3,
            sharded_s * 1e3,
        );

        // No-loss band at every size: scheduling overhead must stay
        // within timer noise of the flat path regardless of hardware.
        assert!(
            sharded_s <= sequential_s * band,
            "{}: sharded ({:.1} ms) lost to sequential ({:.1} ms) beyond the \
             {band}x noise band",
            row.label,
            sharded_s * 1e3,
            sequential_s * 1e3
        );
        // Capability-conditioned headline floor: only meaningful where
        // the hardware can express concurrency at all.
        if threads >= gates::SCALE_FLOOR_MIN_THREADS
            && row.n_centers >= gates::SCALE_FLOOR_MIN_CENTERS
        {
            assert!(
                speedup >= gates::SCALE_SPEEDUP_FLOOR,
                "{}: sharded speedup {speedup:.2}x on {threads} threads fell below \
                 the {}x floor",
                row.label,
                gates::SCALE_SPEEDUP_FLOOR
            );
        }

        grid.push(obj(vec![
            ("label", Value::String(row.label.to_owned())),
            ("n_centers", Value::UInt(row.n_centers as u64)),
            ("n_workers", Value::UInt(row.n_workers as u64)),
            ("n_dps", Value::UInt(row.n_dps as u64)),
            ("n_tasks", Value::UInt(row.n_tasks as u64)),
            ("shards", Value::UInt(shards as u64)),
            ("sequential_ms", Value::Float(sequential_s * 1e3)),
            ("sharded_ms", Value::Float(sharded_s * 1e3)),
            ("speedup_sharded_vs_sequential", Value::Float(speedup)),
            ("workers_per_sec", Value::Float(throughput)),
            ("geo_imbalance_pct", Value::Float(geo_imbalance)),
            ("hash_imbalance_pct", Value::Float(hash_imbalance)),
        ]));
    }

    let snapshot = obj(vec![
        (
            "description",
            Value::String(
                "Geo-sharded concurrent multi-center solve (cost-aware \
                 largest-first shard scheduling on the worker pool) vs the \
                 flat sequential per-center path, GTA, swept to 10^5 workers \
                 / 200 centers, best-of-N"
                    .to_owned(),
            ),
        ),
        ("algorithm", Value::String("gta".to_owned())),
        ("reps", Value::UInt(reps as u64)),
        ("hw_threads", Value::UInt(threads as u64)),
        (
            "peak_rss_bytes",
            peak_rss_bytes().map_or(Value::Null, Value::UInt),
        ),
        ("grid", Value::Array(grid)),
    ]);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serialises");
    std::fs::write(&out, json + "\n")?;
    fta_obs::info!("wrote {out}");
    Ok(())
}

//! Writes `BENCH_br.json`: a machine-readable snapshot of the
//! best-response engine comparison (exhaustive rebuild vs incremental
//! rival-set vs monotone fast path) across an `engine × n × |ST|` grid,
//! so the perf trajectory of the equilibrium-loop fast path is tracked
//! in-repo. Strategy spaces are built once per row and every engine runs
//! FGT to convergence over the same spaces, so the timings isolate the
//! equilibrium loop from VDPS generation.
//!
//! Usage: `cargo run -p fta-bench --release --bin br_snapshot -- [OUT]`
//! (default OUT: `BENCH_br.json`). Set `FTA_BENCH_QUICK=1` to reduce the
//! repetition counts (CI smoke mode). In every mode the binary *asserts*
//! that the fast path is never slower than the incremental engine on any
//! row — CI runs it in quick mode as a regression gate.
//!
//! The rows keep the paper's worker-to-delivery-point ratio (Table I:
//! 2 000 workers / 5 000 DPs / 50 centers) rather than an over-subscribed
//! shape: when supply is starved, workers without any available strategy
//! must exhaust their lists under every engine and no scan policy helps.

use fta_algorithms::{fgt, BestResponseEngine, BestResponseStats, FgtConfig, GameContext};
use fta_data::SynConfig;
use fta_vdps::{StrategySpace, VdpsConfig};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

struct Row {
    label: &'static str,
    n_centers: usize,
    n_workers: usize,
    n_dps: usize,
    seed: u64,
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_br.json".to_owned());
    let quick = std::env::var_os("FTA_BENCH_QUICK").is_some();
    let reps = if quick { 2 } else { 5 };
    let vdps = VdpsConfig::pruned(2.0, 3);

    let rows = [
        Row {
            label: "small",
            n_centers: 20,
            n_workers: 200,
            n_dps: 1200,
            seed: 5,
        },
        Row {
            label: "paper",
            n_centers: 100,
            n_workers: 1000,
            n_dps: 6000,
            seed: 3,
        },
    ];

    let mut grid = Vec::new();
    for row in &rows {
        let instance = fta_data::generate_syn(
            &SynConfig {
                n_centers: row.n_centers,
                n_workers: row.n_workers,
                n_tasks: row.n_dps * 20,
                n_delivery_points: row.n_dps,
                extent: 4.0,
                ..SynConfig::bench_scale()
            },
            row.seed,
        );
        let views = instance.center_views();
        let spaces: Vec<StrategySpace> = views
            .iter()
            .map(|view| StrategySpace::build(&instance, view, &vdps))
            .collect();
        let total_slots: usize = spaces.iter().map(StrategySpace::total_slots).sum();

        let run = |engine: BestResponseEngine| -> BestResponseStats {
            let cfg = FgtConfig {
                engine,
                ..FgtConfig::default()
            };
            let mut stats = BestResponseStats::default();
            for space in &spaces {
                let mut ctx = GameContext::new(space);
                stats.merge(&fgt(&mut ctx, &cfg).stats);
            }
            stats
        };

        let engines = [
            BestResponseEngine::Rebuild,
            BestResponseEngine::Incremental,
            BestResponseEngine::FastPath,
        ];
        let mut secs = [0.0f64; 3];
        let mut stats = [BestResponseStats::default(); 3];
        for (i, &engine) in engines.iter().enumerate() {
            secs[i] = best_secs(reps, || run(engine));
            stats[i] = run(engine);
        }
        let [rebuild_s, incremental_s, fastpath_s] = secs;
        let fast = stats[2];
        let speedup_incremental = incremental_s / fastpath_s;
        let speedup_rebuild = rebuild_s / fastpath_s;
        let scan_reduction =
            stats[1].candidates_scanned as f64 / fast.candidates_scanned.max(1) as f64;

        fta_obs::info!(
            "{}: n={} |ST|={} — rebuild {:.2} ms, incremental {:.2} ms, \
             fastpath {:.2} ms ({:.2}x vs incremental, {:.1}x fewer scans)",
            row.label,
            row.n_workers,
            total_slots,
            rebuild_s * 1e3,
            incremental_s * 1e3,
            fastpath_s * 1e3,
            speedup_incremental,
            scan_reduction
        );

        // Regression gate: the fast path must never lose to the engine it
        // supersedes. Deterministic work counters put the margin far above
        // timer noise on every row of this grid.
        assert!(
            fastpath_s <= incremental_s,
            "{}: fastpath ({:.3} ms) slower than incremental ({:.3} ms)",
            row.label,
            fastpath_s * 1e3,
            incremental_s * 1e3
        );

        grid.push(obj(vec![
            ("label", Value::String(row.label.to_owned())),
            ("n_workers", Value::UInt(row.n_workers as u64)),
            ("n_centers", Value::UInt(row.n_centers as u64)),
            ("n_dps", Value::UInt(row.n_dps as u64)),
            ("total_slots", Value::UInt(total_slots as u64)),
            ("rebuild_ms", Value::Float(rebuild_s * 1e3)),
            ("incremental_ms", Value::Float(incremental_s * 1e3)),
            ("fastpath_ms", Value::Float(fastpath_s * 1e3)),
            (
                "speedup_fastpath_vs_incremental",
                Value::Float(speedup_incremental),
            ),
            ("speedup_fastpath_vs_rebuild", Value::Float(speedup_rebuild)),
            ("scan_reduction", Value::Float(scan_reduction)),
            (
                "fastpath_counters",
                obj(vec![
                    ("rounds", Value::UInt(fast.rounds)),
                    ("fastpath_rounds", Value::UInt(fast.fastpath_rounds)),
                    ("candidates_scanned", Value::UInt(fast.candidates_scanned)),
                    ("early_exits", Value::UInt(fast.early_exits)),
                    ("index_updates", Value::UInt(fast.index_updates)),
                    (
                        "candidate_evaluations",
                        Value::UInt(fast.candidate_evaluations),
                    ),
                ]),
            ),
            (
                "exhaustive_candidates_scanned",
                Value::UInt(stats[1].candidates_scanned),
            ),
        ]));
    }

    let snapshot = obj(vec![
        (
            "description",
            Value::String(
                "FGT equilibrium-loop wall time by best-response engine \
                 (exhaustive rebuild vs incremental rival-set vs monotone \
                 fast path) over prebuilt strategy spaces, best-of-N, \
                 default IAU weights (fast-path sound)"
                    .to_owned(),
            ),
        ),
        ("reps", Value::UInt(reps as u64)),
        ("grid", Value::Array(grid)),
    ]);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serialises");
    std::fs::write(&out, json + "\n")?;
    fta_obs::info!("wrote {out}");
    Ok(())
}

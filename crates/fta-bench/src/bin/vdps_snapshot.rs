//! Writes `BENCH_vdps.json`: a machine-readable snapshot of old-vs-new
//! C-VDPS generation wall time (hash-map oracle vs flat-frontier engine)
//! at n ∈ {20, 40, 60} delivery points on the unpruned DP, plus a
//! sequential-vs-pooled whole-solve comparison on a multi-center
//! instance, so the perf trajectory of ISSUE 2 is tracked in-repo.
//! Each flat-engine entry also embeds a telemetry span breakdown
//! (dp vs route vs merge milliseconds) captured via `fta-obs`.
//!
//! Usage: `cargo run -p fta-bench --release --bin vdps_snapshot -- [OUT]`
//! (default OUT: `BENCH_vdps.json`). Set `FTA_BENCH_QUICK=1` to halve the
//! repetition counts (CI smoke mode).

use fta_algorithms::{solve_with_pool, Algorithm, SolveConfig};
use fta_bench::syn_single_center;
use fta_data::SynConfig;
use fta_vdps::generator::generate_c_vdps_hashmap;
use fta_vdps::{generate_c_vdps_flat, VdpsConfig, WorkerPool};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_vdps.json".to_owned());
    let quick = std::env::var_os("FTA_BENCH_QUICK").is_some();
    let reps = if quick { 3 } else { 7 };
    let config = VdpsConfig::unpruned(3);

    // Single-thread engine comparison: old (hashmap) vs new (flat).
    let mut engines = Vec::new();
    for n_dps in [20usize, 40, 60] {
        let instance = syn_single_center(40, n_dps, 7);
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        let hashmap_s = best_secs(reps, || {
            generate_c_vdps_hashmap(&instance, &aggs, &views[0], &config)
        });
        let flat_s = best_secs(reps, || {
            generate_c_vdps_flat(&instance, &aggs, &views[0], &config, None)
        });
        // One instrumented run: the telemetry spans split the flat
        // engine's wall time into its dp / route / merge phases.
        let recorder = fta_obs::Recorder::install();
        let (pool_ref, _) = generate_c_vdps_flat(&instance, &aggs, &views[0], &config, None);
        let telemetry = recorder.finish();
        let span_ms = |name: &str| Value::Float(telemetry.span_nanos(name) as f64 / 1e6);
        engines.push(obj(vec![
            ("n_dps", Value::UInt(n_dps as u64)),
            ("vdps_count", Value::UInt(pool_ref.len() as u64)),
            ("hashmap_ms", Value::Float(hashmap_s * 1e3)),
            ("flat_ms", Value::Float(flat_s * 1e3)),
            ("speedup", Value::Float(hashmap_s / flat_s)),
            (
                "flat_span_breakdown_ms",
                obj(vec![
                    ("dp", span_ms("vdps.dp")),
                    ("routes", span_ms("vdps.routes")),
                    ("merge", span_ms("vdps.merge")),
                ]),
            ),
            (
                "dp_layers",
                Value::UInt(telemetry.span_count("vdps.layer") as u64),
            ),
        ]));
        fta_obs::info!(
            "n={n_dps}: hashmap {:.2} ms, flat {:.2} ms ({:.2}x)",
            hashmap_s * 1e3,
            flat_s * 1e3,
            hashmap_s / flat_s
        );
    }

    // Whole-solve on a multi-center instance: sequential vs pooled.
    let instance = fta_data::generate_syn(
        &SynConfig {
            n_centers: 8,
            n_workers: 64,
            n_tasks: 2_000,
            n_delivery_points: 200,
            extent: 8.0,
            ..SynConfig::bench_scale()
        },
        13,
    );
    let solve_cfg = SolveConfig::new(Algorithm::Gta);
    let sequential = WorkerPool::sequential();
    let pooled = WorkerPool::new();
    let seq_s = best_secs(reps.min(5), || {
        solve_with_pool(&instance, &solve_cfg, &sequential)
    });
    let par_s = best_secs(reps.min(5), || {
        solve_with_pool(&instance, &solve_cfg, &pooled)
    });
    // A "speedup" is only a parallel claim when the pool actually has
    // more than one thread; on a single-core box pooled-vs-sequential
    // differ only by dispatch overhead and the ratio is timer noise, so
    // the snapshot records null rather than passing noise off as a win.
    let par_speedup = (pooled.threads() > 1).then_some(seq_s / par_s);
    fta_obs::info!(
        "multi-center solve: sequential {:.2} ms, pooled({}) {:.2} ms ({})",
        seq_s * 1e3,
        pooled.threads(),
        par_s * 1e3,
        par_speedup.map_or("n/a: single hw thread".to_owned(), |s| format!("{s:.2}x"))
    );

    let snapshot = obj(vec![
        (
            "description",
            Value::String(
                "C-VDPS generation wall time, hash-map oracle vs flat-frontier \
                 engine (unpruned, max_len 3, best-of-N), and sequential vs \
                 pooled multi-center solve"
                    .to_owned(),
            ),
        ),
        ("reps", Value::UInt(reps as u64)),
        ("engines_unpruned", Value::Array(engines)),
        (
            "solve_multi_center",
            obj(vec![
                ("centers", Value::UInt(8)),
                ("threads", Value::UInt(pooled.threads() as u64)),
                ("sequential_ms", Value::Float(seq_s * 1e3)),
                ("pooled_ms", Value::Float(par_s * 1e3)),
                ("speedup", par_speedup.map_or(Value::Null, Value::Float)),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serialises");
    std::fs::write(&out, json + "\n")?;
    fta_obs::info!("wrote {out}");
    Ok(())
}

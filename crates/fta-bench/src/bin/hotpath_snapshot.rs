//! Writes `BENCH_hotpath.json`: microkernel A/Bs of the chunked-limb
//! hot-path kernels against their scalar references, a calibration pass
//! that derives the conflict-index crossover knobs for the current
//! machine, and an end-to-end n=1000 solve comparing the full calibrated
//! profile against the legacy (pre-kernel) configuration.
//!
//! Sections:
//!
//! * **scan** — `first_open_chunked` vs `first_open_scalar` over a
//!   payoff-descending-shaped mask list under heavy contention (the
//!   first open slot sits hundreds of candidates deep, the case the
//!   chunked kernel exists for).
//! * **gather** — `first_zero_chunked` vs `first_zero_scalar` over the
//!   conflict-counter probe shape.
//! * **dedup** — the rewritten [`fta_vdps::dedup::DedupTable`]
//!   (limb-split keys, batched probes, folds stored across rehash) vs a
//!   local reimplementation of the PR-2 `ShardTable` layout (whole-`u128`
//!   keys, one branch per bucket, `fold_mask` recomputed for every
//!   re-insert of every rehash) on an expansion-shaped relax stream.
//! * **calibration** — measures full-miss scan cost, full-miss index
//!   probe cost, and per-posting-entry maintenance cost, then solves the
//!   crossover model of DESIGN.md §12 for
//!   `conflict_index_min_slots` / `conflict_index_max_slots_per_bit`.
//!   Degenerate measurements (the index never pays) keep the compiled-in
//!   defaults.
//! * **end_to_end** — a paper-scale FGT solve (100 centers, 1000
//!   workers, 6000 delivery points) with the calibrated profile vs the
//!   legacy profile (scalar kernels, rebuild emission, default
//!   crossovers).
//!
//! Usage: `cargo run -p fta-bench --release --bin hotpath_snapshot --
//! [OUT]` (default OUT: `BENCH_hotpath.json`). `FTA_BENCH_QUICK=1`
//! shrinks repetition counts and widens the noise-sensitive gates (CI
//! smoke mode). The binary asserts the `fta_bench::gates` floors before
//! writing, and `tests/bench_snapshots.rs` re-asserts them against the
//! committed file.

use fta_algorithms::{solve, Algorithm, FgtConfig, SolveConfig};
use fta_bench::{best_secs, gates, obj};
use fta_data::SynConfig;
use fta_vdps::dedup::{fold_mask, rank, DedupTable, Slot, EMPTY};
use fta_vdps::hotpath::{self, EmissionKernel, HotpathProfile, ScanKernel};
use fta_vdps::{kernel, GenControl, VdpsConfig};
use serde_json::Value;
use std::hint::black_box;

/// Deterministic xorshift stream for fixtures.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut s = seed | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    }
}

/// A `u128` with roughly `bits` random bits set (sampling with
/// replacement, so occasionally fewer).
fn sparse_mask(next: &mut impl FnMut() -> u64, bits: usize) -> u128 {
    let mut m = 0u128;
    for _ in 0..bits {
        m |= 1u128 << (next() % 128);
    }
    m
}

// ---------------------------------------------------------------------
// Legacy dedup reference: the PR-2 ShardTable layout, kept here (not in
// the library) purely as the measurable "before" side of the A/B.
// ---------------------------------------------------------------------

fn bucket_of_fold(fold: u64, bits: u32) -> usize {
    (fold.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - bits)) as usize
}

/// Whole-`u128`-key open-addressed table with a scalar probe loop and a
/// rehash that recomputes `fold_mask` for every re-inserted group — the
/// exact shape `DedupTable` replaced. Same hash, same bucket order, same
/// slot layout, so the A/B isolates the probe/rehash rewrite.
struct LegacyTable {
    size: usize,
    bits: u32,
    keys: Vec<u128>,
    vals: Vec<u32>,
    masks: Vec<u128>,
    slots: Vec<Slot>,
}

impl LegacyTable {
    fn with_expected(expected: usize, size: usize) -> Self {
        let cap = (expected.max(8) * 2).next_power_of_two();
        Self {
            size,
            bits: cap.trailing_zeros(),
            keys: vec![0u128; cap],
            vals: vec![0u32; cap],
            masks: Vec::with_capacity(expected),
            slots: Vec::with_capacity(expected * size),
        }
    }

    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        self.bits = cap.trailing_zeros();
        self.keys.clear();
        self.keys.resize(cap, 0);
        self.vals.clear();
        self.vals.resize(cap, 0);
        for (g, &mask) in self.masks.iter().enumerate() {
            // The legacy sin under measurement: the fold is recomputed
            // for every group on every rehash.
            let mut idx = bucket_of_fold(fold_mask(mask), self.bits);
            while self.keys[idx] != 0 {
                idx = (idx + 1) & (cap - 1);
            }
            self.keys[idx] = mask;
            self.vals[idx] = g as u32;
        }
    }

    fn relax(&mut self, mask: u128, rank: usize, cand: Slot) {
        if (self.masks.len() + 1) * 4 >= self.keys.len() * 3 {
            self.grow();
        }
        let cap_mask = self.keys.len() - 1;
        let mut idx = bucket_of_fold(fold_mask(mask), self.bits);
        loop {
            let k = self.keys[idx];
            if k == mask {
                let slot = &mut self.slots[self.vals[idx] as usize * self.size + rank];
                if cand.beats(slot) {
                    *slot = cand;
                }
                return;
            }
            if k == 0 {
                let group = self.masks.len() as u32;
                self.keys[idx] = mask;
                self.vals[idx] = group;
                self.masks.push(mask);
                self.slots.resize(self.slots.len() + self.size, EMPTY);
                self.slots[group as usize * self.size + rank] = cand;
                return;
            }
            idx = (idx + 1) & cap_mask;
        }
    }

    fn into_sorted(self) -> (Vec<u128>, Vec<Slot>) {
        let mut order: Vec<u32> = (0..self.masks.len() as u32).collect();
        order.sort_unstable_by_key(|&g| self.masks[g as usize]);
        let mut masks = Vec::with_capacity(self.masks.len());
        let mut slots = Vec::with_capacity(self.slots.len());
        for &g in &order {
            let g = g as usize;
            masks.push(self.masks[g]);
            slots.extend_from_slice(&self.slots[g * self.size..(g + 1) * self.size]);
        }
        (masks, slots)
    }
}

// ---------------------------------------------------------------------
// Calibration model (DESIGN.md §12). Synthetic density: 8 bits per
// 128-bit mask, so a space of L slots has L/16 slots per DP bit on
// average, and one accepted switch touches 2 masks × 8 bits = 16
// posting lists. The index pays when its probe cost plus amortized
// maintenance undercuts the mask scan over the probes one switch earns.
// ---------------------------------------------------------------------

const PROBES_PER_SWITCH: f64 = 64.0;
const BITS_PER_SWITCH: f64 = 16.0;

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".to_owned());
    let quick = gates::quick_mode();
    let reps = if quick { 20 } else { 200 };

    // ------------------------------------------------------------------
    // Scan microkernel: deep first-open under contention.
    // ------------------------------------------------------------------
    // 1024 masks × 16 B = 16 KiB: L1-resident, so the A/B measures the
    // kernels' compute shape rather than L2 bandwidth (a strategy space
    // revisits the same hot prefix every best-response turn).
    let scan_len = 1024usize;
    let mut next = stream(17);
    let masks: Vec<u128> = (0..scan_len).map(|_| sparse_mask(&mut next, 8)).collect();
    // Heavy contention: ~110 of 128 DP bits taken, so nearly every
    // candidate conflicts and the scan runs deep — the shape the chunked
    // kernel exists for (late-round best-response under a full map).
    let takens: Vec<u128> = (0..64).map(|_| sparse_mask(&mut next, 256)).collect();
    let first_scalar_s = best_secs(reps, || {
        let mut acc = 0usize;
        for &t in &takens {
            acc += kernel::first_open_scalar(&masks, t).unwrap_or(scan_len);
        }
        acc
    });
    let first_chunked_s = best_secs(reps, || {
        let mut acc = 0usize;
        for &t in &takens {
            acc += kernel::first_open_chunked(&masks, t).unwrap_or(scan_len);
        }
        acc
    });
    let mean_depth: f64 = takens
        .iter()
        .map(|&t| kernel::first_open_scalar(&masks, t).unwrap_or(scan_len) as f64)
        .sum::<f64>()
        / takens.len() as f64;
    let first_speedup = first_scalar_s / first_chunked_s;
    fta_obs::info!(
        "scan/first_open: scalar {:.1} us, chunked {:.1} us ({first_speedup:.2}x), \
         mean hit depth {mean_depth:.0}",
        first_scalar_s * 1e6,
        first_chunked_s * 1e6,
    );

    // The second scan metric: the full `for_each_open` sweep behind
    // `better_available_desc`, at a ~20% open rate with the production
    // callback shape — gather `(pool_idx, payoff)` and push into a
    // reused candidate buffer. At this density the scalar loop's
    // per-candidate branch is data-dependent; the chunked reduction
    // trades it for one branch per 8 lanes plus a popcount walk of the
    // open bitmap.
    let sweep_takens: Vec<u128> = (0..64).map(|_| sparse_mask(&mut next, 24)).collect();
    let open_rate: f64 = sweep_takens
        .iter()
        .map(|&t| masks.iter().filter(|&&m| m & t == 0).count() as f64 / scan_len as f64)
        .sum::<f64>()
        / sweep_takens.len() as f64;
    let pool_idx: Vec<u32> = (0..scan_len as u32).rev().collect();
    let payoffs: Vec<f64> = (0..scan_len).map(|p| 1.0 / (p + 1) as f64).collect();
    let mut cands: Vec<(u32, f64)> = Vec::with_capacity(scan_len);
    let sweep_scalar_s = best_secs(reps, || {
        let mut n = 0usize;
        for &t in &sweep_takens {
            cands.clear();
            kernel::for_each_open_scalar(&masks, scan_len, t, |p| {
                cands.push((pool_idx[p], payoffs[p]));
            });
            n += black_box(&cands).len();
        }
        n
    });
    let sweep_chunked_s = best_secs(reps, || {
        let mut n = 0usize;
        for &t in &sweep_takens {
            cands.clear();
            kernel::for_each_open_chunked(&masks, scan_len, t, |p| {
                cands.push((pool_idx[p], payoffs[p]));
            });
            n += black_box(&cands).len();
        }
        n
    });
    let sweep_speedup = sweep_scalar_s / sweep_chunked_s;
    fta_obs::info!(
        "scan/sweep: scalar {:.1} us, chunked {:.1} us ({sweep_speedup:.2}x), \
         open rate {:.0}%",
        sweep_scalar_s * 1e6,
        sweep_chunked_s * 1e6,
        open_rate * 100.0,
    );
    let scan_speedup = first_speedup.max(sweep_speedup);
    assert!(
        scan_speedup >= gates::hotpath_scan_floor(quick),
        "scan kernel speedup {scan_speedup:.2}x (best of first_open/sweep) below \
         the {:.2}x floor",
        gates::hotpath_scan_floor(quick)
    );

    // ------------------------------------------------------------------
    // Gather microkernel: conflict-counter probe.
    // ------------------------------------------------------------------
    let conflicts: Vec<u32> = (0..scan_len)
        .map(|_| u32::from(next() % 256 != 0) * 2)
        .collect();
    let slot_lists: Vec<Vec<u32>> = (0..32)
        .map(|_| {
            (0..scan_len)
                .map(|_| (next() % scan_len as u64) as u32)
                .collect()
        })
        .collect();
    let gather_scalar_s = best_secs(reps, || {
        let mut acc = 0usize;
        for slots in &slot_lists {
            acc += kernel::first_zero_scalar(slots, &conflicts).unwrap_or(scan_len);
        }
        acc
    });
    let gather_chunked_s = best_secs(reps, || {
        let mut acc = 0usize;
        for slots in &slot_lists {
            acc += kernel::first_zero_chunked(slots, &conflicts).unwrap_or(scan_len);
        }
        acc
    });
    let gather_speedup = gather_scalar_s / gather_chunked_s;
    fta_obs::info!(
        "gather: scalar {:.1} us, chunked {:.1} us ({gather_speedup:.2}x)",
        gather_scalar_s * 1e6,
        gather_chunked_s * 1e6,
    );

    // ------------------------------------------------------------------
    // Dedup table: expansion-shaped relax stream, forced rehashes.
    // ------------------------------------------------------------------
    let dedup_reps = if quick { 3 } else { 10 };
    let n_groups = if quick { 4_000 } else { 20_000 };
    let size = 8usize;
    let mut next = stream(23);
    let mut events: Vec<(u128, usize, Slot)> = Vec::with_capacity(n_groups * 4);
    for g in 0..n_groups {
        let mask = sparse_mask(&mut next, 8);
        for v in 0..4u64 {
            let j = {
                // A random *set* bit of the mask (the DP member ending
                // the route).
                let set: Vec<u32> = (0..128).filter(|&b| mask & (1u128 << b) != 0).collect();
                set[(next() % set.len() as u64) as usize] as usize
            };
            events.push((
                mask,
                rank(mask, j),
                Slot {
                    arrival: ((g as u64 * 7 + v * 13) % 1000) as f64,
                    parent: (v % 4) as u8,
                },
            ));
        }
    }
    let legacy_s = best_secs(dedup_reps, || {
        let mut t = LegacyTable::with_expected(64, size);
        for &(mask, r, cand) in &events {
            t.relax(mask, r, cand);
        }
        let (masks, slots) = t.into_sorted();
        black_box((masks.len(), slots.len()))
    });
    let table_s = best_secs(dedup_reps, || {
        let mut t = DedupTable::with_expected(64, size);
        for &(mask, r, cand) in &events {
            t.relax(mask, r, cand);
        }
        let (masks, slots) = t.into_sorted();
        black_box((masks.len(), slots.len()))
    });
    // Equivalence spot check: both layouts drain to the same pool.
    {
        let mut a = LegacyTable::with_expected(64, size);
        let mut b = DedupTable::with_expected(64, size);
        for &(mask, r, cand) in &events {
            a.relax(mask, r, cand);
            b.relax(mask, r, cand);
        }
        assert_eq!(a.into_sorted(), b.into_sorted(), "dedup layouts diverged");
    }
    fta_vdps::arena::clear();
    let dedup_speedup = legacy_s / table_s;
    fta_obs::info!(
        "dedup: legacy {:.2} ms, table {:.2} ms ({dedup_speedup:.2}x)",
        legacy_s * 1e3,
        table_s * 1e3,
    );
    assert!(
        dedup_speedup >= gates::hotpath_dedup_floor(quick),
        "dedup speedup {dedup_speedup:.2}x below the {:.2}x floor",
        gates::hotpath_dedup_floor(quick)
    );

    // ------------------------------------------------------------------
    // Crossover calibration.
    // ------------------------------------------------------------------
    let cal_reps = if quick { 10 } else { 50 };
    // Per-posting-entry maintenance cost: counter bump through an
    // inverted list, the unit the conflict index pays per touched bit.
    let m_e = {
        let mut counters = vec![0u32; 1 << 16];
        let mut next = stream(31);
        let posting: Vec<u32> = (0..4096).map(|_| (next() % (1 << 16)) as u32).collect();
        let walk_s = best_secs(cal_reps, || {
            for &s in &posting {
                counters[s as usize] = counters[s as usize].wrapping_add(1);
            }
            for &s in &posting {
                counters[s as usize] = counters[s as usize].wrapping_sub(1);
            }
            black_box(counters[0])
        });
        walk_s / (2.0 * posting.len() as f64)
    };
    let mut sweep = Vec::new();
    let mut min_slots_found: Option<usize> = None;
    let mut crossover_savings = 0.0f64;
    for shift in 10..=16u32 {
        let l = 1usize << shift;
        // Full-miss fixtures: every candidate conflicts / every counter
        // is non-zero, so both sides walk all L slots.
        let mut next = stream(u64::from(shift) * 97 + 5);
        let miss_masks: Vec<u128> = (0..l).map(|_| sparse_mask(&mut next, 8) | 1).collect();
        let taken = u128::MAX;
        let t_scan = best_secs(cal_reps, || {
            black_box(kernel::first_open_chunked(&miss_masks, taken))
        });
        let slots: Vec<u32> = (0..l as u32).collect();
        let busy = vec![1u32; l];
        let t_zero = best_secs(cal_reps, || {
            black_box(kernel::first_zero_chunked(&slots, &busy))
        });
        // Modeled per-probe index cost: probe + amortized maintenance of
        // one switch (16 posting lists of L/16 entries) over the probes
        // that switch earns.
        let maint = BITS_PER_SWITCH * (l as f64 / 16.0) * m_e;
        let t_index = t_zero + maint / PROBES_PER_SWITCH;
        if min_slots_found.is_none() && t_index < t_scan {
            min_slots_found = Some(l);
            crossover_savings = t_scan - t_zero;
        }
        sweep.push(obj(vec![
            ("slots", Value::UInt(l as u64)),
            ("scan_us", Value::Float(t_scan * 1e6)),
            ("index_probe_us", Value::Float(t_zero * 1e6)),
            ("index_total_us", Value::Float(t_index * 1e6)),
        ]));
    }
    let default_profile = HotpathProfile::default();
    let conflict_index_min_slots =
        min_slots_found.unwrap_or(default_profile.conflict_index_min_slots);
    let conflict_index_max_slots_per_bit = if min_slots_found.is_some() && m_e > 0.0 {
        let k_max = PROBES_PER_SWITCH * crossover_savings / (BITS_PER_SWITCH * m_e);
        (k_max as usize).clamp(16, 256)
    } else {
        default_profile.conflict_index_max_slots_per_bit
    };

    // ------------------------------------------------------------------
    // Emission kernel A/B on a synthetic single-center generation.
    // ------------------------------------------------------------------
    let emit_inst = fta_bench::syn_single_center(8, 20, 9);
    let emit_aggs = emit_inst.dp_aggregates();
    let emit_view = emit_inst.center_views().remove(0);
    let emit_cfg = VdpsConfig::unpruned(6);
    let time_emission = |kernel: EmissionKernel| {
        let profile = HotpathProfile {
            emission_kernel: kernel,
            ..HotpathProfile::default()
        };
        best_secs(if quick { 3 } else { 10 }, || {
            black_box(fta_vdps::flat::generate_c_vdps_flat_with_profile(
                &emit_inst,
                &emit_aggs,
                &emit_view,
                &emit_cfg,
                None,
                GenControl::NONE,
                &profile,
            ))
        })
    };
    let offsets_s = time_emission(EmissionKernel::Offsets);
    let rebuild_s = time_emission(EmissionKernel::Rebuild);
    fta_vdps::arena::clear();
    let emission_speedup = rebuild_s / offsets_s;
    fta_obs::info!(
        "emission: offsets {:.2} ms, rebuild {:.2} ms ({emission_speedup:.2}x)",
        offsets_s * 1e3,
        rebuild_s * 1e3,
    );

    let calibrated = HotpathProfile {
        scan_kernel: if scan_speedup >= 1.0 {
            ScanKernel::Chunked
        } else {
            ScanKernel::Scalar
        },
        emission_kernel: if offsets_s <= rebuild_s {
            EmissionKernel::Offsets
        } else {
            EmissionKernel::Rebuild
        },
        conflict_index_min_slots,
        conflict_index_max_slots_per_bit,
        ..default_profile
    };
    fta_obs::info!(
        "calibrated profile: min_slots {} (default {}), max_slots_per_bit {} (default {})",
        calibrated.conflict_index_min_slots,
        default_profile.conflict_index_min_slots,
        calibrated.conflict_index_max_slots_per_bit,
        default_profile.conflict_index_max_slots_per_bit,
    );

    // ------------------------------------------------------------------
    // End-to-end: paper-scale FGT solve, calibrated vs legacy profile.
    // ------------------------------------------------------------------
    let e2e_reps = if quick { 2 } else { 4 };
    let inst = fta_data::generate_syn(
        &SynConfig {
            n_centers: 100,
            n_workers: 1000,
            n_tasks: 6000 * 20,
            n_delivery_points: 6000,
            extent: 4.0,
            ..SynConfig::bench_scale()
        },
        3,
    );
    let config = SolveConfig {
        vdps: VdpsConfig::pruned(2.0, 3),
        algorithm: Algorithm::Fgt(FgtConfig::default()),
        ..SolveConfig::new(Algorithm::Gta)
    };
    let legacy_profile = HotpathProfile {
        scan_kernel: ScanKernel::Scalar,
        emission_kernel: EmissionKernel::Rebuild,
        ..HotpathProfile::default()
    };
    // The whole-solve A/B runs minutes; clock-speed drift over that span
    // dwarfs per-rep noise, so sequential best-of-N per profile is
    // useless (whichever profile measures first "wins"). Interleave
    // instead: one solve per profile per round, best-of per profile, so
    // drift hits every profile the same amount.
    let axes = [
        ("legacy", legacy_profile),
        (
            "scan_chunked",
            HotpathProfile {
                scan_kernel: ScanKernel::Chunked,
                ..legacy_profile
            },
        ),
        (
            "emission_offsets",
            HotpathProfile {
                emission_kernel: EmissionKernel::Offsets,
                ..legacy_profile
            },
        ),
        (
            "crossovers_calibrated",
            HotpathProfile {
                conflict_index_min_slots,
                conflict_index_max_slots_per_bit,
                ..legacy_profile
            },
        ),
        ("calibrated", calibrated),
    ];
    let mut best = [f64::INFINITY; 5];
    for _ in 0..e2e_reps {
        for (i, (_, profile)) in axes.iter().enumerate() {
            hotpath::install(profile);
            best[i] = best[i].min(best_secs(1, || black_box(solve(&inst, &config))));
        }
    }
    let legacy_solve_s = best[0];
    let calibrated_solve_s = best[4];
    let mut axis_ms = Vec::new();
    for (i, (label, _)) in axes.iter().enumerate().take(4).skip(1) {
        fta_obs::info!(
            "end-to-end axis {label}: {:.1} ms ({:.2}x vs legacy)",
            best[i] * 1e3,
            legacy_solve_s / best[i],
        );
        axis_ms.push(obj(vec![
            ("axis", Value::String((*label).to_owned())),
            ("solve_ms", Value::Float(best[i] * 1e3)),
            ("speedup_vs_legacy", Value::Float(legacy_solve_s / best[i])),
        ]));
    }
    hotpath::install(&legacy_profile);
    let legacy_outcome = solve(&inst, &config);
    hotpath::install(&calibrated);
    let calibrated_outcome = solve(&inst, &config);
    hotpath::reset();
    fta_vdps::arena::clear();
    // The profile only changes speed, never results.
    assert_eq!(
        legacy_outcome.assignment, calibrated_outcome.assignment,
        "profiles must be bit-identical in outcome"
    );
    let e2e_speedup = legacy_solve_s / calibrated_solve_s;
    fta_obs::info!(
        "end-to-end n=1000: legacy {:.1} ms, calibrated {:.1} ms ({e2e_speedup:.2}x)",
        legacy_solve_s * 1e3,
        calibrated_solve_s * 1e3,
    );
    assert!(
        e2e_speedup >= gates::hotpath_e2e_floor(quick),
        "end-to-end speedup {e2e_speedup:.2}x below the {:.2}x floor",
        gates::hotpath_e2e_floor(quick)
    );

    // ------------------------------------------------------------------
    // Snapshot.
    // ------------------------------------------------------------------
    let snapshot = obj(vec![
        (
            "description",
            Value::String(
                "Chunked-limb hot-path kernels vs scalar references \
                 (availability scan, conflict gather, dedup table), the \
                 conflict-index crossover calibration of DESIGN.md §12, \
                 and a paper-scale end-to-end FGT solve under the \
                 calibrated vs legacy profile, best-of-N"
                    .to_owned(),
            ),
        ),
        ("reps", Value::UInt(reps as u64)),
        (
            "microkernels",
            obj(vec![
                (
                    "scan",
                    obj(vec![
                        ("len", Value::UInt(scan_len as u64)),
                        (
                            "first_open",
                            obj(vec![
                                ("mean_hit_depth", Value::Float(mean_depth)),
                                ("scalar_us", Value::Float(first_scalar_s * 1e6)),
                                ("chunked_us", Value::Float(first_chunked_s * 1e6)),
                                ("speedup", Value::Float(first_speedup)),
                            ]),
                        ),
                        (
                            "sweep",
                            obj(vec![
                                ("open_rate", Value::Float(open_rate)),
                                ("scalar_us", Value::Float(sweep_scalar_s * 1e6)),
                                ("chunked_us", Value::Float(sweep_chunked_s * 1e6)),
                                ("speedup", Value::Float(scan_speedup)),
                            ]),
                        ),
                    ]),
                ),
                (
                    "gather",
                    obj(vec![
                        ("len", Value::UInt(scan_len as u64)),
                        ("scalar_us", Value::Float(gather_scalar_s * 1e6)),
                        ("chunked_us", Value::Float(gather_chunked_s * 1e6)),
                        ("speedup", Value::Float(gather_speedup)),
                    ]),
                ),
                (
                    "dedup",
                    obj(vec![
                        ("groups", Value::UInt(n_groups as u64)),
                        ("relaxations", Value::UInt(events.len() as u64)),
                        ("legacy_ms", Value::Float(legacy_s * 1e3)),
                        ("table_ms", Value::Float(table_s * 1e3)),
                        ("speedup", Value::Float(dedup_speedup)),
                    ]),
                ),
                (
                    "emission",
                    obj(vec![
                        ("offsets_ms", Value::Float(offsets_s * 1e3)),
                        ("rebuild_ms", Value::Float(rebuild_s * 1e3)),
                        ("speedup", Value::Float(emission_speedup)),
                    ]),
                ),
            ]),
        ),
        (
            "calibration",
            obj(vec![
                ("probes_per_switch", Value::Float(PROBES_PER_SWITCH)),
                ("bits_per_switch", Value::Float(BITS_PER_SWITCH)),
                ("maintenance_ns_per_entry", Value::Float(m_e * 1e9)),
                ("crossover_found", Value::Bool(min_slots_found.is_some())),
                ("sweep", Value::Array(sweep)),
            ]),
        ),
        (
            "end_to_end",
            obj(vec![
                ("n_centers", Value::UInt(100)),
                ("n_workers", Value::UInt(1000)),
                ("n_dps", Value::UInt(6000)),
                ("algorithm", Value::String("fgt".to_owned())),
                ("legacy_ms", Value::Float(legacy_solve_s * 1e3)),
                ("calibrated_ms", Value::Float(calibrated_solve_s * 1e3)),
                ("speedup", Value::Float(e2e_speedup)),
                ("axes", Value::Array(axis_ms)),
            ]),
        ),
        ("profile", hotpath::to_json(&calibrated)),
    ]);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serialises");
    std::fs::write(&out, json + "\n")?;
    fta_obs::info!("wrote {out}");
    Ok(())
}

//! Writes `BENCH_incremental.json`: a machine-readable snapshot of the
//! incremental re-solve path (dirty-center detection, delta VDPS
//! updates, equilibrium warm starts) against per-round cold solves, so
//! the perf trajectory of `Solver::resolve` is tracked in-repo.
//!
//! Each grid row replays a sequence of churned rounds in two modes.
//! Churn is delivery-shaped, matching the sim's semantics (a served
//! delivery point leaves with its *whole* task set, and deliveries
//! cluster by center because they are route completions): each round a
//! rotating tenth of the centers sees action, and within those centers
//! a rotating quarter of the delivery points is delivered — ~2.5% of
//! delivery points per round, well under the 5% churn envelope.
//!
//! * `drop` — deliveries only, deadlines do not move between rounds:
//!   untouched centers short-circuit clean (bitwise-identical input)
//!   and cost nothing, active centers take the delta + warm-start path;
//! * `aged` — deliveries *plus* every surviving deadline shrinks by the
//!   round length (the adversarial shape): every center is touched
//!   every round and every route payload is rebuilt, so only the delta
//!   updater's order reuse and the equilibrium warm start carry
//!   savings.
//!
//! Usage: `cargo run -p fta-bench --release --bin warm_snapshot -- [OUT]`
//! (default OUT: `BENCH_incremental.json`). Set `FTA_BENCH_QUICK=1` to
//! shrink the grid and repetition counts (CI smoke mode). In every mode
//! the binary *asserts* that the warm path never loses to the cold path
//! on any row, and that a zero-churn resolve is bit-identical to the
//! cached outcome — CI runs it in quick mode as a regression gate.

use fta_algorithms::{solve, Algorithm, FgtConfig, ResolveStats, SolveConfig, Solver};
use fta_bench::{best_secs, gates, obj};
use fta_core::{ChurnSet, Instance};
use fta_data::SynConfig;
use fta_vdps::VdpsConfig;
use serde_json::Value;
use std::hint::black_box;

struct Row {
    label: &'static str,
    n_centers: usize,
    n_workers: usize,
    n_dps: usize,
    seed: u64,
}

/// One delivery-shaped churn step: a rotating tenth of the centers sees
/// action this round, and within each active center a rotating quarter
/// of the delivery points is *delivered* — its whole task set leaves,
/// the way a completed route clears a delivery point in the sim. In
/// `aged` mode every surviving deadline additionally shrinks by `age`
/// and tasks that kills leave too.
fn churn_round(base: &Instance, round: usize, age: f64) -> Instance {
    let mut next = base.clone();
    next.tasks.retain(|t| {
        let dp = t.delivery_point.index();
        let center = base.delivery_points[dp].center.index();
        let active = center % 10 == round % 10;
        let delivered = active && (dp + round) % 4 == 0;
        !delivered && t.expiry > age
    });
    if age > 0.0 {
        for t in &mut next.tasks {
            t.expiry -= age;
        }
    }
    next
}

fn main() -> std::io::Result<()> {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_incremental.json".to_owned());
    let quick = gates::quick_mode();
    let reps = if quick { 2 } else { 4 };
    let n_rounds = if quick { 3 } else { 8 };
    let config = SolveConfig {
        vdps: VdpsConfig::pruned(2.0, 3),
        algorithm: Algorithm::Fgt(FgtConfig::default()),
        ..SolveConfig::new(Algorithm::Gta)
    };

    let rows = [
        Row {
            label: "small",
            n_centers: 20,
            n_workers: 200,
            n_dps: 1200,
            seed: 5,
        },
        Row {
            label: "paper",
            n_centers: 100,
            n_workers: 1000,
            n_dps: 6000,
            seed: 3,
        },
    ];

    let mut grid = Vec::new();
    for row in &rows {
        let base = fta_data::generate_syn(
            &SynConfig {
                n_centers: row.n_centers,
                n_workers: row.n_workers,
                n_tasks: row.n_dps * 20,
                n_delivery_points: row.n_dps,
                extent: 4.0,
                ..SynConfig::bench_scale()
            },
            row.seed,
        );
        // Prime one solver on round 0; every timed repetition branches a
        // clone off this state so warm reps all start from the same cache.
        let mut primed = Solver::new(config);
        let round0 = primed.solve(&base);

        // Zero-churn equivalence gate: a resolve of the identical
        // instance must be a pure cache hit, bit for bit.
        {
            let mut s = primed.clone();
            let again = s.resolve(&base, &ChurnSet::empty(base.workers.len()));
            assert_eq!(
                again.assignment, round0.assignment,
                "{}: zero-churn resolve diverged from the cached outcome",
                row.label
            );
            assert_eq!(
                s.last_stats().centers_clean,
                base.centers.len(),
                "{}: zero-churn resolve left centers unclean",
                row.label
            );
        }

        for (mode, age) in [("drop", 0.0f64), ("aged", 0.05f64)] {
            // The round sequence is cumulative: each round churns the
            // previous one, like a live day.
            let mut rounds: Vec<Instance> = Vec::with_capacity(n_rounds);
            let mut cur = base.clone();
            for r in 1..=n_rounds {
                cur = churn_round(&cur, r, age);
                rounds.push(cur.clone());
            }
            let churns: Vec<ChurnSet> = rounds
                .iter()
                .map(|inst| ChurnSet::empty(inst.workers.len()))
                .collect();

            let cold_s = best_secs(reps, || {
                for inst in &rounds {
                    black_box(solve(inst, &config));
                }
            });
            let warm_s = best_secs(reps, || {
                let mut s = primed.clone();
                for (inst, churn) in rounds.iter().zip(&churns) {
                    black_box(s.resolve(inst, churn));
                }
            });

            // One audited pass for the ladder statistics and a validity
            // check of every warm round.
            let mut audited = primed.clone();
            let mut stats = ResolveStats::default();
            for (inst, churn) in rounds.iter().zip(&churns) {
                let outcome = audited.resolve(inst, churn);
                assert!(
                    outcome.assignment.validate(inst).is_ok(),
                    "{}/{mode}: warm round produced an invalid assignment",
                    row.label
                );
                let s = audited.last_stats();
                stats.centers_clean += s.centers_clean;
                stats.centers_warm += s.centers_warm;
                stats.centers_cold += s.centers_cold;
                stats.warm_adopted += s.warm_adopted;
                stats.warm_rejected += s.warm_rejected;
            }

            let speedup = cold_s / warm_s;
            fta_obs::info!(
                "{}/{mode}: {} rounds — cold {:.1} ms, warm {:.1} ms ({:.2}x); \
                 centers clean/warm/cold = {}/{}/{}",
                row.label,
                n_rounds,
                cold_s * 1e3,
                warm_s * 1e3,
                speedup,
                stats.centers_clean,
                stats.centers_warm,
                stats.centers_cold,
            );

            // Regression gates (numbers shared with the schema tests via
            // `fta_bench::gates`). Delivery churn is where the incremental
            // path earns its keep: it must beat cold by a wide margin at
            // paper scale and never lose anywhere. Deep uniform aging
            // rebuilds every route payload, so its structural win is only
            // the retimed delta plus the warm start's assignment savings —
            // a thin margin that gets a timer-noise allowance.
            let aged_band = gates::aged_noise_band(quick);
            if mode == "drop" {
                assert!(
                    warm_s <= cold_s,
                    "{}/{mode}: warm ({:.1} ms) slower than cold ({:.1} ms)",
                    row.label,
                    warm_s * 1e3,
                    cold_s * 1e3
                );
                if row.label == "paper" {
                    assert!(
                        speedup >= gates::WARM_PAPER_DROP_FLOOR,
                        "paper/drop: warm speedup {speedup:.2}x fell below the \
                         {}x floor",
                        gates::WARM_PAPER_DROP_FLOOR
                    );
                }
            } else {
                assert!(
                    warm_s <= cold_s * aged_band,
                    "{}/{mode}: warm ({:.1} ms) lost to cold ({:.1} ms) beyond noise",
                    row.label,
                    warm_s * 1e3,
                    cold_s * 1e3
                );
            }

            grid.push(obj(vec![
                ("label", Value::String(row.label.to_owned())),
                ("mode", Value::String(mode.to_owned())),
                ("n_workers", Value::UInt(row.n_workers as u64)),
                ("n_centers", Value::UInt(row.n_centers as u64)),
                ("n_dps", Value::UInt(row.n_dps as u64)),
                ("rounds", Value::UInt(n_rounds as u64)),
                ("cold_ms", Value::Float(cold_s * 1e3)),
                ("warm_ms", Value::Float(warm_s * 1e3)),
                ("speedup_warm_vs_cold", Value::Float(speedup)),
                (
                    "resolve_stats",
                    obj(vec![
                        ("centers_clean", Value::UInt(stats.centers_clean as u64)),
                        ("centers_warm", Value::UInt(stats.centers_warm as u64)),
                        ("centers_cold", Value::UInt(stats.centers_cold as u64)),
                        ("warm_adopted", Value::UInt(stats.warm_adopted as u64)),
                        ("warm_rejected", Value::UInt(stats.warm_rejected as u64)),
                    ]),
                ),
            ]));
        }
    }

    let snapshot = obj(vec![
        (
            "description",
            Value::String(
                "Incremental re-solve (dirty-center detection + delta VDPS \
                 updates + equilibrium warm starts) vs per-round cold solves \
                 over sequences of delivery-shaped churn rounds (~2.5% of \
                 delivery points per round, clustered by center), FGT, \
                 best-of-N"
                    .to_owned(),
            ),
        ),
        ("algorithm", Value::String("fgt".to_owned())),
        ("reps", Value::UInt(reps as u64)),
        ("grid", Value::Array(grid)),
    ]);
    let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serialises");
    std::fs::write(&out, json + "\n")?;
    fta_obs::info!("wrote {out}");
    Ok(())
}

//! `simulate` — run the streaming-platform simulator from the CLI.
//!
//! ```text
//! simulate [OPTIONS]
//!
//! OPTIONS
//!   --algo NAME       immed | gta | mpta | fgt | iegt | random (default: iegt)
//!   --hours H         simulated horizon (default 8)
//!   --period MIN      minutes between assignment rounds (default 15)
//!   --workers N       courier count (default 24)
//!   --dps N           delivery point count (default 48)
//!   --rate R          task arrivals per hour (default 120)
//!   --expiry H        hours from arrival to expiration (default 2)
//!   --extent KM       city side length (default 5)
//!   --seed S          scenario seed (default 42)
//!   --compare         run all algorithms and print a comparison table
//! ```

use fta_algorithms::{Algorithm, FgtConfig, IegtConfig, MptaConfig};
use fta_sim::{run, DayMetrics, DispatchPolicy, Scenario, ScenarioConfig, SimConfig};
use fta_vdps::VdpsConfig;
use std::process::ExitCode;

struct Cli {
    algo: String,
    hours: f64,
    period_minutes: f64,
    scenario: ScenarioConfig,
    seed: u64,
    compare: bool,
}

fn usage() -> &'static str {
    "usage: simulate [--algo immed|gta|mpta|fgt|iegt|random] [--hours H] [--period MIN] \
     [--workers N] [--dps N] [--rate R] [--expiry H] [--extent KM] [--seed S] [--compare]"
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        algo: "iegt".to_owned(),
        hours: 8.0,
        period_minutes: 15.0,
        scenario: ScenarioConfig {
            n_workers: 24,
            n_delivery_points: 48,
            extent: 5.0,
            arrival_rate: 120.0,
            expiry_offset: 2.0,
            ..ScenarioConfig::default()
        },
        seed: 42,
        compare: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--algo" => cli.algo = value("--algo")?.clone(),
            "--hours" => cli.hours = parse_f64(value("--hours")?, "--hours")?,
            "--period" => cli.period_minutes = parse_f64(value("--period")?, "--period")?,
            "--workers" => cli.scenario.n_workers = parse_usize(value("--workers")?, "--workers")?,
            "--dps" => {
                cli.scenario.n_delivery_points = parse_usize(value("--dps")?, "--dps")?;
            }
            "--rate" => cli.scenario.arrival_rate = parse_f64(value("--rate")?, "--rate")?,
            "--expiry" => cli.scenario.expiry_offset = parse_f64(value("--expiry")?, "--expiry")?,
            "--extent" => cli.scenario.extent = parse_f64(value("--extent")?, "--extent")?,
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--compare" => cli.compare = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.hours <= 0.0 || cli.period_minutes <= 0.0 {
        return Err("--hours and --period must be positive".into());
    }
    Ok(cli)
}

fn parse_f64(raw: &str, flag: &str) -> Result<f64, String> {
    raw.parse().map_err(|e| format!("{flag}: {e}"))
}

fn parse_usize(raw: &str, flag: &str) -> Result<usize, String> {
    raw.parse().map_err(|e| format!("{flag}: {e}"))
}

fn policy_by_name(name: &str) -> Option<DispatchPolicy> {
    Some(match name {
        "gta" => DispatchPolicy::Batch(Algorithm::Gta),
        "mpta" => DispatchPolicy::Batch(Algorithm::Mpta(MptaConfig::default())),
        "fgt" => DispatchPolicy::Batch(Algorithm::Fgt(FgtConfig::default())),
        "iegt" => DispatchPolicy::Batch(Algorithm::Iegt(IegtConfig::default())),
        "random" => DispatchPolicy::Batch(Algorithm::Random { seed: 1 }),
        "immed" => DispatchPolicy::Immediate,
        _ => return None,
    })
}

fn print_row(label: &str, metrics: &DayMetrics) {
    let fairness = metrics.earnings_fairness();
    println!(
        "{label:<8} {:>6}/{:<6} {:>8} {:>8.3} {:>8.3} {:>8.3} {:>7.0}%",
        metrics.tasks_completed,
        metrics.tasks_arrived,
        metrics.tasks_expired,
        fairness.gini,
        fairness.min_max_ratio,
        fairness.average_payoff,
        metrics.mean_utilization() * 100.0,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let scenario = Scenario::generate(&cli.scenario, cli.hours, cli.seed);
    println!(
        "scenario: {} workers, {} delivery points, {} tasks over {} h (seed {})\n",
        scenario.workers.len(),
        scenario.delivery_points.len(),
        scenario.tasks.len(),
        cli.hours,
        cli.seed
    );
    println!(
        "{:<8} {:>13} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "algo", "done/arrived", "expired", "gini", "min/max", "avg earn", "util"
    );

    let sim_config = |policy| SimConfig {
        horizon: cli.hours,
        assignment_period: cli.period_minutes / 60.0,
        policy,
        vdps: VdpsConfig::default(),
        parallel: false,
        ..SimConfig::day(fta_algorithms::Algorithm::Gta)
    };

    if cli.compare {
        for name in ["immed", "gta", "mpta", "fgt", "iegt", "random"] {
            let policy = policy_by_name(name).expect("names are known");
            let metrics = run(&scenario, &sim_config(policy));
            print_row(name, &metrics);
        }
    } else {
        let Some(policy) = policy_by_name(&cli.algo) else {
            fta_obs::error!("unknown algorithm `{}`\n{}", cli.algo, usage());
            return ExitCode::FAILURE;
        };
        let metrics = run(&scenario, &sim_config(policy));
        print_row(&cli.algo, &metrics);
        if let Some((worker, earnings)) = metrics.top_earner() {
            println!("\ntop earner: {worker} with {earnings:.1} reward");
        }
    }
    ExitCode::SUCCESS
}

//! `reproduce` — regenerate every table and figure of the paper.
//!
//! ```text
//! reproduce [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENT    table1 | fig1 | fig2 … fig12 | ext1 … ext4 | all
//!
//! OPTIONS
//!   --seeds N        average over N seeds (default 1)
//!   --paper-scale    run SYN at the paper's full Table I scale
//!   --sequential     disable per-center threading
//!   --no-unpruned    skip the -W variants in fig2/fig3
//!   --json DIR       additionally write <DIR>/<exp>.json per experiment
//!   --csv DIR        additionally write <DIR>/<exp>.csv per experiment
//!   --charts         also render each panel as an ASCII chart
//!   --html FILE      write a standalone HTML report with SVG charts
//! ```

use fta_experiments::experiments::{run, ExperimentOutput, ALL_EXPERIMENTS};
use fta_experiments::params::RunnerOptions;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Cli {
    experiments: Vec<String>,
    opts: RunnerOptions,
    json_dir: Option<PathBuf>,
    csv_dir: Option<PathBuf>,
    charts: bool,
    html: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: reproduce [--seeds N] [--paper-scale] [--sequential] [--no-unpruned] \
     [--json DIR] [--csv DIR] [--charts] [--html FILE] <table1|fig1..fig12|ext1..ext4|all>..."
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        experiments: Vec::new(),
        opts: RunnerOptions::default(),
        json_dir: None,
        csv_dir: None,
        charts: false,
        html: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seeds" => {
                let n: u64 = it
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("--seeds: {e}"))?;
                if n == 0 {
                    return Err("--seeds must be at least 1".into());
                }
                cli.opts.seeds = (0..n).map(|i| 42 + i * 1000).collect();
            }
            "--paper-scale" => cli.opts.paper_scale = true,
            "--sequential" => cli.opts.parallel = false,
            "--no-unpruned" => cli.opts.include_unpruned = false,
            "--json" => {
                cli.json_dir = Some(PathBuf::from(it.next().ok_or("--json needs a directory")?));
            }
            "--csv" => {
                cli.csv_dir = Some(PathBuf::from(it.next().ok_or("--csv needs a directory")?));
            }
            "--charts" => cli.charts = true,
            "--html" => {
                cli.html = Some(PathBuf::from(it.next().ok_or("--html needs a file path")?));
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            "all" => cli
                .experiments
                .extend(ALL_EXPERIMENTS.iter().map(|s| (*s).to_owned())),
            exp if ALL_EXPERIMENTS.contains(&exp) => cli.experiments.push(exp.to_owned()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if cli.experiments.is_empty() {
        return Err(usage().to_owned());
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    for dir in [&cli.json_dir, &cli.csv_dir].into_iter().flatten() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fta_obs::error!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut html_figures = Vec::new();
    for exp in &cli.experiments {
        let t0 = Instant::now();
        let Some(output) = run(exp, &cli.opts) else {
            fta_obs::error!("unknown experiment `{exp}`");
            return ExitCode::FAILURE;
        };
        println!("{}", output.render());
        if cli.charts {
            if let ExperimentOutput::Figure(fig) = &output {
                for panel in &fig.panels {
                    println!(
                        "{}",
                        fta_experiments::render_chart(panel, &fig.x_label, 64, 14)
                    );
                }
            }
        }
        fta_obs::info!("[{exp} completed in {:.1?}]", t0.elapsed());
        if let ExperimentOutput::Figure(fig) = &output {
            let exports: [(&Option<PathBuf>, &str, String); 2] = [
                (&cli.json_dir, "json", fig.to_json()),
                (&cli.csv_dir, "csv", fig.to_csv()),
            ];
            for (dir, ext, content) in exports {
                let Some(dir) = dir else { continue };
                let path = dir.join(format!("{exp}.{ext}"));
                if let Err(e) = std::fs::write(&path, content) {
                    fta_obs::error!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
            if cli.html.is_some() {
                html_figures.push(fig.clone());
            }
        }
    }
    if let Some(path) = &cli.html {
        let html = fta_experiments::render_html(&html_figures);
        if let Err(e) = std::fs::write(path, html) {
            fta_obs::error!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        fta_obs::info!("[wrote HTML report to {}]", path.display());
    }
    ExitCode::SUCCESS
}

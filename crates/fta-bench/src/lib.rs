//! # fta-bench — benchmark harness for the FTA reproduction
//!
//! * `src/bin/reproduce.rs` — the `reproduce` binary regenerating every
//!   table and figure of the paper (run `reproduce --help`);
//! * `benches/vdps.rs` — Criterion benchmarks of C-VDPS generation with and
//!   without ε pruning (the CPU-time panels of Figures 2–3);
//! * `benches/assignment.rs` — Criterion benchmarks of the four assignment
//!   algorithms across instance sizes (Figures 4–9 CPU panels);
//! * `benches/convergence.rs` — rounds-to-equilibrium benchmarks (Fig. 12);
//! * `benches/ablation.rs` — design-choice ablations: IEGT redraw policies,
//!   FGT restart counts, and IAU α/β weights;
//! * `benches/rivalset.rs` — rebuild-per-turn vs incremental rival-payoff
//!   engines in the FGT best-response loop at 50/200/1000 workers.
//!
//! This crate intentionally contains no library logic beyond small helpers
//! shared by the benches; everything measurable lives in `fta-experiments`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use fta_core::Instance;
use fta_data::{GMissionConfig, SynConfig};
use serde_json::Value;
use std::hint::black_box;
use std::time::Instant;

pub mod gates;

/// Best-of-`reps` wall time of `f`, in seconds. Best-of (not mean-of)
/// because scheduling noise is strictly additive: the minimum is the
/// least contaminated estimate of the work itself.
pub fn best_secs<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// A `serde_json` object from `(key, value)` pairs, preserving insertion
/// order (the snapshot writers keep fields in a stable, diff-friendly
/// order).
#[must_use]
pub fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// A GM-scale instance used by several benches (Table I defaults).
#[must_use]
pub fn gm_default(seed: u64) -> Instance {
    fta_data::generate_gmission(&GMissionConfig::default(), seed)
}

/// A single-center SYN-like instance with the given worker/delivery-point
/// counts, used to sweep subproblem size in benches.
#[must_use]
pub fn syn_single_center(n_workers: usize, n_dps: usize, seed: u64) -> Instance {
    fta_data::generate_syn(
        &SynConfig {
            n_centers: 1,
            n_workers,
            n_tasks: n_dps * 20,
            n_delivery_points: n_dps,
            extent: 4.0,
            ..SynConfig::bench_scale()
        },
        seed,
    )
}

//! Shared regression-gate knobs for the snapshot binaries and the schema
//! tests that re-check the committed snapshots.
//!
//! Every `BENCH_*.json` writer *asserts* its own floors before writing,
//! and `tests/bench_snapshots.rs` re-asserts the same floors against the
//! committed files — the two sides must agree on the numbers, so the
//! numbers live here exactly once. Quick mode (`FTA_BENCH_QUICK=1`, the
//! CI smoke configuration) shrinks grids and repetition counts until
//! best-of-reps estimates are dominated by machine noise; gates that
//! compare two timed paths therefore widen in quick mode, while the
//! committed full-mode snapshots carry the real perf evidence.

/// Whether quick (CI smoke) mode is active: shrunken grids, fewer
/// repetitions, widened noise-sensitive gates.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var_os("FTA_BENCH_QUICK").is_some()
}

/// Paper-scale floor on the incremental path under delivery churn: the
/// warm re-solve must beat per-round cold solves by at least this factor
/// (`BENCH_incremental.json`, `paper/drop` row).
pub const WARM_PAPER_DROP_FLOOR: f64 = 3.0;

/// Noise allowance for the `aged` churn mode, where uniform deadline
/// aging rebuilds every route payload and the warm path's structural win
/// is thin: warm must stay within this factor of cold. 30% in quick mode
/// — 2 reps over 3 rounds leave the best-of-reps estimate dominated by
/// machine noise (observed swing on one box: 0.87x–1.44x across
/// back-to-back quick runs) — and 10% in full mode.
#[must_use]
pub fn aged_noise_band(quick: bool) -> f64 {
    if quick {
        1.30
    } else {
        1.10
    }
}

/// Floor on the chunked-limb availability-scan microkernel vs its scalar
/// reference twin (`BENCH_hotpath.json`): the deep-scan case the kernel
/// exists for must clear this speedup in full mode. Quick mode only
/// smoke-checks that the chunked kernel is not a regression.
#[must_use]
pub fn hotpath_scan_floor(quick: bool) -> f64 {
    if quick {
        1.1
    } else {
        1.5
    }
}

/// Floor on the rewritten dedup table (limb-split keys, batched probes,
/// stored folds across rehash) vs the legacy scalar-probe layout. The
/// win is structural but modest — hashing and cache misses dominate — so
/// the gate is a no-regression band rather than a headline speedup.
/// Quick mode shrinks the fixture to ~1 ms of work, where best-of-reps
/// still swings ±20% run-to-run (observed 0.83x–1.16x on one build), so
/// the quick band widens to match; the full-mode snapshot carries the
/// real no-regression evidence.
#[must_use]
pub fn hotpath_dedup_floor(quick: bool) -> f64 {
    if quick {
        0.75
    } else {
        1.00
    }
}

/// Ceiling on a journaled day's wall time relative to the identical
/// un-journaled day at the recommended fsync cadence
/// (`BENCH_durable.json`, `every-8` row): the acceptance budget for the
/// durability layer is <=5% round overhead. Quick mode times a day of
/// only a few milliseconds, where best-of-reps swings far past the real
/// journaling cost and a single slow fsync on a shared CI disk can eat
/// the whole band — so quick mode only smoke-checks that journaling is
/// not a gross regression.
#[must_use]
pub fn durable_overhead_ceiling(quick: bool) -> f64 {
    if quick {
        1.40
    } else {
        1.05
    }
}

/// Floor on the sharded concurrent solve vs the flat sequential solve
/// (`BENCH_scale.json`): the headline scale-out win. Parallel speedup is
/// a property of the hardware as much as the code, so the floor is
/// *capability-conditioned*: it is asserted only on grid rows solved
/// with at least [`SCALE_FLOOR_MIN_THREADS`] pool threads and
/// [`SCALE_FLOOR_MIN_CENTERS`] centers (the snapshot records the thread
/// count it ran with). On narrower machines — including single-core CI
/// boxes, where a >1x concurrent speedup is physically impossible — the
/// sharded path is instead held to [`scale_noise_band`]: it must never
/// *lose* to the sequential path beyond timer noise at any swept size.
pub const SCALE_SPEEDUP_FLOOR: f64 = 3.0;

/// Minimum pool threads for [`SCALE_SPEEDUP_FLOOR`] to be asserted.
pub const SCALE_FLOOR_MIN_THREADS: usize = 4;

/// Minimum centers for [`SCALE_SPEEDUP_FLOOR`] to be asserted.
pub const SCALE_FLOOR_MIN_CENTERS: usize = 64;

/// No-loss band for the sharded solve at *every* swept size and thread
/// count: scheduling overhead (shard planning, cost estimation, the
/// prioritized submit) must stay within timer noise of the flat path.
/// Quick mode times rows of a few milliseconds where best-of-reps still
/// swings ±25%; full-mode rows are hundreds of milliseconds and the
/// band tightens accordingly.
#[must_use]
pub fn scale_noise_band(quick: bool) -> f64 {
    if quick {
        1.35
    } else {
        1.15
    }
}

/// Floor on the end-to-end n=1000 solve with the full calibrated profile
/// (chunked kernels + trusted-offsets emission + calibrated crossovers)
/// vs the legacy profile (scalar kernels, rebuild emission): the
/// measurable whole-solve win the acceptance criteria require. Widened
/// below 1.0 in quick mode, where a single quick rep is all noise.
#[must_use]
pub fn hotpath_e2e_floor(quick: bool) -> f64 {
    if quick {
        0.85
    } else {
        1.02
    }
}

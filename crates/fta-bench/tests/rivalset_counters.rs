//! Acceptance test for the incremental rival-payoff engine: at `n = 1000`
//! workers the incremental engine must do at least 5× fewer
//! evaluator-construction operations per best-response round than the
//! rebuild engine. (Wall-clock confirmation lives in
//! `benches/rivalset.rs`; this test pins the work counters, which are
//! deterministic.)

use fta_algorithms::{solve, Algorithm, BestResponseEngine, FgtConfig, SolveConfig};
use fta_bench::syn_single_center;
use fta_vdps::VdpsConfig;

#[test]
fn incremental_engine_builds_at_least_5x_fewer_evaluators_per_round() {
    let instance = syn_single_center(1000, 60, 3);
    let run = |engine: BestResponseEngine| {
        let cfg = SolveConfig {
            vdps: VdpsConfig::pruned(2.0, 3),
            algorithm: Algorithm::Fgt(FgtConfig {
                // Two rounds and no restarts keep the debug-mode test fast;
                // the per-round ratio is independent of the round count.
                max_rounds: 2,
                restarts: 0,
                engine,
                ..FgtConfig::default()
            }),
            parallel: false,
            ..SolveConfig::new(Algorithm::Gta)
        };
        solve(&instance, &cfg)
    };

    let rebuild = run(BestResponseEngine::Rebuild).br_stats;
    let incremental = run(BestResponseEngine::Incremental).br_stats;

    // Both engines evaluate the same candidates in the same order.
    assert_eq!(rebuild.rounds, incremental.rounds);
    assert_eq!(
        rebuild.candidate_evaluations,
        incremental.candidate_evaluations
    );
    assert!(rebuild.rounds > 0, "FGT did no best-response rounds");

    // Evaluator-construction ops per round: the rebuild engine makes one
    // O(n) evaluator per worker turn (n per round); the incremental engine
    // amortises a single build across the whole run and otherwise only
    // performs O(log n) treap remove/insert pairs, which are maintenance,
    // not construction.
    let per_round = |builds: u64, rounds: u64| -> f64 { builds as f64 / rounds as f64 };
    let rebuild_builds = per_round(rebuild.evaluator_builds, rebuild.rounds);
    let incremental_builds = per_round(incremental.evaluator_builds, incremental.rounds);
    assert!(
        rebuild_builds >= 5.0 * incremental_builds,
        "expected >=5x fewer evaluator-construction ops per round: \
         rebuild {rebuild_builds}/round vs incremental {incremental_builds}/round"
    );

    // Shape checks: exactly one RivalSet build for the whole run, and the
    // rebuild engine never performs incremental updates.
    assert_eq!(incremental.evaluator_builds, 1);
    assert_eq!(rebuild.evaluator_updates, 0);
    // The rebuild engine constructs one evaluator per worker per round.
    assert_eq!(rebuild.evaluator_builds, rebuild.rounds * 1000);
}

//! Acceptance test for the incremental rival-payoff engine: at `n = 1000`
//! workers the incremental engine must do at least 5× fewer
//! evaluator-construction operations per best-response round than the
//! rebuild engine. (Wall-clock confirmation lives in
//! `benches/rivalset.rs`; this test pins the work counters, which are
//! deterministic.)

use fta_algorithms::{solve, Algorithm, BestResponseEngine, FgtConfig, SolveConfig};
use fta_bench::syn_single_center;
use fta_vdps::VdpsConfig;

#[test]
fn incremental_engine_builds_at_least_5x_fewer_evaluators_per_round() {
    let instance = syn_single_center(1000, 60, 3);
    let run = |engine: BestResponseEngine| {
        let cfg = SolveConfig {
            vdps: VdpsConfig::pruned(2.0, 3),
            algorithm: Algorithm::Fgt(FgtConfig {
                // Two rounds and no restarts keep the debug-mode test fast;
                // the per-round ratio is independent of the round count.
                max_rounds: 2,
                restarts: 0,
                engine,
                ..FgtConfig::default()
            }),
            parallel: false,
            ..SolveConfig::new(Algorithm::Gta)
        };
        solve(&instance, &cfg)
    };

    let rebuild = run(BestResponseEngine::Rebuild).br_stats;
    let incremental = run(BestResponseEngine::Incremental).br_stats;

    // Both engines evaluate the same candidates in the same order.
    assert_eq!(rebuild.rounds, incremental.rounds);
    assert_eq!(
        rebuild.candidate_evaluations,
        incremental.candidate_evaluations
    );
    assert!(rebuild.rounds > 0, "FGT did no best-response rounds");

    // Evaluator-construction ops per round: the rebuild engine makes one
    // O(n) evaluator per worker turn (n per round); the incremental engine
    // amortises a single build across the whole run and otherwise only
    // performs O(log n) treap remove/insert pairs, which are maintenance,
    // not construction.
    let per_round = |builds: u64, rounds: u64| -> f64 { builds as f64 / rounds as f64 };
    let rebuild_builds = per_round(rebuild.evaluator_builds, rebuild.rounds);
    let incremental_builds = per_round(incremental.evaluator_builds, incremental.rounds);
    assert!(
        rebuild_builds >= 5.0 * incremental_builds,
        "expected >=5x fewer evaluator-construction ops per round: \
         rebuild {rebuild_builds}/round vs incremental {incremental_builds}/round"
    );

    // Shape checks: exactly one RivalSet build for the whole run, and the
    // rebuild engine never performs incremental updates.
    assert_eq!(incremental.evaluator_builds, 1);
    assert_eq!(rebuild.evaluator_updates, 0);
    // The rebuild engine constructs one evaluator per worker per round.
    assert_eq!(rebuild.evaluator_builds, rebuild.rounds * 1000);
}

/// Acceptance test for the monotone fast path: at paper scale (`n = 1000`
/// workers) the descending first-available scan must probe at least 10×
/// fewer strategy slots than the exhaustive engines, which walk every
/// worker's entire valid list each turn. (Wall-clock confirmation lives in
/// `src/bin/br_snapshot.rs`; this test pins the deterministic counters.)
///
/// The fixture keeps the paper's worker-to-delivery-point ratio (Table I:
/// 2 000 workers, 5 000 DPs over 50 centers) rather than the deliberately
/// over-subscribed `syn_single_center` shape: when supply is starved,
/// workers with no available strategy must exhaust their lists under
/// *every* engine, and no scan policy can shorten that.
#[test]
fn fastpath_scans_at_least_10x_fewer_candidates_at_paper_scale() {
    use fta_algorithms::{fgt, BestResponseStats, GameContext};
    use fta_vdps::StrategySpace;

    let instance = fta_data::generate_syn(
        &fta_data::SynConfig {
            n_centers: 100,
            n_workers: 1000,
            n_tasks: 120_000,
            n_delivery_points: 6000,
            extent: 4.0,
            ..fta_data::SynConfig::bench_scale()
        },
        3,
    );
    // Build each center's strategy space once and run both engines over
    // the same spaces: the comparison is about the equilibrium loop, and
    // skipping a second VDPS generation pass keeps the test fast.
    let views = instance.center_views();
    let vdps = VdpsConfig::pruned(2.0, 3);
    let spaces: Vec<StrategySpace> = views
        .iter()
        .map(|view| StrategySpace::build(&instance, view, &vdps))
        .collect();
    let run = |engine: BestResponseEngine| {
        let cfg = FgtConfig {
            max_rounds: 2,
            restarts: 0,
            engine,
            ..FgtConfig::default()
        };
        let mut stats = BestResponseStats::default();
        let mut assignment = fta_core::Assignment::new();
        for space in &spaces {
            let mut ctx = GameContext::new(space);
            stats.merge(&fgt(&mut ctx, &cfg).stats);
            assignment.merge(ctx.to_assignment());
        }
        (assignment, stats)
    };

    let (inc_asg, inc) = run(BestResponseEngine::Incremental);
    let (fast_asg, fast) = run(BestResponseEngine::FastPath);

    // Same equilibrium path, counted differently.
    assert_eq!(inc_asg, fast_asg);
    assert_eq!(inc.rounds, fast.rounds);
    assert_eq!(inc.switches, fast.switches);
    assert!(fast.rounds > 0, "FGT did no best-response rounds");

    // The default IAU weights are fast-path sound, so every round of the
    // FastPath run went through the monotone loop and most scans stopped
    // before exhausting the descending list.
    assert_eq!(fast.fastpath_rounds, fast.rounds);
    assert_eq!(inc.fastpath_rounds, 0);
    assert!(fast.early_exits > 0, "no descending scan exited early");

    eprintln!(
        "candidates_scanned: exhaustive {} vs fastpath {} ({:.1}x)",
        inc.candidates_scanned,
        fast.candidates_scanned,
        inc.candidates_scanned as f64 / fast.candidates_scanned as f64
    );
    assert!(
        inc.candidates_scanned >= 10 * fast.candidates_scanned,
        "expected >=10x fewer strategy slots probed: \
         exhaustive {} vs fastpath {}",
        inc.candidates_scanned,
        fast.candidates_scanned
    );
}

//! Schema validation of the committed perf snapshots at the repo root:
//! `BENCH_incremental.json` (incremental re-solve), `BENCH_hotpath.json`
//! (chunked kernels + calibrated hot-path profile), `BENCH_durable.json`
//! (journaling overhead per fsync policy), `BENCH_scale.json`
//! (geo-sharded concurrent solves up to 10^5 workers), and the
//! multi-center block of `BENCH_vdps.json` must parse, carry every field
//! downstream tooling reads, stay internally consistent, and keep the
//! speedup floors the acceptance criteria pin. The floors live in
//! `fta_bench::gates`, shared with the snapshot writers, so the writer
//! and this re-check can never drift apart. Parallel floors are
//! capability-conditioned on the thread count the snapshot records —
//! a single-core box cannot honestly produce (or re-check) a concurrent
//! speedup, so there the sharded path is held to the no-loss band.

use fta_bench::gates;
use serde_json::Value;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

#[test]
fn bench_incremental_snapshot_is_schema_valid() {
    let raw = std::fs::read_to_string(snapshot_path("BENCH_incremental.json"))
        .expect("BENCH_incremental.json is committed at the repo root");
    let v: Value = serde_json::from_str(&raw).expect("snapshot parses as JSON");

    assert!(v["description"].as_str().is_some(), "missing description");
    assert_eq!(v["algorithm"].as_str(), Some("fgt"));
    assert!(v["reps"].as_u64().unwrap_or(0) >= 1, "reps must be >= 1");

    let grid = v["grid"].as_array().expect("grid is an array");
    assert!(!grid.is_empty(), "grid must not be empty");

    let mut saw_paper_drop = false;
    for row in grid {
        for key in ["label", "mode"] {
            assert!(
                row[key].as_str().is_some(),
                "row missing string field {key}"
            );
        }
        for key in ["n_workers", "n_centers", "n_dps", "rounds"] {
            assert!(
                row[key].as_u64().unwrap_or(0) > 0,
                "row missing positive integer field {key}"
            );
        }
        let cold = row["cold_ms"].as_f64().expect("row missing cold_ms");
        let warm = row["warm_ms"].as_f64().expect("row missing warm_ms");
        let speedup = row["speedup_warm_vs_cold"]
            .as_f64()
            .expect("row missing speedup_warm_vs_cold");
        assert!(cold > 0.0 && warm > 0.0 && speedup > 0.0);
        assert!(
            (speedup - cold / warm).abs() <= speedup * 1e-6,
            "speedup_warm_vs_cold inconsistent with cold_ms/warm_ms"
        );

        let stats = &row["resolve_stats"];
        let mut ladder = 0u64;
        for key in [
            "centers_clean",
            "centers_warm",
            "centers_cold",
            "warm_adopted",
            "warm_rejected",
        ] {
            let n = stats[key].as_u64();
            assert!(n.is_some(), "resolve_stats missing {key}");
            if key.starts_with("centers_") {
                ladder += n.unwrap();
            }
        }
        let rounds = row["rounds"].as_u64().unwrap();
        let centers = row["n_centers"].as_u64().unwrap();
        assert_eq!(
            ladder,
            rounds * centers,
            "ladder counts must cover every center of every round"
        );

        let label = row["label"].as_str().unwrap();
        let mode = row["mode"].as_str().unwrap();
        if mode == "drop" {
            assert!(
                warm <= cold,
                "{label}/{mode}: committed snapshot has warm losing to cold"
            );
        }
        if label == "paper" && mode == "drop" {
            saw_paper_drop = true;
            assert!(
                speedup >= gates::WARM_PAPER_DROP_FLOOR,
                "paper/drop speedup {speedup:.2}x below the {}x acceptance floor",
                gates::WARM_PAPER_DROP_FLOOR
            );
        }
    }
    assert!(saw_paper_drop, "grid must include the paper/drop row");
}

#[test]
fn bench_durable_snapshot_is_schema_valid() {
    let raw = std::fs::read_to_string(snapshot_path("BENCH_durable.json"))
        .expect("BENCH_durable.json is committed at the repo root");
    let v: Value = serde_json::from_str(&raw).expect("snapshot parses as JSON");

    assert!(v["description"].as_str().is_some(), "missing description");
    assert_eq!(v["algorithm"].as_str(), Some("gta"));
    assert!(v["reps"].as_u64().unwrap_or(0) >= 1, "reps must be >= 1");
    assert!(v["horizon_hours"].as_f64().unwrap_or(0.0) > 0.0);
    assert!(v["workers"].as_u64().unwrap_or(0) > 0);
    assert!(v["snapshot_every"].as_u64().unwrap_or(0) >= 1);

    let grid = v["grid"].as_array().expect("grid is an array");
    assert!(!grid.is_empty(), "grid must not be empty");

    let mut saw_every8 = false;
    for row in grid {
        let fsync = row["fsync"].as_str().expect("row missing fsync");
        assert!(row["rounds"].as_u64().unwrap_or(0) > 0);
        let plain = row["plain_ms"].as_f64().expect("row missing plain_ms");
        let durable = row["durable_ms"].as_f64().expect("row missing durable_ms");
        let overhead = row["overhead"].as_f64().expect("row missing overhead");
        assert!(plain > 0.0 && durable > 0.0 && overhead > 0.0);
        assert!(
            (overhead - durable / plain).abs() <= overhead * 1e-6,
            "overhead inconsistent with durable_ms/plain_ms"
        );
        // A day whose final round truncated the log on a snapshot can
        // legitimately leave zero frames behind, but it must have cut
        // snapshots and written log bytes at some point.
        assert!(row["log_frames"].as_u64().is_some(), "missing log_frames");
        assert!(row["log_bytes"].as_u64().unwrap_or(0) > 0);
        assert!(row["snapshots"].as_u64().unwrap_or(0) > 0);

        if fsync == "every-8" {
            saw_every8 = true;
            assert!(
                overhead <= gates::durable_overhead_ceiling(false),
                "every-8 journaling overhead {overhead:.2}x exceeds the \
                 committed full-mode ceiling"
            );
        }
    }
    assert!(saw_every8, "grid must include the every-8 row");
}

#[test]
fn bench_scale_snapshot_is_schema_valid() {
    let raw = std::fs::read_to_string(snapshot_path("BENCH_scale.json"))
        .expect("BENCH_scale.json is committed at the repo root");
    let v: Value = serde_json::from_str(&raw).expect("snapshot parses as JSON");

    assert!(v["description"].as_str().is_some(), "missing description");
    assert_eq!(v["algorithm"].as_str(), Some("gta"));
    assert!(v["reps"].as_u64().unwrap_or(0) >= 1, "reps must be >= 1");
    let threads = v["hw_threads"].as_u64().expect("missing hw_threads") as usize;
    assert!(threads >= 1, "hw_threads must be >= 1");
    // peak_rss_bytes is null off Linux; when present it must be sane
    // (a 10^5-worker sweep holds well over a megabyte live).
    if let Some(rss) = v["peak_rss_bytes"].as_u64() {
        assert!(rss > 1 << 20, "peak RSS implausibly small: {rss} bytes");
    }

    let grid = v["grid"].as_array().expect("grid is an array");
    assert!(!grid.is_empty(), "grid must not be empty");

    // The committed full-mode sweep must reach the acceptance scale.
    let max_workers = grid
        .iter()
        .map(|r| r["n_workers"].as_u64().unwrap_or(0))
        .max()
        .unwrap_or(0);
    let max_centers = grid
        .iter()
        .map(|r| r["n_centers"].as_u64().unwrap_or(0))
        .max()
        .unwrap_or(0);
    assert!(
        max_workers >= 100_000,
        "committed sweep must reach 10^5 workers (saw {max_workers})"
    );
    assert!(
        max_centers >= 200,
        "committed sweep must reach 200 centers (saw {max_centers})"
    );

    for row in grid {
        let label = row["label"].as_str().expect("row missing label");
        for key in ["n_centers", "n_workers", "n_dps", "n_tasks", "shards"] {
            assert!(
                row[key].as_u64().unwrap_or(0) > 0,
                "{label}: missing positive integer field {key}"
            );
        }
        let sequential = row["sequential_ms"].as_f64().expect("sequential_ms");
        let sharded = row["sharded_ms"].as_f64().expect("sharded_ms");
        let speedup = row["speedup_sharded_vs_sequential"]
            .as_f64()
            .expect("speedup_sharded_vs_sequential");
        assert!(sequential > 0.0 && sharded > 0.0 && speedup > 0.0);
        assert!(
            (speedup - sequential / sharded).abs() <= speedup * 1e-6,
            "{label}: speedup inconsistent with its timings"
        );
        assert!(
            row["workers_per_sec"].as_f64().unwrap_or(0.0) > 0.0,
            "{label}: missing workers_per_sec"
        );
        for key in ["geo_imbalance_pct", "hash_imbalance_pct"] {
            assert!(
                row[key].as_f64().unwrap_or(-1.0) >= 0.0,
                "{label}: missing {key}"
            );
        }

        // Same capability-conditioned gates as the writer: the headline
        // floor where the recorded hardware could express concurrency,
        // the no-loss band everywhere.
        assert!(
            sharded <= sequential * gates::scale_noise_band(false),
            "{label}: committed snapshot has sharded losing to sequential \
             beyond the full-mode noise band"
        );
        let centers = row["n_centers"].as_u64().unwrap() as usize;
        if threads >= gates::SCALE_FLOOR_MIN_THREADS && centers >= gates::SCALE_FLOOR_MIN_CENTERS {
            assert!(
                speedup >= gates::SCALE_SPEEDUP_FLOOR,
                "{label}: committed speedup {speedup:.2}x on {threads} threads \
                 below the {}x acceptance floor",
                gates::SCALE_SPEEDUP_FLOOR
            );
        }
    }
}

#[test]
fn bench_vdps_snapshot_multi_center_is_honest_about_threads() {
    let raw = std::fs::read_to_string(snapshot_path("BENCH_vdps.json"))
        .expect("BENCH_vdps.json is committed at the repo root");
    let v: Value = serde_json::from_str(&raw).expect("snapshot parses as JSON");

    let mc = &v["solve_multi_center"];
    let threads = mc["threads"].as_u64().expect("missing threads");
    assert!(threads >= 1);
    assert!(mc["sequential_ms"].as_f64().unwrap_or(0.0) > 0.0);
    assert!(mc["pooled_ms"].as_f64().unwrap_or(0.0) > 0.0);
    // A parallel speedup claim requires actual parallel hardware: with
    // one pool thread the field must be null (pooled-vs-sequential is
    // dispatch overhead plus timer noise, not a win).
    if threads == 1 {
        assert!(
            mc["speedup"].is_null(),
            "single-thread snapshot must not claim a parallel speedup"
        );
    } else {
        let seq = mc["sequential_ms"].as_f64().unwrap();
        let par = mc["pooled_ms"].as_f64().unwrap();
        let speedup = mc["speedup"].as_f64().expect("missing speedup");
        assert!(
            (speedup - seq / par).abs() <= speedup * 1e-6,
            "speedup inconsistent with its timings"
        );
    }
}

#[test]
fn bench_hotpath_snapshot_is_schema_valid() {
    let raw = std::fs::read_to_string(snapshot_path("BENCH_hotpath.json"))
        .expect("BENCH_hotpath.json is committed at the repo root");
    let v: Value = serde_json::from_str(&raw).expect("snapshot parses as JSON");

    assert!(v["description"].as_str().is_some(), "missing description");
    assert!(v["reps"].as_u64().unwrap_or(0) >= 1, "reps must be >= 1");

    // Microkernels: every section carries its timings and a consistent
    // speedup; the committed (full-mode) numbers must clear the
    // full-mode floors.
    let micro = &v["microkernels"];
    let scan = &micro["scan"];
    assert!(scan["len"].as_u64().unwrap_or(0) > 0, "scan missing len");
    let mut scan_best = 0.0f64;
    for section in ["first_open", "sweep"] {
        let s = &scan[section];
        let scalar = s["scalar_us"].as_f64().expect("scan scalar_us");
        let chunked = s["chunked_us"].as_f64().expect("scan chunked_us");
        let speedup = s["speedup"].as_f64().expect("scan speedup");
        assert!(scalar > 0.0 && chunked > 0.0);
        assert!(
            (speedup - scalar / chunked).abs() <= speedup * 1e-6,
            "scan/{section} speedup inconsistent with its timings"
        );
        scan_best = scan_best.max(speedup);
    }
    assert!(
        scan_best >= gates::hotpath_scan_floor(false),
        "committed scan speedup {scan_best:.2}x below the full-mode floor"
    );
    for (section, floor) in [
        ("gather", None),
        ("dedup", Some(gates::hotpath_dedup_floor(false))),
        ("emission", None),
    ] {
        let speedup = micro[section]["speedup"]
            .as_f64()
            .unwrap_or_else(|| panic!("microkernels.{section} missing speedup"));
        assert!(speedup > 0.0);
        if let Some(floor) = floor {
            assert!(
                speedup >= floor,
                "committed {section} speedup {speedup:.2}x below its {floor:.2}x floor"
            );
        }
    }

    // Calibration: the model constants, the measured maintenance cost,
    // and a non-empty sweep with internally consistent modeled costs.
    let cal = &v["calibration"];
    assert!(cal["probes_per_switch"].as_f64().unwrap_or(0.0) > 0.0);
    assert!(cal["bits_per_switch"].as_f64().unwrap_or(0.0) > 0.0);
    assert!(cal["maintenance_ns_per_entry"].as_f64().unwrap_or(-1.0) >= 0.0);
    assert!(cal["crossover_found"].as_bool().is_some());
    let sweep = cal["sweep"].as_array().expect("calibration sweep array");
    assert!(!sweep.is_empty(), "calibration sweep must not be empty");
    for point in sweep {
        assert!(point["slots"].as_u64().unwrap_or(0) > 0);
        let probe = point["index_probe_us"].as_f64().expect("index_probe_us");
        let total = point["index_total_us"].as_f64().expect("index_total_us");
        assert!(point["scan_us"].as_f64().unwrap_or(0.0) > 0.0);
        assert!(
            total >= probe,
            "modeled index total must include the probe cost"
        );
    }

    // End-to-end: the calibrated profile must beat the legacy profile by
    // the acceptance floor, and the axis attribution must be present.
    let e2e = &v["end_to_end"];
    assert_eq!(e2e["n_workers"].as_u64(), Some(1000));
    let legacy = e2e["legacy_ms"].as_f64().expect("legacy_ms");
    let calibrated = e2e["calibrated_ms"].as_f64().expect("calibrated_ms");
    let speedup = e2e["speedup"].as_f64().expect("e2e speedup");
    assert!(legacy > 0.0 && calibrated > 0.0);
    assert!(
        (speedup - legacy / calibrated).abs() <= speedup * 1e-6,
        "e2e speedup inconsistent with its timings"
    );
    assert!(
        speedup >= gates::hotpath_e2e_floor(false),
        "committed e2e speedup {speedup:.2}x below the full-mode floor"
    );
    assert!(
        !e2e["axes"].as_array().expect("e2e axes").is_empty(),
        "e2e axis attribution must not be empty"
    );

    // The embedded profile must round-trip through the solver's loader —
    // the exact path `fta solve --hotpath-profile BENCH_hotpath.json`
    // takes (the loader accepts the wrapped snapshot form).
    let profile = fta_vdps::hotpath::from_json_str(&raw)
        .expect("embedded profile parses via the solver's loader");
    assert!(profile.conflict_index_min_slots >= 256);
}

//! Schema validation of the committed incremental re-solve perf
//! snapshot: `BENCH_incremental.json` at the repo root must parse,
//! carry every field downstream tooling reads, stay internally
//! consistent (speedup = cold/warm, ladder counts cover every center of
//! every round), and keep the paper-scale speedup floor the acceptance
//! criteria pin (warm ≥ 3× cold under delivery churn).

use serde_json::Value;
use std::path::PathBuf;

fn snapshot_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json")
}

#[test]
fn bench_incremental_snapshot_is_schema_valid() {
    let raw = std::fs::read_to_string(snapshot_path())
        .expect("BENCH_incremental.json is committed at the repo root");
    let v: Value = serde_json::from_str(&raw).expect("snapshot parses as JSON");

    assert!(v["description"].as_str().is_some(), "missing description");
    assert_eq!(v["algorithm"].as_str(), Some("fgt"));
    assert!(v["reps"].as_u64().unwrap_or(0) >= 1, "reps must be >= 1");

    let grid = v["grid"].as_array().expect("grid is an array");
    assert!(!grid.is_empty(), "grid must not be empty");

    let mut saw_paper_drop = false;
    for row in grid {
        for key in ["label", "mode"] {
            assert!(
                row[key].as_str().is_some(),
                "row missing string field {key}"
            );
        }
        for key in ["n_workers", "n_centers", "n_dps", "rounds"] {
            assert!(
                row[key].as_u64().unwrap_or(0) > 0,
                "row missing positive integer field {key}"
            );
        }
        let cold = row["cold_ms"].as_f64().expect("row missing cold_ms");
        let warm = row["warm_ms"].as_f64().expect("row missing warm_ms");
        let speedup = row["speedup_warm_vs_cold"]
            .as_f64()
            .expect("row missing speedup_warm_vs_cold");
        assert!(cold > 0.0 && warm > 0.0 && speedup > 0.0);
        assert!(
            (speedup - cold / warm).abs() <= speedup * 1e-6,
            "speedup_warm_vs_cold inconsistent with cold_ms/warm_ms"
        );

        let stats = &row["resolve_stats"];
        let mut ladder = 0u64;
        for key in [
            "centers_clean",
            "centers_warm",
            "centers_cold",
            "warm_adopted",
            "warm_rejected",
        ] {
            let n = stats[key].as_u64();
            assert!(n.is_some(), "resolve_stats missing {key}");
            if key.starts_with("centers_") {
                ladder += n.unwrap();
            }
        }
        let rounds = row["rounds"].as_u64().unwrap();
        let centers = row["n_centers"].as_u64().unwrap();
        assert_eq!(
            ladder,
            rounds * centers,
            "ladder counts must cover every center of every round"
        );

        let label = row["label"].as_str().unwrap();
        let mode = row["mode"].as_str().unwrap();
        if mode == "drop" {
            assert!(
                warm <= cold,
                "{label}/{mode}: committed snapshot has warm losing to cold"
            );
        }
        if label == "paper" && mode == "drop" {
            saw_paper_drop = true;
            assert!(
                speedup >= 3.0,
                "paper/drop speedup {speedup:.2}x below the 3x acceptance floor"
            );
        }
    }
    assert!(saw_paper_drop, "grid must include the paper/drop row");
}

//! Property-based tests of the rendering layer: text tables, CSV, JSON,
//! ASCII charts, and SVG must never panic and must stay well-formed for
//! arbitrary figure data (including NaN/infinite values and hostile
//! labels).

use fta_experiments::{render_chart, render_html, render_svg, FigureData, Panel};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    // Includes XML/CSV-hostile characters.
    proptest::string::string_regex("[a-zA-Z0-9 ,\"<>&|-]{0,24}").expect("valid regex")
}

fn arb_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -1e6..1e6_f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
    ]
}

fn arb_panel() -> impl Strategy<Value = Panel> {
    (
        arb_label(),
        prop::collection::vec(
            (
                arb_label(),
                prop::collection::vec((arb_value(), arb_value()), 0..8),
            ),
            0..5,
        ),
    )
        .prop_map(|(metric, series)| {
            let mut panel = Panel::new(&metric);
            for (label, points) in series {
                for (x, y) in points {
                    panel.push_point(&label, x, y);
                }
            }
            panel
        })
}

fn arb_figure() -> impl Strategy<Value = FigureData> {
    (
        arb_label(),
        arb_label(),
        arb_label(),
        prop::collection::vec(arb_panel(), 0..4),
    )
        .prop_map(|(id, title, x_label, panels)| {
            let mut fig = FigureData::new(&id, &title, &x_label);
            fig.panels = panels;
            fig
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn text_rendering_never_panics(fig in arb_figure()) {
        let text = fig.render_text();
        prop_assert!(text.contains(&fig.id));
    }

    #[test]
    fn csv_has_consistent_column_count(fig in arb_figure()) {
        let csv = fig.to_csv();
        let mut lines = csv.lines();
        prop_assert_eq!(lines.next().unwrap(), "figure,panel,series,x,y,std");
        for line in lines {
            // RFC-4180-ish check: an unquoted parse must yield ≥ 6 fields
            // only when no field was quoted; quoted fields collapse — just
            // assert the row is non-empty and mentions the figure id or is
            // quoted.
            prop_assert!(!line.is_empty());
        }
    }

    #[test]
    fn json_is_always_parseable(fig in arb_figure()) {
        // serde_json rejects NaN/infinite floats by converting to null;
        // `to_json` must still produce parseable output or panic-free
        // failure. FigureData uses plain f64, and serde_json serialises
        // non-finite values as null — the output must stay valid JSON.
        let json = fig.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(parsed["id"].as_str().unwrap(), fig.id.as_str());
    }

    #[test]
    fn ascii_chart_never_panics(panel in arb_panel(), w in 0usize..120, h in 0usize..40) {
        let chart = render_chart(&panel, "x", w, h);
        // Either empty (no finite points) or bordered.
        if !chart.is_empty() {
            prop_assert!(chart.contains('+'));
        }
    }

    #[test]
    fn svg_is_well_formed_enough(panel in arb_panel()) {
        let svg = render_svg(&panel, "x");
        if !svg.is_empty() {
            prop_assert!(svg.starts_with("<svg"));
            prop_assert!(svg.trim_end().ends_with("</svg>"));
            // Escaping: no raw ampersand followed by space (unescaped '&').
            prop_assert!(!svg.contains("& "));
        }
    }

    #[test]
    fn html_report_embeds_every_figure_id(figs in prop::collection::vec(arb_figure(), 0..3)) {
        let html = render_html(&figs);
        prop_assert!(html.starts_with("<!DOCTYPE html>"));
        prop_assert!(html.ends_with("</body></html>\n"));
    }
}

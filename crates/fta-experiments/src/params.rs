//! Table I — experiment parameters, defaults, and dataset handles.
//!
//! Underlined values in the paper's Table I are the defaults used while
//! other parameters vary; `*_SWEEP` constants list the full grids. SYN
//! cardinalities are scaled by [`RunnerOptions::syn_scale`] (1/10 linear by
//! default, preserving per-center subproblem sizes; pass
//! `paper_scale = true` for the full Table I sizes — see `DESIGN.md` §3).

use fta_data::{GMissionConfig, SynConfig};

/// Which of the paper's two datasets an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// gMission-like (Section VII-A; one distribution center).
    Gm,
    /// Synthetic (Table I; 50 distribution centers at paper scale).
    Syn,
}

impl Dataset {
    /// The paper's name for the dataset.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Gm => "GM",
            Self::Syn => "SYN",
        }
    }
}

/// ε sweep for GM, km (Table I; default 0.6).
pub const GM_EPSILON_SWEEP: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];
/// ε default for GM, km.
pub const GM_EPSILON_DEFAULT: f64 = 0.6;
/// ε sweep for SYN, km (Table I; default 2).
pub const SYN_EPSILON_SWEEP: [f64; 8] = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
/// ε default for SYN, km.
pub const SYN_EPSILON_DEFAULT: f64 = 2.0;

/// |S| sweep for GM (default 200).
pub const GM_TASKS_SWEEP: [usize; 5] = [100, 200, 300, 400, 500];
/// |S| sweep for SYN at paper scale (default 100K).
pub const SYN_TASKS_SWEEP: [usize; 5] = [25_000, 50_000, 75_000, 100_000, 125_000];

/// |W| sweep for GM (default 40).
pub const GM_WORKERS_SWEEP: [usize; 5] = [20, 40, 60, 80, 100];
/// |W| sweep for SYN at paper scale (default 2K).
pub const SYN_WORKERS_SWEEP: [usize; 5] = [1_000, 2_000, 3_000, 4_000, 5_000];

/// |DP| sweep for GM (default 100).
pub const GM_DPS_SWEEP: [usize; 5] = [20, 40, 60, 80, 100];
/// |DP| sweep for SYN at paper scale (default 5K).
pub const SYN_DPS_SWEEP: [usize; 5] = [3_000, 3_500, 4_000, 4_500, 5_000];

/// Expiration sweep for SYN, hours (default 2).
pub const SYN_EXPIRY_SWEEP: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 2.5];

/// maxDP sweep for SYN (default 3).
pub const SYN_MAXDP_SWEEP: [usize; 4] = [1, 2, 3, 4];

/// Shared options of every experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunnerOptions {
    /// Seeds to average over (one instance + one algorithm run per seed).
    pub seeds: Vec<u64>,
    /// Solve distribution centers on separate threads.
    pub parallel: bool,
    /// Use the paper's full SYN scale instead of the 1/10 default.
    pub paper_scale: bool,
    /// Include the unpruned `-W` algorithm variants where the paper does
    /// (Figures 2–3).
    pub include_unpruned: bool,
    /// Base GM configuration; swept parameters override the corresponding
    /// field. Defaults to the paper's Table I GM defaults.
    pub gm: GMissionConfig,
    /// Optional SYN base override (used by tests to shrink instances);
    /// `None` selects the Table I configuration at the runner's scale.
    pub syn_override: Option<SynConfig>,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        Self {
            seeds: vec![42],
            parallel: true,
            paper_scale: false,
            include_unpruned: true,
            gm: GMissionConfig::default(),
            syn_override: None,
        }
    }
}

impl RunnerOptions {
    /// Quick options for tests: one seed, sequential, scaled down (the GM
    /// base shrinks to a quarter of the paper's size).
    #[must_use]
    pub fn fast_test() -> Self {
        Self {
            seeds: vec![7],
            parallel: false,
            paper_scale: false,
            include_unpruned: false,
            gm: GMissionConfig {
                n_tasks: 60,
                n_workers: 12,
                n_delivery_points: 30,
                ..GMissionConfig::default()
            },
            syn_override: Some(SynConfig {
                n_centers: 2,
                n_workers: 24,
                n_tasks: 1_200,
                n_delivery_points: 60,
                ..SynConfig::bench_scale()
            }),
        }
    }

    /// Linear scale factor applied to SYN cardinalities (1 at paper scale,
    /// 1/10 otherwise).
    #[must_use]
    pub fn syn_scale(&self) -> f64 {
        if self.paper_scale {
            1.0
        } else {
            0.1
        }
    }

    /// The SYN base config at the chosen scale, Table I defaults (or the
    /// test override when set).
    #[must_use]
    pub fn syn_base(&self) -> SynConfig {
        if let Some(cfg) = self.syn_override {
            return cfg;
        }
        if self.paper_scale {
            SynConfig::paper_scale()
        } else {
            SynConfig::bench_scale()
        }
    }

    /// Scales a paper-scale SYN cardinality to the runner's scale.
    #[must_use]
    pub fn scale_count(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.syn_scale()).round() as usize).max(1)
    }

    /// The GM base config.
    #[must_use]
    pub fn gm_base(&self) -> GMissionConfig {
        self.gm
    }

    /// Default ε for the dataset (used by all non-ε experiments).
    #[must_use]
    pub fn default_epsilon(&self, dataset: Dataset) -> f64 {
        match dataset {
            Dataset::Gm => GM_EPSILON_DEFAULT,
            Dataset::Syn => SYN_EPSILON_DEFAULT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_underlined_table_values() {
        let opts = RunnerOptions::default();
        assert_eq!(opts.default_epsilon(Dataset::Gm), 0.6);
        assert_eq!(opts.default_epsilon(Dataset::Syn), 2.0);
        assert_eq!(opts.gm_base().n_tasks, 200);
        assert_eq!(opts.gm_base().n_workers, 40);
        assert_eq!(opts.gm_base().n_delivery_points, 100);
    }

    #[test]
    fn scaling_preserves_paper_scale() {
        let opts = RunnerOptions {
            paper_scale: true,
            ..RunnerOptions::default()
        };
        assert_eq!(opts.scale_count(100_000), 100_000);
        assert_eq!(opts.syn_base().n_centers, 50);
    }

    #[test]
    fn bench_scale_is_one_tenth() {
        let opts = RunnerOptions::default();
        assert_eq!(opts.scale_count(100_000), 10_000);
        assert_eq!(opts.scale_count(3), 1); // never rounds to zero
        assert_eq!(opts.syn_base().n_centers, 5);
    }

    #[test]
    fn sweeps_contain_their_defaults() {
        assert!(GM_EPSILON_SWEEP.contains(&GM_EPSILON_DEFAULT));
        assert!(SYN_EPSILON_SWEEP.contains(&SYN_EPSILON_DEFAULT));
        assert!(GM_TASKS_SWEEP.contains(&200));
        assert!(SYN_TASKS_SWEEP.contains(&100_000));
        assert!(GM_WORKERS_SWEEP.contains(&40));
        assert!(SYN_WORKERS_SWEEP.contains(&2_000));
        assert!(GM_DPS_SWEEP.contains(&100));
        assert!(SYN_DPS_SWEEP.contains(&5_000));
        assert!(SYN_EXPIRY_SWEEP.contains(&2.0));
        assert!(SYN_MAXDP_SWEEP.contains(&3));
    }

    #[test]
    fn dataset_names() {
        assert_eq!(Dataset::Gm.name(), "GM");
        assert_eq!(Dataset::Syn.name(), "SYN");
    }
}

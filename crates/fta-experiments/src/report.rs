//! Figure/table data model and rendering.
//!
//! Every experiment produces a [`FigureData`]: a set of panels (one per
//! metric the paper plots) each holding one series per algorithm. The data
//! renders as aligned text tables — the same rows/series the paper's plots
//! show — and serialises to JSON for downstream plotting.

use serde::Serialize;
use std::fmt::Write as _;

/// One algorithm's curve: `(x, y)` points over the sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Series {
    /// Legend label (e.g. `"IEGT"`, `"MPTA-W"`).
    pub label: String,
    /// `(x, y)` points in sweep order.
    pub points: Vec<(f64, f64)>,
    /// Per-point standard deviation across seeds (error bars); empty when
    /// the experiment ran a single seed.
    #[serde(skip_serializing_if = "Vec::is_empty", default)]
    pub spread: Vec<f64>,
}

/// One sub-plot of a figure: a metric and the series of every algorithm.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Panel {
    /// Metric name (`"payoff difference"`, `"average payoff"`,
    /// `"CPU time (ms)"`, …).
    pub metric: String,
    /// One series per algorithm.
    pub series: Vec<Series>,
}

impl Panel {
    /// Creates an empty panel for `metric`.
    #[must_use]
    pub fn new(metric: &str) -> Self {
        Self {
            metric: metric.to_owned(),
            series: Vec::new(),
        }
    }

    /// Appends a `(x, y)` point to the series labelled `label`, creating
    /// the series if needed.
    pub fn push_point(&mut self, label: &str, x: f64, y: f64) {
        match self.series.iter_mut().find(|s| s.label == label) {
            Some(s) => s.points.push((x, y)),
            None => self.series.push(Series {
                label: label.to_owned(),
                points: vec![(x, y)],
                spread: Vec::new(),
            }),
        }
    }

    /// Appends a point together with its cross-seed standard deviation.
    /// Mixing spread and non-spread points in one series is rejected in
    /// debug builds (the vectors must stay parallel).
    pub fn push_point_with_spread(&mut self, label: &str, x: f64, y: f64, std: f64) {
        match self.series.iter_mut().find(|s| s.label == label) {
            Some(s) => {
                debug_assert_eq!(
                    s.spread.len(),
                    s.points.len(),
                    "series {label} mixes spread and plain points"
                );
                s.points.push((x, y));
                s.spread.push(std);
            }
            None => self.series.push(Series {
                label: label.to_owned(),
                points: vec![(x, y)],
                spread: vec![std],
            }),
        }
    }

    /// Looks up a series by label.
    #[must_use]
    pub fn series_of(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// All data behind one of the paper's figures (or tables).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FigureData {
    /// Experiment id (`"fig2"`, `"table1"`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// The figure's panels.
    pub panels: Vec<Panel>,
}

impl FigureData {
    /// Creates an empty figure.
    #[must_use]
    pub fn new(id: &str, title: &str, x_label: &str) -> Self {
        Self {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            panels: Vec::new(),
        }
    }

    /// Renders the figure as aligned text tables, one per panel.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        for panel in &self.panels {
            let _ = writeln!(out, "\n-- {} --", panel.metric);
            // Collect the x grid from the union of all series (non-finite
            // x values cannot be placed on a grid and are dropped).
            let mut xs: Vec<f64> = panel
                .series
                .iter()
                .flat_map(|s| s.points.iter().map(|&(x, _)| x))
                .filter(|x| x.is_finite())
                .collect();
            xs.sort_by(f64::total_cmp);
            xs.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

            // Header.
            let mut header = format!("{:>12}", self.x_label);
            for s in &panel.series {
                let _ = write!(header, " {:>12}", s.label);
            }
            let _ = writeln!(out, "{header}");

            for &x in &xs {
                let _ = write!(out, "{x:>12.3}");
                for s in &panel.series {
                    match s.points.iter().find(|&&(px, _)| (px - x).abs() < 1e-12) {
                        Some(&(_, y)) => {
                            let _ = write!(out, " {y:>12.4}");
                        }
                        None => {
                            let _ = write!(out, " {:>12}", "-");
                        }
                    }
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Serialises the figure to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the data model contains no map keys or
    /// non-string identifiers that could fail serialisation.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FigureData serialises infallibly")
    }

    /// Looks up a panel by metric name.
    #[must_use]
    pub fn panel_of(&self, metric: &str) -> Option<&Panel> {
        self.panels.iter().find(|p| p.metric == metric)
    }

    /// Renders the figure as long-format CSV, one row per point:
    /// `figure,panel,series,x,y`. Fields containing commas or quotes are
    /// quoted per RFC 4180.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(field: &str) -> String {
            if field.contains([',', '"', '\n']) {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_owned()
            }
        }
        let mut out = String::from("figure,panel,series,x,y,std\n");
        for panel in &self.panels {
            for series in &panel.series {
                for (i, &(x, y)) in series.points.iter().enumerate() {
                    let std = series
                        .spread
                        .get(i)
                        .map(ToString::to_string)
                        .unwrap_or_default();
                    let _ = writeln!(
                        out,
                        "{},{},{},{x},{y},{std}",
                        escape(&self.id),
                        escape(&panel.metric),
                        escape(&series.label),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut fig = FigureData::new("fig4", "Effect of |S| (GM)", "|S|");
        let mut diff = Panel::new("payoff difference");
        diff.push_point("GTA", 100.0, 0.8);
        diff.push_point("GTA", 200.0, 0.9);
        diff.push_point("IEGT", 100.0, 0.2);
        diff.push_point("IEGT", 200.0, 0.25);
        fig.panels.push(diff);
        fig
    }

    #[test]
    fn push_point_groups_by_label() {
        let fig = sample();
        let panel = fig.panel_of("payoff difference").unwrap();
        assert_eq!(panel.series.len(), 2);
        assert_eq!(panel.series_of("GTA").unwrap().points.len(), 2);
    }

    #[test]
    fn render_contains_all_values() {
        let text = sample().render_text();
        assert!(text.contains("fig4"));
        assert!(text.contains("GTA"));
        assert!(text.contains("IEGT"));
        assert!(text.contains("0.8000"));
        assert!(text.contains("0.2500"));
        assert!(text.contains("100.000"));
    }

    #[test]
    fn render_marks_missing_points_with_dash() {
        let mut fig = sample();
        fig.panels[0].push_point("FGT", 200.0, 0.5);
        let text = fig.render_text();
        // FGT has no point at x=100 → a dash must appear in that row.
        let row = text
            .lines()
            .find(|l| l.trim_start().starts_with("100.000"))
            .unwrap();
        assert!(row.contains('-'));
    }

    #[test]
    fn csv_is_long_format_with_header() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "figure,panel,series,x,y,std");
        // 4 points total.
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("fig4,payoff difference,GTA,100,"));
        // No spread recorded → empty std field.
        assert!(lines[1].ends_with(','));
    }

    #[test]
    fn csv_includes_spread_when_recorded() {
        let mut fig = FigureData::new("f", "t", "x");
        let mut p = Panel::new("m");
        p.push_point_with_spread("S", 1.0, 2.0, 0.25);
        fig.panels.push(p);
        let csv = fig.to_csv();
        assert!(csv.contains("f,m,S,1,2,0.25"));
    }

    #[test]
    fn spread_round_trips_through_json() {
        let mut fig = FigureData::new("f", "t", "x");
        let mut p = Panel::new("m");
        p.push_point_with_spread("S", 1.0, 2.0, 0.5);
        fig.panels.push(p);
        let value: serde_json::Value = serde_json::from_str(&fig.to_json()).unwrap();
        assert_eq!(
            value["panels"][0]["series"][0]["spread"][0]
                .as_f64()
                .unwrap(),
            0.5
        );
        // Plain series omit the field entirely.
        let plain = sample().to_json();
        let value: serde_json::Value = serde_json::from_str(&plain).unwrap();
        assert!(value["panels"][0]["series"][0].get("spread").is_none());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut fig = FigureData::new("f", "t", "x");
        let mut p = Panel::new("a,b");
        p.push_point("se\"ries", 1.0, 2.0);
        fig.panels.push(p);
        let csv = fig.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"se\"\"ries\""));
    }

    #[test]
    fn json_round_trip_preserves_structure() {
        let fig = sample();
        let json = fig.to_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["id"], "fig4");
        assert_eq!(value["panels"][0]["series"][0]["label"], "GTA");
        assert_eq!(
            value["panels"][0]["series"][0]["points"][1][0]
                .as_f64()
                .unwrap(),
            200.0
        );
    }
}

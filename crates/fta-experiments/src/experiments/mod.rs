//! One module per table/figure of the paper's evaluation.

pub mod common;
pub mod convergence;
pub mod delivery_points;
pub mod epsilon;
pub mod expiration;
pub mod ext_early_stop;
pub mod ext_priority;
pub mod ext_redraw;
pub mod ext_simulation;
pub mod fig1;
pub mod maxdp;
pub mod table1;
pub mod tasks;
pub mod workers;

use crate::params::{Dataset, RunnerOptions};
use crate::report::FigureData;

/// The result of one experiment: a figure's data, or plain text for the
/// artifacts that are not plots (Table I, the Figure 1 walk-through).
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentOutput {
    /// A figure with panels and series.
    Figure(FigureData),
    /// A preformatted text report.
    Text(String),
}

impl ExperimentOutput {
    /// Renders either variant as text.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Figure(fig) => fig.render_text(),
            Self::Text(t) => t.clone(),
        }
    }

    /// The figure data, if this output is a figure.
    #[must_use]
    pub fn as_figure(&self) -> Option<&FigureData> {
        match self {
            Self::Figure(fig) => Some(fig),
            Self::Text(_) => None,
        }
    }
}

/// Every experiment id: the paper's artifacts in order, then the
/// future-work extensions (`ext1` priority fairness, `ext2` early
/// termination, `ext3` IEGT redraw-policy ablation, `ext4` simulated-day
/// longitudinal fairness).
pub const ALL_EXPERIMENTS: [&str; 17] = [
    "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "ext1", "ext2", "ext3", "ext4",
];

/// Runs the experiment with the given id (`"table1"`, `"fig1"`…`"fig12"`).
/// Returns `None` for unknown ids.
#[must_use]
pub fn run(id: &str, opts: &RunnerOptions) -> Option<ExperimentOutput> {
    let figure = |fig: FigureData| Some(ExperimentOutput::Figure(fig));
    match id {
        "table1" => Some(ExperimentOutput::Text(table1::render())),
        "fig1" => Some(ExperimentOutput::Text(fig1::render())),
        "fig2" => figure(epsilon::run(Dataset::Gm, opts)),
        "fig3" => figure(epsilon::run(Dataset::Syn, opts)),
        "fig4" => figure(tasks::run(Dataset::Gm, opts)),
        "fig5" => figure(tasks::run(Dataset::Syn, opts)),
        "fig6" => figure(workers::run(Dataset::Gm, opts)),
        "fig7" => figure(workers::run(Dataset::Syn, opts)),
        "fig8" => figure(delivery_points::run(Dataset::Gm, opts)),
        "fig9" => figure(delivery_points::run(Dataset::Syn, opts)),
        "fig10" => figure(expiration::run(opts)),
        "fig11" => figure(maxdp::run(opts)),
        "fig12" => figure(convergence::run(opts)),
        "ext1" => figure(ext_priority::run(opts)),
        "ext2" => figure(ext_early_stop::run(opts)),
        "ext3" => figure(ext_redraw::run(opts)),
        "ext4" => figure(ext_simulation::run(opts)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_returns_none() {
        assert!(run("fig99", &RunnerOptions::fast_test()).is_none());
    }

    #[test]
    fn text_experiments_render() {
        let out = run("table1", &RunnerOptions::fast_test()).unwrap();
        assert!(out.as_figure().is_none());
        assert!(out.render().contains("Table I"));
    }
}

//! Extension experiment `ext2` — early termination of the game iterations.
//!
//! The paper's conclusion proposes "improving the game-theoretic
//! algorithm's efficiency by enabling early termination of iterations".
//! FGT's `min_improvement` knob implements that idea: a strategy switch is
//! only accepted when it improves the worker's utility by more than a
//! threshold, so near-converged games stop early. This experiment sweeps
//! the threshold and reports the fairness/efficiency trade-off: rounds to
//! convergence and CPU time fall with the threshold while the payoff
//! difference degrades only gradually.

use crate::experiments::common::{default_instances, MAX_LEN_CAP};
use crate::measure::{average_results, measure, AlgoResult};
use crate::params::{Dataset, RunnerOptions};
use crate::report::{FigureData, Panel};
use fta_algorithms::{Algorithm, FgtConfig};
use fta_vdps::VdpsConfig;

/// The `min_improvement` thresholds swept (x-axis).
pub const THRESHOLDS: [f64; 5] = [1e-9, 1e-3, 1e-2, 1e-1, 1.0];

/// Runs the early-termination sweep on the SYN dataset.
#[must_use]
pub fn run(opts: &RunnerOptions) -> FigureData {
    let mut fig = FigureData::new(
        "ext2",
        "Early termination: FGT min-improvement sweep (SYN)",
        "min improvement",
    );
    fig.panels = vec![
        Panel::new("payoff difference"),
        Panel::new("average payoff"),
        Panel::new("rounds to convergence"),
        Panel::new("CPU time (ms)"),
    ];
    let vdps = VdpsConfig::pruned(opts.default_epsilon(Dataset::Syn), MAX_LEN_CAP);
    let instances = default_instances(Dataset::Syn, opts);

    for &threshold in &THRESHOLDS {
        let algorithm = Algorithm::Fgt(FgtConfig {
            min_improvement: threshold,
            ..FgtConfig::default()
        });
        let results: Vec<AlgoResult> = instances
            .iter()
            .map(|inst| measure(inst, "FGT", algorithm, vdps, opts.parallel))
            .collect();
        let rounds_mean = results
            .iter()
            .map(|r| r.trace.len().saturating_sub(1) as f64)
            .sum::<f64>()
            / results.len() as f64;
        let avg = average_results(&results);

        fig.panels[0].push_point("FGT", threshold, avg.fairness.payoff_difference);
        fig.panels[1].push_point("FGT", threshold, avg.fairness.average_payoff);
        fig.panels[2].push_point("FGT", threshold, rounds_mean);
        fig.panels[3].push_point("FGT", threshold, avg.cpu_time_ms());
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_thresholds() {
        let fig = run(&RunnerOptions::fast_test());
        assert_eq!(fig.id, "ext2");
        for panel in &fig.panels {
            let s = &panel.series[0];
            assert_eq!(s.points.len(), THRESHOLDS.len());
        }
    }

    #[test]
    fn larger_thresholds_never_need_more_rounds() {
        // A switch accepted under a high threshold is also accepted under
        // a lower one, so rounds-to-convergence is non-increasing in the
        // threshold (up to the different equilibria reached; we check the
        // endpoints, which are robust).
        let fig = run(&RunnerOptions::fast_test());
        let rounds = fig.panel_of("rounds to convergence").unwrap();
        let pts = &rounds.series[0].points;
        let first = pts.first().unwrap().1;
        let last = pts.last().unwrap().1;
        assert!(
            last <= first + 1e-9,
            "rounds grew with the termination threshold: {first} → {last}"
        );
    }
}

//! Figure 12 — convergence of the game-theoretic approaches.
//!
//! Runs FGT and IEGT once on the default SYN instance and reports the
//! per-iteration payoff difference, average payoff, and number of strategy
//! changes, demonstrating convergence to the (Nash / improved evolutionary)
//! equilibrium.

use crate::experiments::common::MAX_LEN_CAP;
use crate::measure::measure;
use crate::params::{Dataset, RunnerOptions};
use crate::report::{FigureData, Panel};
use fta_algorithms::{Algorithm, FgtConfig, IegtConfig};
use fta_vdps::VdpsConfig;

/// Runs the convergence experiment (first seed only — the paper's Figure 12
/// shows single representative runs).
#[must_use]
pub fn run(opts: &RunnerOptions) -> FigureData {
    let instance = fta_data::generate_syn(&opts.syn_base(), *opts.seeds.first().unwrap_or(&42));
    let vdps = VdpsConfig::pruned(opts.default_epsilon(Dataset::Syn), MAX_LEN_CAP);

    let mut fig = FigureData::new("fig12", "Convergence of FGT and IEGT (SYN)", "iteration");
    fig.panels = vec![
        Panel::new("payoff difference"),
        Panel::new("average payoff"),
        Panel::new("strategy changes"),
        Panel::new(WORK_PANEL),
    ];

    let runs = [
        ("FGT", Algorithm::Fgt(FgtConfig::default())),
        ("IEGT", Algorithm::Iegt(IegtConfig::default())),
    ];
    for (label, algorithm) in runs {
        let result = measure(&instance, label, algorithm, vdps, opts.parallel);
        for round in &result.trace.rounds {
            let x = round.round as f64;
            fig.panels[0].push_point(label, x, round.payoff_difference);
            fig.panels[1].push_point(label, x, round.average_payoff);
            fig.panels[2].push_point(label, x, round.moves as f64);
        }
        // Whole-run best-response work counters: one row per counter
        // (x = counter index, in the order named by the panel metric).
        let s = &result.br_stats;
        let counters = [
            s.rounds,
            s.candidate_evaluations,
            s.switches,
            s.null_adoptions,
            s.evaluator_builds,
            s.evaluator_updates,
            s.candidates_scanned,
            s.early_exits,
            s.index_updates,
            s.fastpath_rounds,
        ];
        for (i, &value) in counters.iter().enumerate() {
            fig.panels[3].push_point(label, i as f64, value as f64);
        }
    }
    fig
}

/// Metric name of the best-response work panel; the x coordinate indexes
/// the counters in the order listed here.
pub const WORK_PANEL: &str = "best-response work [0=rounds, 1=cand evals, 2=switches, \
     3=null adoptions, 4=eval builds, 5=eval updates, 6=cand scanned, 7=early exits, \
     8=index updates, 9=fastpath rounds]";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_algorithms_produce_convergence_curves() {
        let fig = run(&RunnerOptions::fast_test());
        assert_eq!(fig.id, "fig12");
        for label in ["FGT", "IEGT"] {
            let s = fig.panels[0].series_of(label).unwrap();
            assert!(s.points.len() >= 2, "{label} trace too short");
        }
    }

    #[test]
    fn traces_end_with_zero_moves() {
        // Convergence means the final round changed nothing.
        let fig = run(&RunnerOptions::fast_test());
        let moves = fig.panel_of("strategy changes").unwrap();
        for s in &moves.series {
            let last = s.points.last().unwrap().1;
            assert_eq!(last, 0.0, "{} did not settle", s.label);
        }
    }

    #[test]
    fn work_panel_reports_counters_for_both_algorithms() {
        let fig = run(&RunnerOptions::fast_test());
        let work = fig.panel_of(WORK_PANEL).unwrap();
        for label in ["FGT", "IEGT"] {
            let s = work.series_of(label).unwrap();
            assert_eq!(s.points.len(), 10, "{label} missing counters");
            // rounds (x=0) and candidates scanned (x=6) must be > 0. (The
            // IEGT fast path evolves without evaluating IAU utilities, so
            // candidate evaluations may legitimately be zero for it.)
            assert!(s.points[0].1 > 0.0, "{label} reported zero rounds");
            assert!(s.points[6].1 > 0.0, "{label} reported zero scans");
            // Both default configurations are fast-path eligible: every
            // recorded round ran under the monotone loop.
            assert_eq!(s.points[9].1, s.points[0].1, "{label} left the fast path");
        }
    }

    #[test]
    fn average_payoff_grows_during_the_game() {
        // Both games start from a random single-dp assignment; strategy
        // adaptation should raise the population's average payoff (for
        // IEGT every accepted move is a strict payoff improvement; for FGT
        // utility-improving moves overwhelmingly raise payoffs too).
        let fig = run(&RunnerOptions::fast_test());
        let avg = fig.panel_of("average payoff").unwrap();
        for s in &avg.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(
                last >= first * 0.9 - 1e-9,
                "{}: average payoff collapsed ({first} → {last})",
                s.label
            );
        }
    }
}

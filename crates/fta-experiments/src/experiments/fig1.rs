//! Figure 1 — the paper's introductory worked example, executed.
//!
//! Builds the two-worker five-delivery-point instance of Figure 1 and runs
//! the greedy baseline and the fairness-aware game on it, printing the
//! trade-off the paper's introduction walks through: GTA reaches payoffs
//! (2.80, 2.09) with difference 0.71, while a fair assignment achieves
//! (2.55, 2.29) with difference 0.26 at a nearly identical average.

use fta_algorithms::{Algorithm, FgtConfig, SolveConfig};
use fta_core::{fig1, WorkerId};
use fta_vdps::VdpsConfig;
use std::fmt::Write as _;

/// Runs GTA and FGT on the Figure 1 instance and renders the comparison.
#[must_use]
pub fn render() -> String {
    let instance = fig1::instance();
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 1 — worked example ==");
    let _ = writeln!(
        out,
        "dc at (2,2); w1 at (1,2); w2 at (3,1); 5 delivery points with {:?} tasks",
        fig1::TASK_COUNTS
    );

    for (label, algorithm) in [
        ("GTA  (greedy)", Algorithm::Gta),
        (
            "FGT  (fairness-aware)",
            Algorithm::Fgt(FgtConfig::default()),
        ),
    ] {
        let outcome = fta_algorithms::solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::unpruned(3),
                algorithm,
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        let payoffs = outcome.assignment.payoffs(&instance, &workers);
        let report = outcome.assignment.fairness(&instance, &workers);
        let _ = writeln!(out, "\n{label}");
        for (w, route) in outcome.assignment.iter() {
            let dps: Vec<String> = route
                .dps()
                .iter()
                .map(|dp| format!("dp{}", dp.0 + 1))
                .collect();
            let _ = writeln!(out, "  {w} -> {{{}}}", dps.join(", "));
        }
        let _ = writeln!(
            out,
            "  payoffs: w1 = {:.2}, w2 = {:.2}; P_dif = {:.2}; average = {:.2}",
            payoffs[0], payoffs[1], report.payoff_difference, report.average_payoff
        );
    }
    let expected = fig1::expected();
    let _ = writeln!(
        out,
        "\npaper reports: greedy ({:.2}, {:.2}) diff {:.2}; fair ({:.2}, {:.2}) diff {:.2}",
        expected.greedy_payoffs.0,
        expected.greedy_payoffs.1,
        expected.greedy_diff,
        expected.fair_payoffs.0,
        expected.fair_payoffs.1,
        expected.fair_diff,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_reproduces_paper_numbers() {
        let text = render();
        // Greedy payoffs as reported in the introduction.
        assert!(text.contains("2.80"), "missing greedy w1 payoff:\n{text}");
        assert!(text.contains("2.09"), "missing greedy w2 payoff:\n{text}");
        assert!(text.contains("0.71"), "missing greedy diff:\n{text}");
    }

    #[test]
    fn fgt_improves_fairness_over_greedy() {
        let instance = fig1::instance();
        let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
        let run = |algorithm| {
            fta_algorithms::solve(
                &instance,
                &SolveConfig {
                    vdps: VdpsConfig::unpruned(3),
                    algorithm,
                    parallel: false,
                    ..SolveConfig::new(Algorithm::Gta)
                },
            )
            .assignment
            .fairness(&instance, &workers)
        };
        let greedy = run(Algorithm::Gta);
        let fair = run(Algorithm::Fgt(FgtConfig {
            restarts: 8,
            ..FgtConfig::default()
        }));
        // FGT keeps the best equilibrium across restarts, so it is never
        // less fair than the greedy outcome (which is itself one of the
        // game's pure Nash equilibria on this instance).
        assert!(
            fair.payoff_difference <= greedy.payoff_difference + 1e-9,
            "FGT diff {} > GTA diff {}",
            fair.payoff_difference,
            greedy.payoff_difference
        );
    }
}

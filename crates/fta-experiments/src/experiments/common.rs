//! Shared sweep machinery for the figure experiments.

use crate::measure::{
    average_results, measure, spread_of, standard_algorithms, AlgoResult, ResultSpread,
};
use crate::params::RunnerOptions;
use crate::report::{FigureData, Panel};
use fta_algorithms::Algorithm;
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// The metric panels every sweep figure carries: the paper's three
/// (payoff difference, average payoff, CPU time) plus the Jain index
/// extension metric.
pub const PANEL_METRICS: [&str; 4] = [
    "payoff difference",
    "average payoff",
    "CPU time (ms)",
    "jain index",
];

/// Creates a figure with the standard panels.
#[must_use]
pub fn new_figure(id: &str, title: &str, x_label: &str) -> FigureData {
    let mut fig = FigureData::new(id, title, x_label);
    for metric in PANEL_METRICS {
        fig.panels.push(Panel::new(metric));
    }
    fig
}

/// Records one averaged algorithm result (with its cross-seed standard
/// deviations) at sweep position `x` into the figure's standard panels.
pub fn record(fig: &mut FigureData, x: f64, result: &AlgoResult, spread: &ResultSpread) {
    let values = [
        (result.fairness.payoff_difference, spread.payoff_difference),
        (result.fairness.average_payoff, spread.average_payoff),
        (result.cpu_time_ms(), spread.cpu_time_ms),
        (result.fairness.jain, spread.jain),
    ];
    for (panel, (value, std)) in fig.panels.iter_mut().zip(values) {
        panel.push_point_with_spread(&result.label, x, value, std);
    }
}

/// Runs one labelled algorithm over one instance per seed; returns the
/// seed-averaged result and the per-metric standard deviations.
#[must_use]
pub fn run_algorithm(
    instances: &[Instance],
    label: &str,
    algorithm: Algorithm,
    vdps: VdpsConfig,
    opts: &RunnerOptions,
) -> (AlgoResult, ResultSpread) {
    let results: Vec<AlgoResult> = instances
        .iter()
        .map(|inst| measure(inst, label, algorithm, vdps, opts.parallel))
        .collect();
    (average_results(&results), spread_of(&results))
}

/// Runs the paper's four standard algorithms at sweep position `x` over the
/// per-seed instances, recording each into the figure. Returns the averaged
/// results (in [`standard_algorithms`] order) so callers can surface
/// additional counters — e.g. the VDPS generation work panel of the ε
/// experiment.
pub fn run_standard_at(
    fig: &mut FigureData,
    x: f64,
    instances: &[Instance],
    vdps: VdpsConfig,
    opts: &RunnerOptions,
) -> Vec<AlgoResult> {
    let mut results = Vec::new();
    for (label, algorithm) in standard_algorithms() {
        let (result, spread) = run_algorithm(instances, label, algorithm, vdps, opts);
        record(fig, x, &result, &spread);
        results.push(result);
    }
    results
}

/// Generates the dataset's default instance (Table I underlined values),
/// one per seed.
#[must_use]
pub fn default_instances(dataset: crate::params::Dataset, opts: &RunnerOptions) -> Vec<Instance> {
    use crate::params::Dataset;
    opts.seeds
        .iter()
        .map(|&seed| match dataset {
            Dataset::Gm => fta_data::generate_gmission(&opts.gm_base(), seed),
            Dataset::Syn => fta_data::generate_syn(&opts.syn_base(), seed),
        })
        .collect()
}

/// A generous VDPS length cap; the solver clamps it to each center's
/// largest worker `maxDP`, so passing this never over-generates.
pub const MAX_LEN_CAP: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use fta_data::{generate_syn, SynConfig};

    #[test]
    fn figure_has_standard_panels() {
        let fig = new_figure("figX", "test", "x");
        assert_eq!(fig.panels.len(), PANEL_METRICS.len());
        assert_eq!(fig.panels[0].metric, "payoff difference");
    }

    #[test]
    fn run_standard_records_all_algorithms() {
        let inst = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 6,
                n_tasks: 60,
                n_delivery_points: 12,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            1,
        );
        let mut fig = new_figure("figX", "test", "x");
        let opts = RunnerOptions::fast_test();
        run_standard_at(&mut fig, 1.0, &[inst], VdpsConfig::pruned(1.0, 3), &opts);
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 4);
            for s in &panel.series {
                assert_eq!(s.points.len(), 1);
            }
        }
    }
}

//! Figures 8–9 — effect of the number of delivery points |DP|.

use crate::experiments::common::{new_figure, run_standard_at, MAX_LEN_CAP};
use crate::params::{Dataset, RunnerOptions, GM_DPS_SWEEP, SYN_DPS_SWEEP};
use crate::report::FigureData;
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// Runs the |DP| experiment on the given dataset. For GM this varies the
/// `k` of the k-means preprocessing step; for SYN it varies the number of
/// uniformly drawn delivery points.
#[must_use]
pub fn run(dataset: Dataset, opts: &RunnerOptions) -> FigureData {
    let (id, sweep): (&str, Vec<usize>) = match dataset {
        Dataset::Gm => ("fig8", GM_DPS_SWEEP.to_vec()),
        Dataset::Syn => ("fig9", SYN_DPS_SWEEP.to_vec()),
    };
    let title = format!("Effect of |DP| ({})", dataset.name());
    let mut fig = new_figure(id, &title, "|DP|");
    let vdps = VdpsConfig::pruned(opts.default_epsilon(dataset), MAX_LEN_CAP);

    for &n_dps in &sweep {
        let instances: Vec<Instance> = opts
            .seeds
            .iter()
            .map(|&seed| match dataset {
                Dataset::Gm => {
                    let cfg = fta_data::GMissionConfig {
                        n_delivery_points: n_dps,
                        ..opts.gm_base()
                    };
                    fta_data::generate_gmission(&cfg, seed)
                }
                Dataset::Syn => {
                    let cfg = fta_data::SynConfig {
                        n_delivery_points: opts.scale_count(n_dps),
                        ..opts.syn_base()
                    };
                    fta_data::generate_syn(&cfg, seed)
                }
            })
            .collect();
        run_standard_at(&mut fig, n_dps as f64, &instances, vdps, opts);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_sweep_produces_all_points() {
        let fig = run(Dataset::Gm, &RunnerOptions::fast_test());
        assert_eq!(fig.id, "fig8");
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 4);
            for s in &panel.series {
                assert_eq!(s.points.len(), GM_DPS_SWEEP.len());
            }
        }
    }

    #[test]
    fn average_payoff_declines_with_more_delivery_points() {
        // Figures 8(b)/9(b): with more delivery points each one holds fewer
        // tasks, so per-route reward (and thus average payoff) drops.
        let fig = run(Dataset::Gm, &RunnerOptions::fast_test());
        let avg = fig.panel_of("average payoff").unwrap();
        for s in &avg.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(
                last < first,
                "{}: average payoff should fall as |DP| grows ({first} → {last})",
                s.label
            );
        }
    }
}

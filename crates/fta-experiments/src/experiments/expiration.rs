//! Figure 10 — effect of the expiration time e (SYN only).

use crate::experiments::common::{new_figure, run_standard_at, MAX_LEN_CAP};
use crate::params::{RunnerOptions, SYN_EXPIRY_SWEEP};
use crate::report::FigureData;
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// Runs the expiration-time experiment on the synthetic dataset.
#[must_use]
pub fn run(opts: &RunnerOptions) -> FigureData {
    let mut fig = new_figure("fig10", "Effect of e (SYN)", "e (h)");
    let vdps = VdpsConfig::pruned(
        opts.default_epsilon(crate::params::Dataset::Syn),
        MAX_LEN_CAP,
    );

    for &expiry in &SYN_EXPIRY_SWEEP {
        let instances: Vec<Instance> = opts
            .seeds
            .iter()
            .map(|&seed| {
                let cfg = fta_data::SynConfig {
                    expiry,
                    ..opts.syn_base()
                };
                fta_data::generate_syn(&cfg, seed)
            })
            .collect();
        run_standard_at(&mut fig, expiry, &instances, vdps, opts);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RunnerOptions;

    fn small_opts() -> RunnerOptions {
        RunnerOptions::fast_test()
    }

    #[test]
    fn sweep_produces_all_points() {
        let fig = run(&small_opts());
        assert_eq!(fig.id, "fig10");
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 4);
            for s in &panel.series {
                assert_eq!(s.points.len(), SYN_EXPIRY_SWEEP.len());
            }
        }
    }

    #[test]
    fn relaxed_deadlines_increase_average_payoff() {
        // Figure 10(b): larger e → more reachable delivery points → higher
        // average payoffs (until saturation).
        let fig = run(&small_opts());
        let avg = fig.panel_of("average payoff").unwrap();
        for s in &avg.series {
            let first = s.points.first().unwrap().1;
            let max = s
                .points
                .iter()
                .map(|&(_, y)| y)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                max >= first,
                "{}: payoff should not peak at the tightest deadline",
                s.label
            );
        }
    }
}

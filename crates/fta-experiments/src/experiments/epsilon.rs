//! Figures 2–3 — effect of the distance threshold ε.
//!
//! Sweeps ε over Table I's grid while everything else stays at the
//! defaults, running MPTA/GTA/FGT/IEGT with ε-constrained pruning, and —
//! when [`RunnerOptions::include_unpruned`] — the `-W` variants without
//! pruning (whose metrics are constant in ε and plot as horizontal
//! reference lines, exactly as in the paper's figures).

use crate::experiments::common::{
    default_instances, new_figure, record, run_algorithm, run_standard_at, MAX_LEN_CAP,
};
use crate::measure::standard_algorithms;
use crate::params::{Dataset, RunnerOptions, GM_EPSILON_SWEEP, SYN_EPSILON_SWEEP};
use crate::report::{FigureData, Panel};
use fta_vdps::VdpsConfig;

/// Metric name of the VDPS generation-work panel added to the ε figures:
/// one series per work counter, plotted against ε, showing how the
/// distance-constrained pruning strategy trades generation work for
/// effectiveness (the dominant cost in the paper's Figures 2–3 CPU-time
/// panels).
pub const GEN_PANEL: &str =
    "vdps generation work [series: states, extensions, dist-pruned, ddl-pruned, vdps]";

/// Runs the ε experiment on the given dataset.
#[must_use]
pub fn run(dataset: Dataset, opts: &RunnerOptions) -> FigureData {
    let (id, sweep): (&str, Vec<f64>) = match dataset {
        Dataset::Gm => ("fig2", GM_EPSILON_SWEEP.to_vec()),
        Dataset::Syn => ("fig3", SYN_EPSILON_SWEEP.to_vec()),
    };
    let title = format!("Effect of ε ({})", dataset.name());
    let mut fig = new_figure(id, &title, "epsilon (km)");
    fig.panels.push(Panel::new(GEN_PANEL));

    let instances = default_instances(dataset, opts);

    // Unpruned `-W` reference lines: computed once, replicated across ε.
    if opts.include_unpruned {
        for (label, algorithm) in standard_algorithms() {
            let (result, spread) = run_algorithm(
                &instances,
                &format!("{label}-W"),
                algorithm,
                VdpsConfig::unpruned(MAX_LEN_CAP),
                opts,
            );
            for &eps in &sweep {
                record(&mut fig, eps, &result, &spread);
            }
        }
    }

    for &eps in &sweep {
        let results = run_standard_at(
            &mut fig,
            eps,
            &instances,
            VdpsConfig::pruned(eps, MAX_LEN_CAP),
            opts,
        );
        // Generation happens before the assignment algorithm runs, so the
        // work counters are identical for all four algorithms — surface
        // them once per ε from the first result.
        let g = results[0].gen_stats;
        let gen_panel = fig.panels.last_mut().expect("gen panel was added");
        for (series, value) in [
            ("states", g.states),
            ("extensions", g.extensions_tried),
            ("dist-pruned", g.pruned_by_distance),
            ("ddl-pruned", g.pruned_by_deadline),
            ("vdps", g.vdps_count),
        ] {
            gen_panel.push_point(series, eps, value as f64);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_data::GMissionConfig;

    fn tiny_opts() -> RunnerOptions {
        RunnerOptions::fast_test()
    }

    #[test]
    fn gm_epsilon_figure_has_all_series_and_points() {
        // The GM default (200 tasks, 40 workers, 100 dps) is test-sized.
        let mut opts = tiny_opts();
        opts.include_unpruned = true;
        opts.seeds = vec![3];
        let fig = run(Dataset::Gm, &opts);
        assert_eq!(fig.id, "fig2");
        let diff = fig.panel_of("payoff difference").unwrap();
        // 4 pruned + 4 unpruned series.
        assert_eq!(diff.series.len(), 8);
        for s in &diff.series {
            assert_eq!(s.points.len(), GM_EPSILON_SWEEP.len(), "{}", s.label);
        }
    }

    #[test]
    fn unpruned_series_are_constant_in_epsilon() {
        let mut opts = tiny_opts();
        opts.include_unpruned = true;
        opts.seeds = vec![5];
        let fig = run(Dataset::Gm, &opts);
        let diff = fig.panel_of("payoff difference").unwrap();
        let w = diff.series_of("GTA-W").unwrap();
        let first = w.points[0].1;
        assert!(w.points.iter().all(|&(_, y)| (y - first).abs() < 1e-12));
    }

    #[test]
    fn pruned_effectiveness_converges_to_unpruned_at_large_epsilon() {
        // The paper's headline pruning claim: at ε at/above the default the
        // pruned algorithms match the unpruned ones' effectiveness.
        let mut opts = tiny_opts();
        opts.include_unpruned = true;
        opts.seeds = vec![11];
        let fig = run(Dataset::Gm, &opts);
        let avg = fig.panel_of("average payoff").unwrap();
        let last = |label: &str| avg.series_of(label).unwrap().points.last().unwrap().1;
        let pruned = last("GTA");
        let unpruned = last("GTA-W");
        assert!(
            (pruned - unpruned).abs() <= 0.25 * unpruned.abs().max(0.1),
            "GTA at max ε ({pruned}) should approach GTA-W ({unpruned})"
        );
    }

    #[test]
    fn generation_work_panel_tracks_pruning() {
        let mut opts = tiny_opts();
        opts.seeds = vec![7];
        let fig = run(Dataset::Gm, &opts);
        let panel = fig.panel_of(GEN_PANEL).unwrap();
        for series in ["states", "extensions", "dist-pruned", "ddl-pruned", "vdps"] {
            let s = panel.series_of(series).unwrap();
            assert_eq!(s.points.len(), GM_EPSILON_SWEEP.len(), "{series}");
        }
        // A larger ε admits every hop a smaller ε admits, so the VDPS pool
        // can only grow along the sweep.
        let vdps = panel.series_of("vdps").unwrap();
        for w in vdps.points.windows(2) {
            assert!(w[1].1 >= w[0].1, "vdps count must grow with ε: {vdps:?}");
        }
    }

    // The GMissionConfig import asserts the GM default is test-sized.
    #[test]
    fn gm_default_is_small_enough_for_tests() {
        let cfg = GMissionConfig::default();
        assert!(cfg.n_tasks <= 200 && cfg.n_workers <= 40);
    }
}

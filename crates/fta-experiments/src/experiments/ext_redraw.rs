//! Extension experiment `ext3` — IEGT redraw-policy ablation.
//!
//! Algorithm 3 lets a below-average worker redraw "a VDPS with a higher
//! payoff" uniformly at random. Two alternatives suggest themselves: the
//! *minimal* strict improvement (cautious evolution that avoids
//! overshooting the population average) and the *best* available strategy
//! (greedy evolution). This ablation compares all three on fairness,
//! average payoff, and rounds to equilibrium across the |W| sweep.

use crate::experiments::common::MAX_LEN_CAP;
use crate::measure::{average_results, measure, AlgoResult};
use crate::params::{Dataset, RunnerOptions, GM_WORKERS_SWEEP};
use crate::report::{FigureData, Panel};
use fta_algorithms::{Algorithm, IegtConfig, RedrawPolicy};
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// The policies compared, with their series labels.
pub const POLICIES: [(&str, RedrawPolicy); 3] = [
    ("uniform", RedrawPolicy::UniformBetter),
    ("minimal", RedrawPolicy::MinimalBetter),
    ("best", RedrawPolicy::BestAvailable),
];

/// Runs the redraw-policy ablation on the GM dataset.
#[must_use]
pub fn run(opts: &RunnerOptions) -> FigureData {
    let mut fig = FigureData::new("ext3", "IEGT redraw-policy ablation (GM)", "|W|");
    fig.panels = vec![
        Panel::new("payoff difference"),
        Panel::new("average payoff"),
        Panel::new("rounds to convergence"),
    ];
    let vdps = VdpsConfig::pruned(opts.default_epsilon(Dataset::Gm), MAX_LEN_CAP);

    for &n_workers in &GM_WORKERS_SWEEP {
        let instances: Vec<Instance> = opts
            .seeds
            .iter()
            .map(|&seed| {
                fta_data::generate_gmission(
                    &fta_data::GMissionConfig {
                        n_workers,
                        ..opts.gm_base()
                    },
                    seed,
                )
            })
            .collect();
        for (label, policy) in POLICIES {
            let algorithm = Algorithm::Iegt(IegtConfig {
                redraw: policy,
                ..IegtConfig::default()
            });
            let results: Vec<AlgoResult> = instances
                .iter()
                .map(|inst| measure(inst, label, algorithm, vdps, opts.parallel))
                .collect();
            let rounds_mean = results
                .iter()
                .map(|r| r.trace.len().saturating_sub(1) as f64)
                .sum::<f64>()
                / results.len() as f64;
            let avg = average_results(&results);
            let x = n_workers as f64;
            fig.panels[0].push_point(label, x, avg.fairness.payoff_difference);
            fig.panels[1].push_point(label, x, avg.fairness.average_payoff);
            fig.panels[2].push_point(label, x, rounds_mean);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_policies_cover_the_sweep() {
        let fig = run(&RunnerOptions::fast_test());
        assert_eq!(fig.id, "ext3");
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), POLICIES.len());
            for s in &panel.series {
                assert_eq!(s.points.len(), GM_WORKERS_SWEEP.len());
            }
        }
    }

    #[test]
    fn greedy_redraw_pays_more_but_less_fairly_than_uniform() {
        // BestAvailable should reach at least the average payoff of the
        // uniform policy (each redraw grabs the most rewarding option).
        let mut opts = RunnerOptions::fast_test();
        opts.seeds = vec![3, 4];
        let fig = run(&opts);
        let avg = fig.panel_of("average payoff").unwrap();
        let total = |label: &str| -> f64 {
            avg.series_of(label)
                .unwrap()
                .points
                .iter()
                .map(|&(_, y)| y)
                .sum()
        };
        assert!(total("best") >= total("uniform") * 0.9);
    }
}

//! Figure 11 — effect of the maximum acceptable number of delivery points
//! per worker, maxDP (SYN only).

use crate::experiments::common::{new_figure, run_standard_at, MAX_LEN_CAP};
use crate::params::{RunnerOptions, SYN_MAXDP_SWEEP};
use crate::report::FigureData;
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// Runs the maxDP experiment on the synthetic dataset. The VDPS generator's
/// length cap follows `maxDP` automatically (the solver clamps it per
/// center), so larger values genuinely enlarge the strategy spaces.
#[must_use]
pub fn run(opts: &RunnerOptions) -> FigureData {
    let mut fig = new_figure("fig11", "Effect of maxDP (SYN)", "maxDP");
    let vdps = VdpsConfig::pruned(
        opts.default_epsilon(crate::params::Dataset::Syn),
        MAX_LEN_CAP,
    );

    for &max_dp in &SYN_MAXDP_SWEEP {
        let instances: Vec<Instance> = opts
            .seeds
            .iter()
            .map(|&seed| {
                let cfg = fta_data::SynConfig {
                    max_dp,
                    ..opts.syn_base()
                };
                fta_data::generate_syn(&cfg, seed)
            })
            .collect();
        run_standard_at(&mut fig, max_dp as f64, &instances, vdps, opts);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_points() {
        let fig = run(&RunnerOptions::fast_test());
        assert_eq!(fig.id, "fig11");
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 4);
            for s in &panel.series {
                assert_eq!(s.points.len(), SYN_MAXDP_SWEEP.len());
            }
        }
    }

    #[test]
    fn payoff_maximisers_gain_from_larger_max_dp() {
        // Figure 11(b): more acceptable delivery points → longer, more
        // rewarding routes for the payoff-seeking algorithms.
        let fig = run(&RunnerOptions::fast_test());
        let avg = fig.panel_of("average payoff").unwrap();
        for label in ["MPTA", "GTA"] {
            let s = avg.series_of(label).unwrap();
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(
                last >= first,
                "{label}: average payoff should not fall as maxDP grows ({first} → {last})"
            );
        }
    }
}

//! Extension experiment `ext4` — longitudinal fairness over a simulated day.
//!
//! The paper's motivation is worker retention: unfair payoffs drive
//! couriers away. A single assignment instant cannot show that, so this
//! experiment streams Poisson task arrivals through the `fta-sim` platform
//! simulator for a working day, running an assignment round every 15
//! simulated minutes, and sweeps the demand level (task arrivals per
//! hour). Reported per algorithm: the day's completion rate, the Gini
//! coefficient and min/max ratio of *cumulative earnings*, and worker
//! utilisation.

use crate::params::RunnerOptions;
use crate::report::{FigureData, Panel};
use fta_algorithms::{Algorithm, FgtConfig, IegtConfig};
use fta_sim::{run as simulate, DispatchPolicy, Scenario, ScenarioConfig, SimConfig};
use fta_vdps::VdpsConfig;

/// Demand sweep: mean task arrivals per hour.
pub const ARRIVAL_RATES: [f64; 4] = [40.0, 80.0, 120.0, 160.0];

/// Length of the simulated day, hours.
pub const HORIZON: f64 = 8.0;

/// Runs the simulated-day experiment.
#[must_use]
pub fn run(opts: &RunnerOptions) -> FigureData {
    let mut fig = FigureData::new(
        "ext4",
        "Simulated day: longitudinal earnings fairness",
        "arrivals per hour",
    );
    fig.panels = vec![
        Panel::new("completion rate"),
        Panel::new("earnings gini"),
        Panel::new("earnings min/max"),
        Panel::new("mean utilization"),
    ];

    let policies: [(&str, DispatchPolicy); 4] = [
        ("IMMED", DispatchPolicy::Immediate),
        ("GTA", DispatchPolicy::Batch(Algorithm::Gta)),
        (
            "FGT",
            DispatchPolicy::Batch(Algorithm::Fgt(FgtConfig::default())),
        ),
        (
            "IEGT",
            DispatchPolicy::Batch(Algorithm::Iegt(IegtConfig::default())),
        ),
    ];

    for &rate in &ARRIVAL_RATES {
        let scenarios: Vec<Scenario> = opts
            .seeds
            .iter()
            .map(|&seed| {
                Scenario::generate(
                    &ScenarioConfig {
                        n_workers: 24,
                        n_delivery_points: 48,
                        extent: 5.0,
                        arrival_rate: rate,
                        ..ScenarioConfig::default()
                    },
                    HORIZON,
                    seed,
                )
            })
            .collect();
        for (label, policy) in policies {
            let mut completion = 0.0;
            let mut gini = 0.0;
            let mut min_max = 0.0;
            let mut utilization = 0.0;
            for scenario in &scenarios {
                let metrics = simulate(
                    scenario,
                    &SimConfig {
                        horizon: HORIZON,
                        assignment_period: 0.25,
                        policy,
                        vdps: VdpsConfig::pruned(2.0, 3),
                        parallel: opts.parallel,
                        ..SimConfig::day(fta_algorithms::Algorithm::Gta)
                    },
                );
                let fairness = metrics.earnings_fairness();
                completion += metrics.completion_rate();
                gini += fairness.gini;
                min_max += fairness.min_max_ratio;
                utilization += metrics.mean_utilization();
            }
            let n = scenarios.len() as f64;
            fig.panels[0].push_point(label, rate, completion / n);
            fig.panels[1].push_point(label, rate, gini / n);
            fig.panels[2].push_point(label, rate, min_max / n);
            fig.panels[3].push_point(label, rate, utilization / n);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_cover_the_sweep() {
        let fig = run(&RunnerOptions::fast_test());
        assert_eq!(fig.id, "ext4");
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 4);
            for s in &panel.series {
                assert_eq!(s.points.len(), ARRIVAL_RATES.len());
            }
        }
    }

    #[test]
    fn rates_and_ratios_are_well_formed() {
        let fig = run(&RunnerOptions::fast_test());
        for metric in ["completion rate", "earnings gini", "earnings min/max"] {
            let panel = fig.panel_of(metric).unwrap();
            for s in &panel.series {
                for &(_, y) in &s.points {
                    assert!((0.0..=1.0).contains(&y), "{metric} out of range: {y}");
                }
            }
        }
    }
}

//! Extension experiment `ext1` — priority-aware fairness.
//!
//! The paper's conclusion names priority-aware fairness as a future-work
//! direction. This experiment gives every even-indexed worker priority 2
//! ("senior couriers") and every odd-indexed worker priority 1, then
//! compares plain FGT with the priority-aware PFGT across the |W| sweep:
//! PFGT should minimise the *priority-aware* payoff difference (payoffs
//! proportional to entitlement), which plain FGT — which equalises raw
//! payoffs — cannot.

use crate::experiments::common::MAX_LEN_CAP;
use crate::measure::{average_results, AlgoResult};
use crate::params::{Dataset, RunnerOptions, GM_WORKERS_SWEEP};
use crate::report::{FigureData, Panel};
use fta_algorithms::{solve, Algorithm, FgtConfig, PfgtConfig, PrioritySpec, SolveConfig};
use fta_core::priority::priority_payoff_difference;
use fta_core::{Instance, WorkerId};
use fta_vdps::VdpsConfig;

/// Two-tier priorities: even worker ids are "senior" (ρ = 2).
fn tiered(worker: WorkerId) -> f64 {
    if worker.0 % 2 == 0 {
        2.0
    } else {
        1.0
    }
}

/// Runs the priority-fairness experiment on the GM dataset.
#[must_use]
pub fn run(opts: &RunnerOptions) -> FigureData {
    let mut fig = FigureData::new(
        "ext1",
        "Priority-aware fairness: FGT vs PFGT (GM, two-tier priorities)",
        "|W|",
    );
    fig.panels = vec![
        Panel::new("priority payoff difference"),
        Panel::new("payoff difference"),
        Panel::new("average payoff"),
    ];
    let vdps = VdpsConfig::pruned(opts.default_epsilon(Dataset::Gm), MAX_LEN_CAP);

    for &n_workers in &GM_WORKERS_SWEEP {
        let instances: Vec<Instance> = opts
            .seeds
            .iter()
            .map(|&seed| {
                fta_data::generate_gmission(
                    &fta_data::GMissionConfig {
                        n_workers,
                        ..opts.gm_base()
                    },
                    seed,
                )
            })
            .collect();

        for (label, algorithm) in [
            ("FGT", Algorithm::Fgt(FgtConfig::default())),
            (
                "PFGT",
                Algorithm::Pfgt(PfgtConfig {
                    priorities: PrioritySpec::ByWorker(tiered),
                    ..PfgtConfig::default()
                }),
            ),
        ] {
            let results: Vec<(AlgoResult, f64)> = instances
                .iter()
                .map(|inst| {
                    let outcome = solve(
                        inst,
                        &SolveConfig {
                            vdps,
                            algorithm,
                            parallel: opts.parallel,
                            ..SolveConfig::new(Algorithm::Gta)
                        },
                    );
                    let workers: Vec<WorkerId> = inst.workers.iter().map(|w| w.id).collect();
                    let payoffs = outcome.assignment.payoffs(inst, &workers);
                    let priorities: Vec<f64> = workers.iter().map(|&w| tiered(w)).collect();
                    let pdiff = priority_payoff_difference(&payoffs, &priorities);
                    let result = AlgoResult {
                        label: label.to_owned(),
                        fairness: outcome.assignment.fairness(inst, &workers),
                        vdps_time_ms: outcome.vdps_time.as_secs_f64() * 1e3,
                        assign_time_ms: outcome.assign_time.as_secs_f64() * 1e3,
                        assigned_workers: outcome.assignment.assigned_workers(),
                        br_stats: outcome.br_stats,
                        gen_stats: outcome.gen_stats,
                        trace: outcome.trace,
                    };
                    (result, pdiff)
                })
                .collect();
            let averaged =
                average_results(&results.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>());
            let mean_pdiff = results.iter().map(|&(_, p)| p).sum::<f64>() / results.len() as f64;

            let x = n_workers as f64;
            fig.panels[0].push_point(label, x, mean_pdiff);
            fig.panels[1].push_point(label, x, averaged.fairness.payoff_difference);
            fig.panels[2].push_point(label, x, averaged.fairness.average_payoff);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_algorithms_cover_the_sweep() {
        let fig = run(&RunnerOptions::fast_test());
        assert_eq!(fig.id, "ext1");
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 2);
            for s in &panel.series {
                assert_eq!(s.points.len(), GM_WORKERS_SWEEP.len());
            }
        }
    }

    #[test]
    fn pfgt_wins_on_priority_fairness_in_aggregate() {
        let mut opts = RunnerOptions::fast_test();
        opts.seeds = vec![7, 8, 9];
        let fig = run(&opts);
        let panel = fig.panel_of("priority payoff difference").unwrap();
        let total = |label: &str| -> f64 {
            panel
                .series_of(label)
                .unwrap()
                .points
                .iter()
                .map(|&(_, y)| y)
                .sum()
        };
        let pfgt = total("PFGT");
        let fgt = total("FGT");
        assert!(
            pfgt <= fgt * 1.05 + 1e-9,
            "PFGT priority diff {pfgt} clearly worse than FGT {fgt}"
        );
    }
}

//! Table I — the experiment parameter grid.

use crate::params;
use std::fmt::Write as _;

/// Renders Table I (parameter grids with underlined defaults marked `*`).
#[must_use]
pub fn render() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I — Experiment Parameters ==");
    let _ = writeln!(out, "{:<46} Values (default *)", "Parameter");

    fn fmt_f64(values: &[f64], default: f64) -> String {
        values
            .iter()
            .map(|&v| {
                if (v - default).abs() < 1e-12 {
                    format!("{v}*")
                } else {
                    format!("{v}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }
    fn fmt_usize(values: &[usize], default: usize) -> String {
        values
            .iter()
            .map(|&v| {
                if v == default {
                    format!("{v}*")
                } else {
                    format!("{v}")
                }
            })
            .collect::<Vec<_>>()
            .join(", ")
    }

    let rows: Vec<(String, String)> = vec![
        (
            "Distance threshold eps (km) (GM)".into(),
            fmt_f64(&params::GM_EPSILON_SWEEP, params::GM_EPSILON_DEFAULT),
        ),
        (
            "Distance threshold eps (km) (SYN)".into(),
            fmt_f64(&params::SYN_EPSILON_SWEEP, params::SYN_EPSILON_DEFAULT),
        ),
        (
            "Number of tasks |S| (GM)".into(),
            fmt_usize(&params::GM_TASKS_SWEEP, 200),
        ),
        (
            "Number of tasks |S| (SYN)".into(),
            fmt_usize(&params::SYN_TASKS_SWEEP, 100_000),
        ),
        (
            "Number of workers |W| (GM)".into(),
            fmt_usize(&params::GM_WORKERS_SWEEP, 40),
        ),
        (
            "Number of workers |W| (SYN)".into(),
            fmt_usize(&params::SYN_WORKERS_SWEEP, 2_000),
        ),
        (
            "Number of delivery points |DP| (GM)".into(),
            fmt_usize(&params::GM_DPS_SWEEP, 100),
        ),
        (
            "Number of delivery points |DP| (SYN)".into(),
            fmt_usize(&params::SYN_DPS_SWEEP, 5_000),
        ),
        (
            "Expiration time of tasks e (h) (SYN)".into(),
            fmt_f64(&params::SYN_EXPIRY_SWEEP, 2.0),
        ),
        (
            "Maximum acceptable delivery point number maxDP (SYN)".into(),
            fmt_usize(&params::SYN_MAXDP_SWEEP, 3),
        ),
    ];
    for (name, values) in rows {
        let _ = writeln!(out, "{name:<46} {values}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_every_parameter_row() {
        let text = render();
        for needle in [
            "Distance threshold",
            "Number of tasks",
            "Number of workers",
            "Number of delivery points",
            "Expiration time",
            "maxDP",
        ] {
            assert!(text.contains(needle), "missing row: {needle}");
        }
    }

    #[test]
    fn defaults_are_starred() {
        let text = render();
        assert!(text.contains("0.6*"));
        assert!(text.contains("2*"));
        assert!(text.contains("200*"));
        assert!(text.contains("100000*"));
        assert!(text.contains("3*"));
    }
}

//! Figures 4–5 — effect of the number of tasks |S|.

use crate::experiments::common::{new_figure, run_standard_at, MAX_LEN_CAP};
use crate::params::{Dataset, RunnerOptions, GM_TASKS_SWEEP, SYN_TASKS_SWEEP};
use crate::report::FigureData;
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// Runs the |S| experiment on the given dataset. X values are quoted at the
/// paper's scale even when the runner scales SYN cardinalities down.
#[must_use]
pub fn run(dataset: Dataset, opts: &RunnerOptions) -> FigureData {
    let (id, sweep): (&str, Vec<usize>) = match dataset {
        Dataset::Gm => ("fig4", GM_TASKS_SWEEP.to_vec()),
        Dataset::Syn => ("fig5", SYN_TASKS_SWEEP.to_vec()),
    };
    let title = format!("Effect of |S| ({})", dataset.name());
    let mut fig = new_figure(id, &title, "|S|");
    let vdps = VdpsConfig::pruned(opts.default_epsilon(dataset), MAX_LEN_CAP);

    for &n_tasks in &sweep {
        let instances: Vec<Instance> = opts
            .seeds
            .iter()
            .map(|&seed| match dataset {
                Dataset::Gm => {
                    let cfg = fta_data::GMissionConfig {
                        n_tasks,
                        ..opts.gm_base()
                    };
                    fta_data::generate_gmission(&cfg, seed)
                }
                Dataset::Syn => {
                    let cfg = fta_data::SynConfig {
                        n_tasks: opts.scale_count(n_tasks),
                        ..opts.syn_base()
                    };
                    fta_data::generate_syn(&cfg, seed)
                }
            })
            .collect();
        run_standard_at(&mut fig, n_tasks as f64, &instances, vdps, opts);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_sweep_produces_all_points() {
        let fig = run(Dataset::Gm, &RunnerOptions::fast_test());
        assert_eq!(fig.id, "fig4");
        let diff = fig.panel_of("payoff difference").unwrap();
        assert_eq!(diff.series.len(), 4);
        for s in &diff.series {
            assert_eq!(s.points.len(), GM_TASKS_SWEEP.len());
        }
    }

    #[test]
    fn average_payoff_grows_with_tasks() {
        // More tasks per delivery point → more reward per unit travel. The
        // paper's Figures 4(b)/5(b) show the same increasing trend.
        let fig = run(Dataset::Gm, &RunnerOptions::fast_test());
        let avg = fig.panel_of("average payoff").unwrap();
        for s in &avg.series {
            let first = s.points.first().unwrap().1;
            let last = s.points.last().unwrap().1;
            assert!(
                last > first,
                "{}: average payoff should grow with |S| ({first} → {last})",
                s.label
            );
        }
    }
}

//! Figures 6–7 — effect of the number of workers |W|.

use crate::experiments::common::{new_figure, run_standard_at, MAX_LEN_CAP};
use crate::params::{Dataset, RunnerOptions, GM_WORKERS_SWEEP, SYN_WORKERS_SWEEP};
use crate::report::FigureData;
use fta_core::Instance;
use fta_vdps::VdpsConfig;

/// Runs the |W| experiment on the given dataset.
#[must_use]
pub fn run(dataset: Dataset, opts: &RunnerOptions) -> FigureData {
    let (id, sweep): (&str, Vec<usize>) = match dataset {
        Dataset::Gm => ("fig6", GM_WORKERS_SWEEP.to_vec()),
        Dataset::Syn => ("fig7", SYN_WORKERS_SWEEP.to_vec()),
    };
    let title = format!("Effect of |W| ({})", dataset.name());
    let mut fig = new_figure(id, &title, "|W|");
    let vdps = VdpsConfig::pruned(opts.default_epsilon(dataset), MAX_LEN_CAP);

    for &n_workers in &sweep {
        let instances: Vec<Instance> = opts
            .seeds
            .iter()
            .map(|&seed| match dataset {
                Dataset::Gm => {
                    let cfg = fta_data::GMissionConfig {
                        n_workers,
                        ..opts.gm_base()
                    };
                    fta_data::generate_gmission(&cfg, seed)
                }
                Dataset::Syn => {
                    let cfg = fta_data::SynConfig {
                        n_workers: opts.scale_count(n_workers),
                        ..opts.syn_base()
                    };
                    fta_data::generate_syn(&cfg, seed)
                }
            })
            .collect();
        run_standard_at(&mut fig, n_workers as f64, &instances, vdps, opts);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gm_sweep_produces_all_points() {
        let fig = run(Dataset::Gm, &RunnerOptions::fast_test());
        assert_eq!(fig.id, "fig6");
        for panel in &fig.panels {
            assert_eq!(panel.series.len(), 4);
            for s in &panel.series {
                assert_eq!(s.points.len(), GM_WORKERS_SWEEP.len());
            }
        }
    }

    #[test]
    fn fairness_ranking_holds_at_default() {
        // At |W| = 40 (GM default) the fairness-aware algorithms should be
        // at least as fair as the payoff maximisers, as in Figure 6(a).
        let fig = run(Dataset::Gm, &RunnerOptions::fast_test());
        let diff = fig.panel_of("payoff difference").unwrap();
        let at_default = |label: &str| {
            diff.series_of(label)
                .unwrap()
                .points
                .iter()
                .find(|&&(x, _)| (x - 40.0).abs() < 1e-9)
                .unwrap()
                .1
        };
        let iegt = at_default("IEGT");
        let mpta = at_default("MPTA");
        assert!(
            iegt <= mpta * 1.2 + 1e-9,
            "IEGT ({iegt}) should not be much less fair than MPTA ({mpta})"
        );
    }
}

//! Measuring one algorithm on one instance: effectiveness + CPU time.

use fta_algorithms::{solve, Algorithm, BestResponseStats, ConvergenceTrace, SolveConfig};
use fta_core::fairness::FairnessReport;
use fta_core::{Instance, WorkerId};
use fta_vdps::{GenerationStats, VdpsConfig};

/// The metrics the paper reports for one `(algorithm, instance)` pair.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    /// Algorithm label (e.g. `"IEGT"`, `"MPTA-W"`).
    pub label: String,
    /// Fairness metrics over the full worker population.
    pub fairness: FairnessReport,
    /// CPU time of VDPS generation, milliseconds.
    pub vdps_time_ms: f64,
    /// CPU time of the assignment algorithm proper, milliseconds.
    pub assign_time_ms: f64,
    /// Convergence trace (non-empty for FGT/IEGT).
    pub trace: ConvergenceTrace,
    /// Best-response work counters (all-zero for the baselines).
    pub br_stats: BestResponseStats,
    /// C-VDPS generation work/timing/parallelism counters, summed over
    /// centers (and over seeds when averaged).
    pub gen_stats: GenerationStats,
    /// Number of workers that received a non-null strategy.
    pub assigned_workers: usize,
}

impl AlgoResult {
    /// Total CPU time (generation + assignment), milliseconds — the
    /// paper's "CPU time" metric.
    #[must_use]
    pub fn cpu_time_ms(&self) -> f64 {
        self.vdps_time_ms + self.assign_time_ms
    }
}

/// Runs `algorithm` on `instance` with the given VDPS settings and collects
/// the paper's metrics.
#[must_use]
pub fn measure(
    instance: &Instance,
    label: &str,
    algorithm: Algorithm,
    vdps: VdpsConfig,
    parallel: bool,
) -> AlgoResult {
    let _span = fta_obs::span("experiments.measure");
    let _timer = fta_obs::hist_timer("experiments.measure_nanos");
    let outcome = solve(
        instance,
        &SolveConfig {
            vdps,
            algorithm,
            parallel,
            ..SolveConfig::new(algorithm)
        },
    );
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    let fairness = outcome.assignment.fairness(instance, &workers);
    AlgoResult {
        label: label.to_owned(),
        fairness,
        vdps_time_ms: outcome.vdps_time.as_secs_f64() * 1e3,
        assign_time_ms: outcome.assign_time.as_secs_f64() * 1e3,
        assigned_workers: outcome.assignment.assigned_workers(),
        br_stats: outcome.br_stats,
        gen_stats: outcome.gen_stats,
        trace: outcome.trace,
    }
}

/// Averages fairness metrics and CPU times over several results of the same
/// algorithm (one per seed). The trace of the first result is kept; work
/// counters are summed (they describe total work done, not a mean).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn average_results(results: &[AlgoResult]) -> AlgoResult {
    assert!(!results.is_empty(), "cannot average zero results");
    let n = results.len() as f64;
    let mean = |f: &dyn Fn(&AlgoResult) -> f64| results.iter().map(f).sum::<f64>() / n;
    AlgoResult {
        label: results[0].label.clone(),
        fairness: FairnessReport {
            payoff_difference: mean(&|r| r.fairness.payoff_difference),
            average_payoff: mean(&|r| r.fairness.average_payoff),
            gini: mean(&|r| r.fairness.gini),
            jain: mean(&|r| r.fairness.jain),
            min_max_ratio: mean(&|r| r.fairness.min_max_ratio),
        },
        vdps_time_ms: mean(&|r| r.vdps_time_ms),
        assign_time_ms: mean(&|r| r.assign_time_ms),
        assigned_workers: (results.iter().map(|r| r.assigned_workers).sum::<usize>()
            + results.len() / 2)
            / results.len(),
        br_stats: {
            let mut total = BestResponseStats::default();
            for r in results {
                total.merge(&r.br_stats);
            }
            total
        },
        gen_stats: {
            let mut total = GenerationStats::default();
            for r in results {
                total.merge(&r.gen_stats);
            }
            total
        },
        trace: results[0].trace.clone(),
    }
}

/// Cross-seed standard deviations of the four standard panel metrics
/// (population standard deviation; zero for a single seed).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResultSpread {
    /// Std of the payoff difference.
    pub payoff_difference: f64,
    /// Std of the average payoff.
    pub average_payoff: f64,
    /// Std of the total CPU time (ms).
    pub cpu_time_ms: f64,
    /// Std of the Jain index.
    pub jain: f64,
}

/// Computes the per-metric standard deviation of several same-algorithm
/// results (one per seed).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn spread_of(results: &[AlgoResult]) -> ResultSpread {
    assert!(!results.is_empty(), "cannot compute spread of zero results");
    let n = results.len() as f64;
    let std = |f: &dyn Fn(&AlgoResult) -> f64| -> f64 {
        let mean = results.iter().map(f).sum::<f64>() / n;
        let var = results.iter().map(|r| (f(r) - mean).powi(2)).sum::<f64>() / n;
        var.sqrt()
    };
    ResultSpread {
        payoff_difference: std(&|r| r.fairness.payoff_difference),
        average_payoff: std(&|r| r.fairness.average_payoff),
        cpu_time_ms: std(&|r| r.cpu_time_ms()),
        jain: std(&|r| r.fairness.jain),
    }
}

/// The paper's four evaluated algorithms with default configurations, in
/// the order its legends use: MPTA, GTA, FGT, IEGT.
#[must_use]
pub fn standard_algorithms() -> Vec<(&'static str, Algorithm)> {
    use fta_algorithms::{FgtConfig, IegtConfig};
    vec![
        (
            "MPTA",
            Algorithm::Mpta(fta_algorithms::mpta::MptaConfig::default()),
        ),
        ("GTA", Algorithm::Gta),
        ("FGT", Algorithm::Fgt(FgtConfig::default())),
        ("IEGT", Algorithm::Iegt(IegtConfig::default())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fta_data::{generate_syn, SynConfig};

    fn instance() -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 2,
                n_workers: 12,
                n_tasks: 150,
                n_delivery_points: 24,
                extent: 2.5,
                ..SynConfig::bench_scale()
            },
            9,
        )
    }

    #[test]
    fn measure_collects_all_metrics() {
        let inst = instance();
        let r = measure(
            &inst,
            "GTA",
            Algorithm::Gta,
            VdpsConfig::pruned(1.5, 3),
            false,
        );
        assert_eq!(r.label, "GTA");
        assert!(r.cpu_time_ms() >= r.vdps_time_ms);
        assert!(r.fairness.average_payoff >= 0.0);
        assert!(r.assigned_workers <= inst.workers.len());
    }

    #[test]
    fn averaging_is_arithmetic_mean() {
        let inst = instance();
        let a = measure(
            &inst,
            "GTA",
            Algorithm::Gta,
            VdpsConfig::pruned(1.5, 3),
            false,
        );
        let mut b = a.clone();
        b.fairness.payoff_difference = a.fairness.payoff_difference + 2.0;
        b.vdps_time_ms = a.vdps_time_ms + 4.0;
        let avg = average_results(&[a.clone(), b]);
        assert!(
            (avg.fairness.payoff_difference - (a.fairness.payoff_difference + 1.0)).abs() < 1e-12
        );
        assert!((avg.vdps_time_ms - (a.vdps_time_ms + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn spread_is_zero_for_identical_results_and_positive_otherwise() {
        let inst = instance();
        let a = measure(
            &inst,
            "GTA",
            Algorithm::Gta,
            VdpsConfig::pruned(1.5, 3),
            false,
        );
        let same = spread_of(&[a.clone(), a.clone()]);
        assert_eq!(same.payoff_difference, 0.0);
        assert_eq!(same.jain, 0.0);

        let mut b = a.clone();
        b.fairness.payoff_difference += 2.0;
        let diff = spread_of(&[a, b]);
        // Population std of {x, x+2} is 1.
        assert!((diff.payoff_difference - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_algorithms_match_paper_order() {
        let labels: Vec<&str> = standard_algorithms().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["MPTA", "GTA", "FGT", "IEGT"]);
    }
}

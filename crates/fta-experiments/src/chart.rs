//! ASCII line charts for terminal viewing of figure panels.
//!
//! `reproduce --charts` renders each panel of each figure as a small text
//! plot — enough to see the paper's trends (who is lowest, where curves
//! bend) without leaving the terminal. Series are drawn with distinct
//! marker letters; overlapping points show the earlier series' marker.

use crate::report::Panel;
use std::fmt::Write as _;

/// Marker letters assigned to series in order.
const MARKERS: &[u8] = b"ABCDEFGHIJKLMNOP";

/// Renders `panel` as an ASCII chart of the given plot-area size.
///
/// Returns an empty string for a panel with no points. `width`/`height`
/// are clamped to a sane minimum (16×4).
#[must_use]
pub fn render_chart(panel: &Panel, x_label: &str, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(4);

    let points: Vec<(f64, f64)> = panel
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Degenerate ranges render as a centered flat line.
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
        y_min -= 1.0;
    }

    let col = |x: f64| -> usize {
        (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize
    };
    let row = |y: f64| -> usize {
        let r = ((y - y_min) / (y_max - y_min)) * (height - 1) as f64;
        (height - 1) - r.round() as usize
    };

    let mut grid = vec![vec![b' '; width]; height];
    for (s_idx, series) in panel.series.iter().enumerate() {
        let marker = MARKERS[s_idx % MARKERS.len()];
        for &(x, y) in &series.points {
            if !(x.is_finite() && y.is_finite()) {
                continue;
            }
            let cell = &mut grid[row(y)][col(x)];
            if *cell == b' ' {
                *cell = marker;
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "  {} (y: {:.3} .. {:.3})", panel.metric, y_min, y_max);
    for (r, line) in grid.iter().enumerate() {
        let edge = if r == 0 || r == height - 1 { '+' } else { '|' };
        let _ = writeln!(out, "  {edge}{}{edge}", String::from_utf8_lossy(line));
    }
    let _ = writeln!(
        out,
        "   {x_label}: {:.3} .. {:.3}   legend: {}",
        x_min,
        x_max,
        panel
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}={}", MARKERS[i % MARKERS.len()] as char, s.label))
            .collect::<Vec<_>>()
            .join("  ")
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Panel;

    fn panel() -> Panel {
        let mut p = Panel::new("payoff difference");
        for (x, y) in [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)] {
            p.push_point("GTA", x, y);
        }
        for (x, y) in [(1.0, 3.0), (2.0, 2.0), (3.0, 1.0)] {
            p.push_point("IEGT", x, y);
        }
        p
    }

    #[test]
    fn chart_contains_axes_legend_and_markers() {
        let chart = render_chart(&panel(), "|S|", 30, 8);
        assert!(chart.contains("payoff difference"));
        assert!(chart.contains("A=GTA"));
        assert!(chart.contains("B=IEGT"));
        assert!(chart.contains('A'));
        assert!(chart.contains('B'));
        assert!(chart.contains("1.000 .. 3.000"));
    }

    #[test]
    fn increasing_series_slopes_up() {
        let mut p = Panel::new("m");
        p.push_point("S", 0.0, 0.0);
        p.push_point("S", 10.0, 10.0);
        let chart = render_chart(&p, "x", 20, 6);
        let rows: Vec<&str> = chart
            .lines()
            .filter(|l| l.trim_start().starts_with(['|', '+']))
            .collect();
        // Low value renders on the bottom row, high on the top row
        // (series "S" is the first series, so its marker is 'A').
        assert!(rows.first().unwrap().contains('A'));
        assert!(rows.last().unwrap().contains('A'));
        // And the top-row marker is to the right of the bottom-row one.
        let top = rows.first().unwrap().find('A').unwrap();
        let bottom = rows.last().unwrap().find('A').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn empty_panel_renders_nothing() {
        let p = Panel::new("empty");
        assert!(render_chart(&p, "x", 30, 8).is_empty());
    }

    #[test]
    fn constant_series_is_centered_not_crashing() {
        let mut p = Panel::new("flat");
        p.push_point("S", 1.0, 5.0);
        p.push_point("S", 2.0, 5.0);
        let chart = render_chart(&p, "x", 20, 6);
        assert!(chart.contains('A'));
        assert!(chart.contains("4.000 .. 6.000"));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let mut p = Panel::new("m");
        p.push_point("S", 1.0, f64::NAN);
        p.push_point("S", 2.0, 4.0);
        let chart = render_chart(&p, "x", 20, 6);
        assert!(chart.contains('A'));
    }

    #[test]
    fn dimensions_are_clamped() {
        let chart = render_chart(&panel(), "x", 1, 1);
        // 16 wide + 2 border chars + 2 indent.
        let plot_line = chart.lines().nth(1).unwrap();
        assert!(plot_line.len() >= 18);
    }
}

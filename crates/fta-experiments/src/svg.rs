//! SVG figure rendering and a self-contained HTML report.
//!
//! `reproduce --html report.html` writes one standalone page with every
//! regenerated figure drawn as an SVG line chart — the closest thing to
//! the paper's plots without pulling in a plotting dependency. The SVG is
//! assembled by hand: axes, ticks, one polyline per series, and a legend.

use crate::report::{FigureData, Panel};
use std::fmt::Write as _;

/// Chart colours (colour-blind-friendly palette), cycled per series.
const COLORS: [&str; 8] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
];

/// Plot geometry shared by the render functions.
const WIDTH: f64 = 420.0;
const HEIGHT: f64 = 260.0;
const MARGIN_LEFT: f64 = 58.0;
const MARGIN_RIGHT: f64 = 12.0;
const MARGIN_TOP: f64 = 26.0;
const MARGIN_BOTTOM: f64 = 40.0;

fn escape_xml(raw: &str) -> String {
    raw.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Formats an axis tick value compactly.
fn tick_label(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 10_000.0 {
        format!("{:.0}K", v / 1000.0)
    } else if v.abs() >= 100.0 || (v.fract() == 0.0 && v.abs() >= 1.0) {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders one panel as a standalone SVG element.
///
/// Returns an empty string for panels without finite points.
#[must_use]
pub fn render_svg(panel: &Panel, x_label: &str) -> String {
    let points: Vec<(f64, f64)> = panel
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if points.is_empty() {
        return String::new();
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (0.0_f64, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if (x_max - x_min).abs() < 1e-12 {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM;
    let sx = |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_TOP + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="11">"#
    );
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="16" text-anchor="middle" font-weight="bold">{}</text>"#,
        WIDTH / 2.0,
        escape_xml(&panel.metric)
    );

    // Axes.
    let x0 = MARGIN_LEFT;
    let y0 = MARGIN_TOP + plot_h;
    let _ = writeln!(
        svg,
        r##"<line x1="{x0}" y1="{MARGIN_TOP}" x2="{x0}" y2="{y0}" stroke="#333"/>"##
    );
    let _ = writeln!(
        svg,
        r##"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="#333"/>"##,
        MARGIN_LEFT + plot_w
    );

    // Ticks: 5 per axis.
    for i in 0..=4 {
        let f = f64::from(i) / 4.0;
        let xv = x_min + f * (x_max - x_min);
        let yv = y_min + f * (y_max - y_min);
        let _ = writeln!(
            svg,
            r##"<text x="{}" y="{}" text-anchor="middle" fill="#333">{}</text>"##,
            sx(xv),
            y0 + 16.0,
            tick_label(xv)
        );
        let _ = writeln!(
            svg,
            r##"<text x="{}" y="{}" text-anchor="end" fill="#333">{}</text>"##,
            x0 - 6.0,
            sy(yv) + 4.0,
            tick_label(yv)
        );
        let _ = writeln!(
            svg,
            r##"<line x1="{x0}" y1="{}" x2="{}" y2="{}" stroke="#ddd"/>"##,
            sy(yv),
            MARGIN_LEFT + plot_w,
            sy(yv)
        );
    }
    let _ = writeln!(
        svg,
        r##"<text x="{}" y="{}" text-anchor="middle" fill="#333">{}</text>"##,
        MARGIN_LEFT + plot_w / 2.0,
        HEIGHT - 6.0,
        escape_xml(x_label)
    );

    // Series polylines + legend.
    for (idx, series) in panel.series.iter().enumerate() {
        let color = COLORS[idx % COLORS.len()];
        let coords: Vec<String> = series
            .points
            .iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
            .collect();
        if coords.is_empty() {
            continue;
        }
        let _ = writeln!(
            svg,
            r#"<polyline fill="none" stroke="{color}" stroke-width="1.8" points="{}"/>"#,
            coords.join(" ")
        );
        for coord in &coords {
            let (cx, cy) = coord.split_once(',').expect("coords are x,y pairs");
            let _ = writeln!(
                svg,
                r#"<circle cx="{cx}" cy="{cy}" r="2.4" fill="{color}"/>"#
            );
        }
        // Legend entry.
        let lx = MARGIN_LEFT + 8.0 + (idx as f64 % 4.0) * 92.0;
        let ly = MARGIN_TOP + 10.0 + (idx as f64 / 4.0).floor() * 14.0;
        let _ = writeln!(
            svg,
            r#"<rect x="{lx}" y="{}" width="10" height="3" fill="{color}"/>"#,
            ly - 3.0
        );
        let _ = writeln!(
            svg,
            r##"<text x="{}" y="{ly}" fill="#333">{}</text>"##,
            lx + 14.0,
            escape_xml(&series.label)
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// Renders a standalone HTML report embedding every figure's panels.
#[must_use]
pub fn render_html(figures: &[FigureData]) -> String {
    let mut html = String::from(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         <title>FTA reproduction report</title>\
         <style>body{font-family:sans-serif;margin:24px;}\
         .figure{margin-bottom:28px;}\
         .panels{display:flex;flex-wrap:wrap;gap:12px;}</style>\
         </head><body>\n<h1>Fairness-aware Task Assignment — reproduction report</h1>\n",
    );
    for fig in figures {
        let _ = writeln!(
            html,
            "<div class=\"figure\"><h2>{} — {}</h2><div class=\"panels\">",
            escape_xml(&fig.id),
            escape_xml(&fig.title)
        );
        for panel in &fig.panels {
            let svg = render_svg(panel, &fig.x_label);
            if !svg.is_empty() {
                html.push_str(&svg);
            }
        }
        html.push_str("</div></div>\n");
    }
    html.push_str("</body></html>\n");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{FigureData, Panel};

    fn panel() -> Panel {
        let mut p = Panel::new("payoff difference");
        for (x, y) in [(100.0, 8.3), (200.0, 10.4), (300.0, 13.5)] {
            p.push_point("MPTA", x, y);
        }
        for (x, y) in [(100.0, 1.2), (200.0, 2.5), (300.0, 3.6)] {
            p.push_point("IEGT", x, y);
        }
        p
    }

    #[test]
    fn svg_contains_polylines_points_and_legend() {
        let svg = render_svg(&panel(), "|S|");
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains(">MPTA</text>"));
        assert!(svg.contains(">IEGT</text>"));
        assert!(svg.contains(">payoff difference</text>"));
        assert!(svg.contains(">|S|</text>"));
    }

    #[test]
    fn svg_y_axis_starts_at_zero_for_positive_data() {
        let svg = render_svg(&panel(), "x");
        // A y tick labelled 0 must appear (y_min clamped to 0).
        assert!(svg.contains(">0</text>"));
    }

    #[test]
    fn higher_values_render_higher_up() {
        let mut p = Panel::new("m");
        p.push_point("S", 0.0, 0.0);
        p.push_point("S", 1.0, 10.0);
        let svg = render_svg(&p, "x");
        let line = svg
            .lines()
            .find(|l| l.starts_with("<polyline"))
            .expect("one polyline");
        let pts: Vec<f64> = line
            .split("points=\"")
            .nth(1)
            .unwrap()
            .trim_end_matches("\"/>")
            .split([' ', ','])
            .map(|v| v.parse().unwrap())
            .collect();
        // (x0,y0) (x1,y1): the y of the larger value is smaller (SVG y
        // grows downwards).
        assert!(pts[3] < pts[1]);
        assert!(pts[2] > pts[0]);
    }

    #[test]
    fn empty_panel_renders_nothing() {
        assert!(render_svg(&Panel::new("void"), "x").is_empty());
    }

    #[test]
    fn xml_special_characters_are_escaped() {
        let mut p = Panel::new("a<b & \"c\"");
        p.push_point("s<1>", 1.0, 1.0);
        let svg = render_svg(&p, "x&y");
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(svg.contains("x&amp;y"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn html_report_embeds_all_figures() {
        let mut fig1 = FigureData::new("fig4", "Effect of |S| (GM)", "|S|");
        fig1.panels.push(panel());
        let mut fig2 = FigureData::new("fig5", "Effect of |S| (SYN)", "|S|");
        fig2.panels.push(panel());
        let html = render_html(&[fig1, fig2]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("fig4"));
        assert!(html.contains("fig5"));
        assert_eq!(html.matches("<svg").count(), 2);
        assert!(html.ends_with("</body></html>\n"));
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(tick_label(25_000.0), "25K");
        assert_eq!(tick_label(0.5), "0.50");
        assert_eq!(tick_label(100.0), "100");
        assert_eq!(tick_label(3.0), "3");
    }
}

//! # fta-experiments — the paper's evaluation, as a library
//!
//! One module per table/figure of the paper's Section VII:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`params`] | Table I (parameter grid, defaults, GM/SYN datasets) |
//! | [`experiments::fig1`] | Figure 1 worked example |
//! | [`experiments::epsilon`] | Figures 2–3 (effect of ε, with/without pruning) |
//! | [`experiments::tasks`] | Figures 4–5 (effect of \|S\|) |
//! | [`experiments::workers`] | Figures 6–7 (effect of \|W\|) |
//! | [`experiments::delivery_points`] | Figures 8–9 (effect of \|DP\|) |
//! | [`experiments::expiration`] | Figure 10 (effect of e, SYN) |
//! | [`experiments::maxdp`] | Figure 11 (effect of maxDP, SYN) |
//! | [`experiments::convergence`] | Figure 12 (convergence of FGT & IEGT) |
//!
//! Every experiment returns a [`report::FigureData`]: a set of panels
//! (payoff difference, average payoff, CPU time) each holding one series
//! per algorithm, renderable as aligned text tables or JSON. The
//! `fta-bench` crate's `reproduce` binary is a thin CLI over this library.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chart;
pub mod experiments;
pub mod measure;
pub mod params;
pub mod report;
pub mod svg;

pub use chart::render_chart;
pub use measure::{measure, AlgoResult};
pub use params::{Dataset, RunnerOptions};
pub use report::{FigureData, Panel, Series};
pub use svg::{render_html, render_svg};

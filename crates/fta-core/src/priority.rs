//! Priority-aware fairness (the paper's first future-work direction).
//!
//! The conclusion of the paper proposes introducing "additional descriptive
//! models of fairness, e.g., priority-aware fairness" into SC task
//! assignment, referencing the priority-awareness model of De Jong et al.
//! \[26\]. This module implements that extension: each worker carries a
//! positive *priority* (entitlement weight) — seniority, contractual tier,
//! vehicle capacity — and fairness is judged on **normalised payoffs**
//! `q_i = P_i / ρ_i`: a worker with twice the priority is entitled to twice
//! the payoff before any inequity is perceived.
//!
//! With all priorities equal to 1 every definition below reduces exactly to
//! the paper's unweighted counterpart, which the tests pin down.

use crate::fairness::payoff_difference;
use crate::iau::{IauEvaluator, IauParams, RivalSet};

/// Divides each payoff by its worker's priority.
///
/// # Panics
///
/// Panics if the slices differ in length or any priority is not strictly
/// positive.
#[must_use]
pub fn normalized_payoffs(payoffs: &[f64], priorities: &[f64]) -> Vec<f64> {
    assert_eq!(
        payoffs.len(),
        priorities.len(),
        "payoffs and priorities must be parallel"
    );
    payoffs
        .iter()
        .zip(priorities)
        .map(|(&p, &rho)| {
            assert!(
                rho.is_finite() && rho > 0.0,
                "priorities must be positive, got {rho}"
            );
            p / rho
        })
        .collect()
}

/// Priority-aware payoff difference: Equation 2 computed on normalised
/// payoffs. Zero iff every worker's payoff is exactly proportional to its
/// priority.
#[must_use]
pub fn priority_payoff_difference(payoffs: &[f64], priorities: &[f64]) -> f64 {
    payoff_difference(&normalized_payoffs(payoffs, priorities))
}

/// Priority-aware Inequity Aversion based Utility: Equation 5 evaluated in
/// normalised-payoff space. `own`/`own_priority` describe the deciding
/// worker; `others` are `(payoff, priority)` pairs of the rival workers.
#[must_use]
pub fn priority_iau(own: f64, own_priority: f64, others: &[(f64, f64)], params: IauParams) -> f64 {
    assert!(
        own_priority.is_finite() && own_priority > 0.0,
        "priorities must be positive, got {own_priority}"
    );
    let rival_q: Vec<f64> = others
        .iter()
        .map(|&(p, rho)| {
            assert!(rho.is_finite() && rho > 0.0, "priorities must be positive");
            p / rho
        })
        .collect();
    crate::iau::iau(own / own_priority, &rival_q, params)
}

/// Incremental priority-aware IAU evaluator: fixes the rivals' normalised
/// payoffs once, then evaluates candidates for one worker in `O(log n)`
/// each (the priority-aware analogue of [`IauEvaluator`]).
#[derive(Debug, Clone)]
pub struct PriorityIauEvaluator {
    inner: IauEvaluator,
    own_priority: f64,
}

impl PriorityIauEvaluator {
    /// Builds an evaluator for a worker with priority `own_priority`
    /// against rival `(payoff, priority)` pairs.
    ///
    /// # Panics
    ///
    /// Panics on non-positive priorities.
    #[must_use]
    pub fn new(own_priority: f64, others: &[(f64, f64)], params: IauParams) -> Self {
        assert!(
            own_priority.is_finite() && own_priority > 0.0,
            "priorities must be positive, got {own_priority}"
        );
        let rival_q: Vec<f64> = others
            .iter()
            .map(|&(p, rho)| {
                assert!(rho.is_finite() && rho > 0.0, "priorities must be positive");
                p / rho
            })
            .collect();
        Self {
            inner: IauEvaluator::new(&rival_q, params),
            own_priority,
        }
    }

    /// Evaluates the priority-aware IAU of a candidate raw payoff.
    #[must_use]
    pub fn eval(&self, own_payoff: f64) -> f64 {
        self.inner.eval(own_payoff / self.own_priority)
    }
}

/// Incremental priority-aware rival engine: a [`RivalSet`] living in
/// normalised-payoff space `q = P / ρ`.
///
/// The priority-aware analogue of [`RivalSet`] for best-response loops:
/// insertions and removals take the worker's raw `(payoff, priority)` pair
/// and store `payoff / priority`; [`PriorityRivalSet::eval`] evaluates the
/// priority-aware IAU of a candidate raw payoff.
///
/// Fairness statistics ([`PriorityRivalSet::payoff_difference`],
/// [`PriorityRivalSet::potential`]) are computed on normalised payoffs,
/// matching [`priority_payoff_difference`].
#[derive(Debug, Clone)]
pub struct PriorityRivalSet {
    inner: RivalSet,
}

impl PriorityRivalSet {
    /// Builds an empty engine.
    #[must_use]
    pub fn new(params: IauParams) -> Self {
        Self {
            inner: RivalSet::new(params),
        }
    }

    /// Number of workers currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether no workers are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Normalises a `(payoff, priority)` pair.
    ///
    /// # Panics
    ///
    /// Panics on non-positive priorities.
    fn q(payoff: f64, priority: f64) -> f64 {
        assert!(
            priority.is_finite() && priority > 0.0,
            "priorities must be positive, got {priority}"
        );
        payoff / priority
    }

    /// Adds a worker's normalised payoff. `O(log n)`.
    pub fn insert(&mut self, payoff: f64, priority: f64) {
        self.inner.insert(Self::q(payoff, priority));
    }

    /// Removes a worker's normalised payoff. `O(log n)`.
    pub fn remove(&mut self, payoff: f64, priority: f64) {
        self.inner.remove(Self::q(payoff, priority));
    }

    /// Priority-aware IAU of a candidate raw payoff for a worker with the
    /// given priority, against the stored rivals (the focal worker must
    /// have been removed first). `O(log n)`.
    #[must_use]
    pub fn eval(&self, own_payoff: f64, own_priority: f64) -> f64 {
        self.inner.eval(Self::q(own_payoff, own_priority))
    }

    /// Priority-aware payoff difference over the stored workers: Equation 2
    /// on normalised payoffs, matching [`priority_payoff_difference`].
    #[must_use]
    pub fn payoff_difference(&self) -> f64 {
        self.inner.payoff_difference()
    }

    /// Potential of the priority-normalised game (`Φ` on `q` values).
    #[must_use]
    pub fn potential(&self) -> f64 {
        self.inner.potential()
    }

    /// Mean normalised payoff.
    #[must_use]
    pub fn average(&self) -> f64 {
        self.inner.average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iau::iau;

    #[test]
    fn unit_priorities_reduce_to_unweighted_definitions() {
        let payoffs = [1.0, 4.0, 2.5];
        let ones = [1.0, 1.0, 1.0];
        assert_eq!(
            priority_payoff_difference(&payoffs, &ones),
            payoff_difference(&payoffs)
        );
        let params = IauParams::default();
        let others = [(4.0, 1.0), (2.5, 1.0)];
        assert!(
            (priority_iau(1.0, 1.0, &others, params) - iau(1.0, &[4.0, 2.5], params)).abs() < 1e-12
        );
    }

    #[test]
    fn proportional_payoffs_are_perfectly_priority_fair() {
        let priorities = [1.0, 2.0, 4.0];
        let payoffs = [3.0, 6.0, 12.0];
        assert_eq!(priority_payoff_difference(&payoffs, &priorities), 0.0);
        // …while the unweighted metric sees them as very unfair.
        assert!(payoff_difference(&payoffs) > 0.0);
    }

    #[test]
    fn equal_payoffs_are_priority_unfair_under_skewed_priorities() {
        let priorities = [1.0, 3.0];
        let payoffs = [2.0, 2.0];
        assert!(priority_payoff_difference(&payoffs, &priorities) > 0.0);
    }

    #[test]
    fn evaluator_matches_direct_formula() {
        let params = IauParams {
            alpha: 0.7,
            beta: 0.4,
        };
        let others = [(3.0, 1.5), (8.0, 4.0), (1.0, 0.5)];
        let eval = PriorityIauEvaluator::new(2.0, &others, params);
        for own in [0.0, 1.0, 4.0, 7.5, 20.0] {
            let direct = priority_iau(own, 2.0, &others, params);
            assert!((eval.eval(own) - direct).abs() < 1e-10, "own={own}");
        }
    }

    #[test]
    fn high_priority_workers_tolerate_higher_payoffs() {
        // With the same raw payoff and rivals, a higher-priority worker
        // perceives less advantageous inequity (lower guilt penalty).
        let params = IauParams::default();
        let others = [(2.0, 1.0), (2.0, 1.0)];
        let low = priority_iau(6.0, 1.0, &others, params);
        // Normalised utilities live on different scales, so compare the
        // *penalty* relative to the normalised payoff.
        let low_penalty = 6.0 / 1.0 - low;
        let high = priority_iau(6.0, 3.0, &others, params);
        let high_penalty = 6.0 / 3.0 - high;
        assert!(high_penalty < low_penalty);
    }

    #[test]
    fn priority_rival_set_matches_direct_formulas() {
        let params = IauParams {
            alpha: 0.7,
            beta: 0.4,
        };
        // Workers: (payoff, priority). Focal worker has priority 2.0.
        let others = [(3.0, 1.5), (8.0, 4.0), (1.0, 0.5)];
        let own_candidates = [0.0, 1.0, 4.0, 7.5, 20.0];
        let mut set = PriorityRivalSet::new(params);
        for &(p, rho) in &others {
            set.insert(p, rho);
        }
        for own in own_candidates {
            let direct = priority_iau(own, 2.0, &others, params);
            assert!((set.eval(own, 2.0) - direct).abs() < 1e-10, "own={own}");
        }
        // Fairness on normalised payoffs matches the batch definition once
        // the focal worker joins.
        set.insert(4.0, 2.0);
        let payoffs = [3.0, 8.0, 1.0, 4.0];
        let priorities = [1.5, 4.0, 0.5, 2.0];
        let want = priority_payoff_difference(&payoffs, &priorities);
        assert!((set.payoff_difference() - want).abs() < 1e-10);
        // Remove/insert cycles keep the statistics consistent.
        set.remove(8.0, 4.0);
        set.insert(8.0, 4.0);
        assert!((set.payoff_difference() - want).abs() < 1e-10);
        assert_eq!(set.len(), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn priority_rival_set_rejects_bad_priority() {
        let mut set = PriorityRivalSet::new(IauParams::default());
        set.insert(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_priority() {
        let _ = normalized_payoffs(&[1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn rejects_length_mismatch() {
        let _ = normalized_payoffs(&[1.0, 2.0], &[1.0]);
    }
}

//! Ergonomic instance construction.
//!
//! [`Instance::new`](crate::Instance::new) expects dense, pre-assigned ids —
//! fine for generators, tedious for hand-built scenarios. The builder
//! assigns ids in insertion order and returns handles to reference earlier
//! entities:
//!
//! ```
//! use fta_core::builder::InstanceBuilder;
//!
//! let mut b = InstanceBuilder::new(5.0); // 5 km/h
//! let dc = b.center(2.0, 2.0);
//! let _w1 = b.worker(1.0, 2.0, 3, dc);
//! let dp1 = b.delivery_point(3.0, 3.0, dc);
//! b.task(dp1, 2.5, 1.0);
//! let instance = b.build().expect("valid by construction");
//! assert_eq!(instance.workers.len(), 1);
//! assert_eq!(instance.tasks.len(), 1);
//! ```

use crate::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use crate::error::Result;
use crate::geometry::Point;
use crate::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use crate::instance::Instance;

/// Incrementally assembles an [`Instance`], assigning dense ids.
#[derive(Debug, Clone, Default)]
pub struct InstanceBuilder {
    centers: Vec<DistributionCenter>,
    workers: Vec<Worker>,
    delivery_points: Vec<DeliveryPoint>,
    tasks: Vec<SpatialTask>,
    speed: f64,
}

impl InstanceBuilder {
    /// Starts a builder with the uniform worker speed (km/h).
    #[must_use]
    pub fn new(speed: f64) -> Self {
        Self {
            speed,
            ..Self::default()
        }
    }

    /// Adds a distribution center at `(x, y)`; returns its id.
    pub fn center(&mut self, x: f64, y: f64) -> CenterId {
        let id = CenterId::from_index(self.centers.len());
        self.centers.push(DistributionCenter {
            id,
            location: Point::new(x, y),
        });
        id
    }

    /// Adds a worker at `(x, y)` serving `center`; returns its id.
    pub fn worker(&mut self, x: f64, y: f64, max_dp: usize, center: CenterId) -> WorkerId {
        let id = WorkerId::from_index(self.workers.len());
        self.workers.push(Worker {
            id,
            location: Point::new(x, y),
            max_dp,
            center,
        });
        id
    }

    /// Adds a delivery point at `(x, y)` belonging to `center`; returns its
    /// id.
    pub fn delivery_point(&mut self, x: f64, y: f64, center: CenterId) -> DeliveryPointId {
        let id = DeliveryPointId::from_index(self.delivery_points.len());
        self.delivery_points.push(DeliveryPoint {
            id,
            location: Point::new(x, y),
            center,
        });
        id
    }

    /// Adds a task delivered to `dp` with the given expiry (hours) and
    /// reward; returns its id.
    pub fn task(&mut self, dp: DeliveryPointId, expiry: f64, reward: f64) -> TaskId {
        let id = TaskId::from_index(self.tasks.len());
        self.tasks.push(SpatialTask {
            id,
            delivery_point: dp,
            expiry,
            reward,
        });
        id
    }

    /// Adds `count` identical tasks to `dp` (the paper's "a delivery point
    /// with |dp.S| tasks"); returns their ids.
    pub fn tasks(
        &mut self,
        dp: DeliveryPointId,
        count: usize,
        expiry: f64,
        reward: f64,
    ) -> Vec<TaskId> {
        (0..count).map(|_| self.task(dp, expiry, reward)).collect()
    }

    /// Validates and builds the instance.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (see
    /// [`Instance::validate`](crate::Instance::validate)): dangling
    /// references cannot occur with builder-made handles, but non-positive
    /// speed, zero `max_dp`, or invalid task fields are still caught.
    pub fn build(self) -> Result<Instance> {
        Instance::new(
            self.centers,
            self.workers,
            self.delivery_points,
            self.tasks,
            self.speed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FtaError;

    #[test]
    fn ids_are_assigned_in_insertion_order() {
        let mut b = InstanceBuilder::new(1.0);
        let c0 = b.center(0.0, 0.0);
        let c1 = b.center(5.0, 5.0);
        assert_eq!(c0, CenterId(0));
        assert_eq!(c1, CenterId(1));
        let w0 = b.worker(1.0, 0.0, 2, c0);
        let w1 = b.worker(4.0, 5.0, 3, c1);
        assert_eq!((w0, w1), (WorkerId(0), WorkerId(1)));
        let dp = b.delivery_point(0.0, 1.0, c0);
        let t0 = b.task(dp, 2.0, 1.0);
        let t1 = b.task(dp, 3.0, 1.5);
        assert_eq!((t0, t1), (TaskId(0), TaskId(1)));
        let inst = b.build().unwrap();
        assert_eq!(inst.centers.len(), 2);
        assert_eq!(inst.workers[1].center, CenterId(1));
    }

    #[test]
    fn bulk_tasks_share_parameters() {
        let mut b = InstanceBuilder::new(1.0);
        let c = b.center(0.0, 0.0);
        b.worker(0.0, 0.0, 1, c);
        let dp = b.delivery_point(1.0, 0.0, c);
        let ids = b.tasks(dp, 6, 2.5, 1.0);
        assert_eq!(ids.len(), 6);
        let inst = b.build().unwrap();
        let aggs = inst.dp_aggregates();
        assert_eq!(aggs[dp.index()].task_count, 6);
        assert_eq!(aggs[dp.index()].total_reward, 6.0);
    }

    #[test]
    fn invalid_fields_still_fail_validation() {
        let mut b = InstanceBuilder::new(0.0); // bad speed
        let c = b.center(0.0, 0.0);
        b.worker(0.0, 0.0, 1, c);
        assert!(matches!(
            b.build(),
            Err(FtaError::InvalidField { field: "speed", .. })
        ));
    }

    #[test]
    fn builder_reproduces_figure_1() {
        // The hand-built Figure 1 via the builder matches the canonical
        // constructor output.
        let mut b = InstanceBuilder::new(1.0);
        let dc = b.center(2.0, 2.0);
        b.worker(1.0, 2.0, 3, dc);
        b.worker(3.0, 1.0, 3, dc);
        let coords = [
            (3.0, 3.0),
            (4.0, 3.5),
            (4.2757, 2.4165),
            (3.0, 1.5),
            (3.7, 1.08),
        ];
        let counts = crate::fig1::TASK_COUNTS;
        for (i, &(x, y)) in coords.iter().enumerate() {
            let dp = b.delivery_point(x, y, dc);
            let expiry = if i == 0 { 2.5 } else { 6.0 };
            b.tasks(dp, counts[i], expiry, 1.0);
        }
        let built = b.build().unwrap();
        assert_eq!(built, crate::fig1::instance());
    }
}

//! A complete FTA problem instance and its per-center decomposition.

use crate::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use crate::error::{FtaError, Result};
use crate::ids::{CenterId, DeliveryPointId, WorkerId};
use serde::{Deserialize, Serialize};

/// A snapshot of the spatial-crowdsourcing platform at one assignment
/// instant: distribution centers, workers, delivery points, and the tasks to
/// be distributed.
///
/// Invariants (enforced by [`Instance::validate`], which every constructor
/// calls):
///
/// * all ids are dense (`workers[i].id == WorkerId(i)` and likewise for the
///   other entity vectors);
/// * every cross-reference (worker→center, delivery point→center,
///   task→delivery point) resolves;
/// * `speed > 0`, every `max_dp >= 1`, every task has a non-negative reward
///   and a finite, positive expiry.
///
/// The paper assumes a uniform worker speed (5 km/h in the experiments), so
/// speed is a property of the instance rather than of individual workers;
/// this is also what makes the center-origin VDPS precomputation of
/// Section IV sound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// All distribution centers, indexed by [`CenterId`].
    pub centers: Vec<DistributionCenter>,
    /// All workers, indexed by [`WorkerId`].
    pub workers: Vec<Worker>,
    /// All delivery points, indexed by [`DeliveryPointId`].
    pub delivery_points: Vec<DeliveryPoint>,
    /// All tasks, indexed by [`TaskId`](crate::ids::TaskId).
    pub tasks: Vec<SpatialTask>,
    /// Uniform worker speed in km/h.
    pub speed: f64,
}

/// Per-delivery-point aggregates derived from the task set.
///
/// The VDPS dynamic program only needs, per delivery point, the sum of task
/// rewards and the earliest task expiration (`dp.e` in the paper's
/// Equation 3), not the individual tasks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpAggregate {
    /// Number of tasks destined for this delivery point (`|dp.S|`).
    pub task_count: usize,
    /// Sum of the rewards of those tasks.
    pub total_reward: f64,
    /// Earliest expiration among those tasks (`dp.e`); `f64::INFINITY` when
    /// the delivery point has no tasks.
    pub earliest_expiry: f64,
}

/// The slice of an instance belonging to one distribution center.
///
/// Task assignment across distribution centers is independent (Section
/// VII-A), so algorithms operate on `CenterView`s, optionally in parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct CenterView {
    /// The center this view belongs to.
    pub center: CenterId,
    /// Workers serving this center.
    pub workers: Vec<WorkerId>,
    /// Task-bearing delivery points of this center (delivery points without
    /// tasks cannot contribute reward and are excluded).
    pub dps: Vec<DeliveryPointId>,
}

impl Instance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; see the type-level docs.
    pub fn new(
        centers: Vec<DistributionCenter>,
        workers: Vec<Worker>,
        delivery_points: Vec<DeliveryPoint>,
        tasks: Vec<SpatialTask>,
        speed: f64,
    ) -> Result<Self> {
        let instance = Self {
            centers,
            workers,
            delivery_points,
            tasks,
            speed,
        };
        instance.validate()?;
        Ok(instance)
    }

    /// Checks all instance invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; see the type-level docs.
    pub fn validate(&self) -> Result<()> {
        if !(self.speed.is_finite() && self.speed > 0.0) {
            return Err(FtaError::InvalidField {
                field: "speed",
                message: format!("must be finite and positive, got {}", self.speed),
            });
        }
        for (i, c) in self.centers.iter().enumerate() {
            if c.id.index() != i {
                return Err(FtaError::NonDenseId {
                    kind: "center",
                    position: i,
                    found: c.id.0,
                });
            }
            if !c.location.is_finite() {
                return Err(FtaError::InvalidField {
                    field: "location",
                    message: format!("{} has non-finite coordinates {:?}", c.id, c.location),
                });
            }
        }
        for (i, w) in self.workers.iter().enumerate() {
            if w.id.index() != i {
                return Err(FtaError::NonDenseId {
                    kind: "worker",
                    position: i,
                    found: w.id.0,
                });
            }
            if w.center.index() >= self.centers.len() {
                return Err(FtaError::UnknownCenter(w.center));
            }
            if w.max_dp == 0 {
                return Err(FtaError::InvalidField {
                    field: "max_dp",
                    message: format!("{} has maxDP = 0; must be at least 1", w.id),
                });
            }
            if !w.location.is_finite() {
                return Err(FtaError::InvalidField {
                    field: "location",
                    message: format!("{} has non-finite coordinates {:?}", w.id, w.location),
                });
            }
        }
        for (i, dp) in self.delivery_points.iter().enumerate() {
            if dp.id.index() != i {
                return Err(FtaError::NonDenseId {
                    kind: "delivery point",
                    position: i,
                    found: dp.id.0,
                });
            }
            if dp.center.index() >= self.centers.len() {
                return Err(FtaError::UnknownCenter(dp.center));
            }
            if !dp.location.is_finite() {
                return Err(FtaError::InvalidField {
                    field: "location",
                    message: format!("{} has non-finite coordinates {:?}", dp.id, dp.location),
                });
            }
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.id.index() != i {
                return Err(FtaError::NonDenseId {
                    kind: "task",
                    position: i,
                    found: t.id.0,
                });
            }
            if t.delivery_point.index() >= self.delivery_points.len() {
                return Err(FtaError::UnknownDeliveryPoint(t.delivery_point));
            }
            if !(t.reward.is_finite() && t.reward >= 0.0) {
                return Err(FtaError::InvalidField {
                    field: "reward",
                    message: format!("task {} has reward {}", t.id, t.reward),
                });
            }
            if !(t.expiry.is_finite() && t.expiry > 0.0) {
                return Err(FtaError::InvalidField {
                    field: "expiry",
                    message: format!("task {} has expiry {}", t.id, t.expiry),
                });
            }
        }
        Ok(())
    }

    /// Computes per-delivery-point aggregates (reward sum, earliest expiry).
    #[must_use]
    pub fn dp_aggregates(&self) -> Vec<DpAggregate> {
        let mut aggs = vec![
            DpAggregate {
                task_count: 0,
                total_reward: 0.0,
                earliest_expiry: f64::INFINITY,
            };
            self.delivery_points.len()
        ];
        for task in &self.tasks {
            let agg = &mut aggs[task.delivery_point.index()];
            agg.task_count += 1;
            agg.total_reward += task.reward;
            agg.earliest_expiry = agg.earliest_expiry.min(task.expiry);
        }
        aggs
    }

    /// Splits the instance into independent per-center subproblems.
    ///
    /// Delivery points with no tasks are excluded from the views: they carry
    /// zero reward, so no algorithm would ever route a worker through them.
    #[must_use]
    pub fn center_views(&self) -> Vec<CenterView> {
        let aggs = self.dp_aggregates();
        let mut views: Vec<CenterView> = self
            .centers
            .iter()
            .map(|c| CenterView {
                center: c.id,
                workers: Vec::new(),
                dps: Vec::new(),
            })
            .collect();
        for w in &self.workers {
            views[w.center.index()].workers.push(w.id);
        }
        for dp in &self.delivery_points {
            if aggs[dp.id.index()].task_count > 0 {
                views[dp.center.index()].dps.push(dp.id);
            }
        }
        views
    }

    /// Travel time between two locations at the instance's uniform speed.
    #[must_use]
    pub fn travel_time(&self, a: crate::geometry::Point, b: crate::geometry::Point) -> f64 {
        a.travel_time(b, self.speed)
    }

    /// Total number of tasks (`|S|`).
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Total reward available across all tasks.
    #[must_use]
    pub fn total_reward(&self) -> f64 {
        self.tasks.iter().map(|t| t.reward).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::ids::TaskId;

    fn tiny_instance() -> Instance {
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(1.0, 0.0),
                max_dp: 2,
                center: CenterId(0),
            }],
            vec![
                DeliveryPoint {
                    id: DeliveryPointId(0),
                    location: Point::new(0.0, 1.0),
                    center: CenterId(0),
                },
                DeliveryPoint {
                    id: DeliveryPointId(1),
                    location: Point::new(0.0, 2.0),
                    center: CenterId(0),
                },
            ],
            vec![
                SpatialTask {
                    id: TaskId(0),
                    delivery_point: DeliveryPointId(0),
                    expiry: 2.0,
                    reward: 1.0,
                },
                SpatialTask {
                    id: TaskId(1),
                    delivery_point: DeliveryPointId(0),
                    expiry: 1.0,
                    reward: 2.0,
                },
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn aggregates_sum_rewards_and_take_min_expiry() {
        let inst = tiny_instance();
        let aggs = inst.dp_aggregates();
        assert_eq!(aggs[0].task_count, 2);
        assert_eq!(aggs[0].total_reward, 3.0);
        assert_eq!(aggs[0].earliest_expiry, 1.0);
        // dp1 has no tasks.
        assert_eq!(aggs[1].task_count, 0);
        assert_eq!(aggs[1].total_reward, 0.0);
        assert!(aggs[1].earliest_expiry.is_infinite());
    }

    #[test]
    fn center_views_skip_taskless_dps() {
        let inst = tiny_instance();
        let views = inst.center_views();
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].workers, vec![WorkerId(0)]);
        assert_eq!(views[0].dps, vec![DeliveryPointId(0)]);
    }

    #[test]
    fn rejects_non_dense_worker_ids() {
        let mut inst = tiny_instance();
        inst.workers[0].id = WorkerId(7);
        assert!(matches!(
            inst.validate(),
            Err(FtaError::NonDenseId { kind: "worker", .. })
        ));
    }

    #[test]
    fn rejects_dangling_center_reference() {
        let mut inst = tiny_instance();
        inst.workers[0].center = CenterId(9);
        assert_eq!(inst.validate(), Err(FtaError::UnknownCenter(CenterId(9))));
    }

    #[test]
    fn rejects_nonpositive_speed() {
        let mut inst = tiny_instance();
        inst.speed = 0.0;
        assert!(matches!(
            inst.validate(),
            Err(FtaError::InvalidField { field: "speed", .. })
        ));
    }

    #[test]
    fn rejects_zero_max_dp() {
        let mut inst = tiny_instance();
        inst.workers[0].max_dp = 0;
        assert!(matches!(
            inst.validate(),
            Err(FtaError::InvalidField {
                field: "max_dp",
                ..
            })
        ));
    }

    #[test]
    fn rejects_negative_reward_and_nonpositive_expiry() {
        let mut inst = tiny_instance();
        inst.tasks[0].reward = -1.0;
        assert!(matches!(
            inst.validate(),
            Err(FtaError::InvalidField {
                field: "reward",
                ..
            })
        ));
        let mut inst = tiny_instance();
        inst.tasks[1].expiry = 0.0;
        assert!(matches!(
            inst.validate(),
            Err(FtaError::InvalidField {
                field: "expiry",
                ..
            })
        ));
    }

    #[test]
    fn rejects_dangling_task_delivery_point() {
        let mut inst = tiny_instance();
        inst.tasks[0].delivery_point = DeliveryPointId(42);
        assert_eq!(
            inst.validate(),
            Err(FtaError::UnknownDeliveryPoint(DeliveryPointId(42)))
        );
    }

    #[test]
    fn totals() {
        let inst = tiny_instance();
        assert_eq!(inst.task_count(), 2);
        assert_eq!(inst.total_reward(), 3.0);
    }

    #[test]
    fn travel_time_uses_instance_speed() {
        let inst = tiny_instance();
        let t = inst.travel_time(Point::new(0.0, 0.0), Point::new(0.0, 3.0));
        assert!((t - 3.0).abs() < 1e-12);
    }
}

//! Strongly-typed identifiers.
//!
//! Every entity in an [`Instance`](crate::Instance) is referenced by a dense
//! `u32` index wrapped in a newtype, so that a worker index can never be
//! confused with a delivery-point index at compile time. The indices are
//! *dense*: `WorkerId(i)` is the `i`-th element of `Instance::workers`, which
//! lets hot paths use plain `Vec` lookups instead of hash maps.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a dense `usize` index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds the identifier from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("entity index exceeds u32::MAX"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of a worker (`w` in the paper).
    WorkerId,
    "w"
);
define_id!(
    /// Identifier of a delivery point (`dp` in the paper).
    DeliveryPointId,
    "dp"
);
define_id!(
    /// Identifier of a spatial task (`s` in the paper).
    TaskId,
    "s"
);
define_id!(
    /// Identifier of a distribution center (`dc` in the paper).
    CenterId,
    "dc"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_index() {
        let id = WorkerId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, WorkerId(42));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(WorkerId(1).to_string(), "w1");
        assert_eq!(DeliveryPointId(3).to_string(), "dp3");
        assert_eq!(TaskId(7).to_string(), "s7");
        assert_eq!(CenterId(0).to_string(), "dc0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(DeliveryPointId(1) < DeliveryPointId(2));
    }

    #[test]
    fn from_u32_conversion() {
        let id: TaskId = 9u32.into();
        assert_eq!(id.index(), 9);
    }
}

//! Fairness metrics over worker payoff vectors.
//!
//! The paper's unfairness measure is the mean pairwise absolute payoff
//! difference `P_dif` (Equation 2). This module additionally provides the
//! Gini coefficient, Jain's fairness index, and the min–max ratio — the
//! "additional descriptive models of fairness" the paper names as future
//! work — which the experiment harness reports alongside `P_dif` as
//! cross-checks.

use serde::{Deserialize, Serialize};

/// Mean pairwise absolute difference of `payoffs` (Equation 2):
///
/// `P_dif = Σ_{i≠j} |P_i − P_j| / (|W| (|W|−1))`.
///
/// Computed in `O(n log n)` by sorting: for sorted values,
/// `Σ_{i<j} (p_j − p_i) = Σ_k (2k − n + 1) p_(k)`, and ordered pairs double
/// that sum. Returns `0.0` for fewer than two workers (a single worker
/// cannot be treated unfairly relative to anyone).
///
/// ```
/// use fta_core::fairness::payoff_difference;
///
/// // The paper's Figure 1: greedy payoffs (2.80, 2.09) → difference 0.71.
/// let diff = payoff_difference(&[2.80, 2.09]);
/// assert!((diff - 0.71).abs() < 1e-9);
/// assert_eq!(payoff_difference(&[3.0, 3.0, 3.0]), 0.0);
/// ```
#[must_use]
pub fn payoff_difference(payoffs: &[f64]) -> f64 {
    let n = payoffs.len();
    if n < 2 {
        return 0.0;
    }
    let mut sorted = payoffs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let nf = n as f64;
    let sum: f64 = sorted
        .iter()
        .enumerate()
        .map(|(k, &p)| (2.0 * k as f64 - nf + 1.0) * p)
        .sum();
    2.0 * sum / (nf * (nf - 1.0))
}

/// Arithmetic mean of `payoffs`; `0.0` when empty.
#[must_use]
pub fn average_payoff(payoffs: &[f64]) -> f64 {
    if payoffs.is_empty() {
        return 0.0;
    }
    payoffs.iter().sum::<f64>() / payoffs.len() as f64
}

/// Gini coefficient of `payoffs` in `[0, 1]`; `0.0` means perfect equality.
///
/// Defined as the mean pairwise difference divided by twice the mean.
/// Returns `0.0` when the mean is zero (all payoffs zero) or fewer than two
/// workers are present.
#[must_use]
pub fn gini(payoffs: &[f64]) -> f64 {
    let mean = average_payoff(payoffs);
    if mean <= 0.0 || payoffs.len() < 2 {
        return 0.0;
    }
    // payoff_difference already averages over ordered pairs n(n-1), which is
    // the "mean absolute difference" with the pair-exclusion convention; the
    // standard Gini uses n² pairs, so rescale.
    let n = payoffs.len() as f64;
    payoff_difference(payoffs) * (n - 1.0) / n / (2.0 * mean)
}

/// Jain's fairness index `(Σp)² / (n Σp²)` in `(0, 1]`; `1.0` means perfect
/// equality. Returns `1.0` for an empty or all-zero vector (vacuously fair).
#[must_use]
pub fn jain_index(payoffs: &[f64]) -> f64 {
    if payoffs.is_empty() {
        return 1.0;
    }
    let sum: f64 = payoffs.iter().sum();
    let sum_sq: f64 = payoffs.iter().map(|p| p * p).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (payoffs.len() as f64 * sum_sq)
}

/// Ratio of the minimum to the maximum payoff in `[0, 1]`; `1.0` means
/// perfect equality. Returns `1.0` when empty or when the maximum is zero.
#[must_use]
pub fn min_max_ratio(payoffs: &[f64]) -> f64 {
    let max = payoffs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = payoffs.iter().copied().fold(f64::INFINITY, f64::min);
    if payoffs.is_empty() || max <= 0.0 {
        return 1.0;
    }
    (min / max).max(0.0)
}

/// A bundle of all fairness metrics for one assignment, as reported by the
/// experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// `P_dif` (Equation 2) — the paper's primary metric.
    pub payoff_difference: f64,
    /// Average worker payoff — the paper's secondary metric.
    pub average_payoff: f64,
    /// Gini coefficient (extension).
    pub gini: f64,
    /// Jain's fairness index (extension).
    pub jain: f64,
    /// Min/max payoff ratio (extension).
    pub min_max_ratio: f64,
}

impl FairnessReport {
    /// Computes all metrics from a payoff vector.
    #[must_use]
    pub fn from_payoffs(payoffs: &[f64]) -> Self {
        Self {
            payoff_difference: payoff_difference(payoffs),
            average_payoff: average_payoff(payoffs),
            gini: gini(payoffs),
            jain: jain_index(payoffs),
            min_max_ratio: min_max_ratio(payoffs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_payoff_difference(payoffs: &[f64]) -> f64 {
        let n = payoffs.len();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    sum += (payoffs[i] - payoffs[j]).abs();
                }
            }
        }
        sum / (n * (n - 1)) as f64
    }

    #[test]
    fn matches_naive_pairwise_definition() {
        let cases: &[&[f64]] = &[
            &[1.0, 2.0],
            &[3.0, 1.0, 2.0],
            &[0.0, 0.0, 0.0],
            &[2.8, 2.09, 1.4, 3.3],
            &[5.0],
            &[],
        ];
        for payoffs in cases {
            let fast = payoff_difference(payoffs);
            let naive = naive_payoff_difference(payoffs);
            assert!(
                (fast - naive).abs() < 1e-10,
                "mismatch on {payoffs:?}: {fast} vs {naive}"
            );
        }
    }

    #[test]
    fn figure_1_payoff_differences() {
        // Greedy assignment of Figure 1: payoffs 2.80 and 2.09 → diff 0.71.
        let d = payoff_difference(&[2.80, 2.09]);
        assert!((d - 0.71).abs() < 1e-9);
        // Fair assignment: payoffs differ by 0.26.
        let d = payoff_difference(&[2.55, 2.29]);
        assert!((d - 0.26).abs() < 1e-9);
    }

    #[test]
    fn equal_payoffs_are_perfectly_fair() {
        let p = [2.5, 2.5, 2.5, 2.5];
        assert_eq!(payoff_difference(&p), 0.0);
        assert_eq!(gini(&p), 0.0);
        assert!((jain_index(&p) - 1.0).abs() < 1e-12);
        assert!((min_max_ratio(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_payoff_is_mean() {
        assert!((average_payoff(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(average_payoff(&[]), 0.0);
    }

    #[test]
    fn gini_of_total_inequality_approaches_one() {
        // One worker takes everything; with n workers Gini = (n-1)/n.
        let mut p = vec![0.0; 10];
        p[0] = 100.0;
        assert!((gini(&p) - 0.9).abs() < 1e-9);
    }

    #[test]
    fn jain_of_one_hot_vector_is_one_over_n() {
        let mut p = vec![0.0; 4];
        p[2] = 7.0;
        assert!((jain_index(&p) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_max_ratio_handles_zeros() {
        assert_eq!(min_max_ratio(&[0.0, 2.0]), 0.0);
        assert_eq!(min_max_ratio(&[0.0, 0.0]), 1.0);
        assert_eq!(min_max_ratio(&[]), 1.0);
    }

    #[test]
    fn report_bundles_everything() {
        let p = [1.0, 3.0];
        let r = FairnessReport::from_payoffs(&p);
        assert!((r.payoff_difference - 2.0).abs() < 1e-12);
        assert!((r.average_payoff - 2.0).abs() < 1e-12);
        assert!((r.min_max_ratio - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn metrics_are_permutation_invariant() {
        let a = [1.0, 4.0, 2.0, 8.0];
        let b = [8.0, 1.0, 2.0, 4.0];
        assert_eq!(payoff_difference(&a), payoff_difference(&b));
        assert_eq!(gini(&a), gini(&b));
        assert_eq!(jain_index(&a), jain_index(&b));
    }

    #[test]
    fn metrics_scale_properties() {
        // P_dif is 1-homogeneous; Gini/Jain are scale invariant.
        let p = [1.0, 2.0, 5.0];
        let scaled: Vec<f64> = p.iter().map(|x| x * 3.0).collect();
        assert!((payoff_difference(&scaled) - 3.0 * payoff_difference(&p)).abs() < 1e-9);
        assert!((gini(&scaled) - gini(&p)).abs() < 1e-12);
        assert!((jain_index(&scaled) - jain_index(&p)).abs() < 1e-12);
    }
    #[test]
    fn nan_payoff_does_not_panic() {
        // NaN payoffs must flow through every fairness metric without
        // panicking; the results are NaN (or NaN-free where the NaN entry
        // never enters the formula), never a crash.
        let p = [1.0, f64::NAN, 3.0];
        let _ = payoff_difference(&p);
        let _ = gini(&p);
        let _ = jain_index(&p);
        let _ = min_max_ratio(&p);
        let _ = FairnessReport::from_payoffs(&p);
    }
}

//! Geo-shard partitioning: grouping distribution centers into shards.
//!
//! The paper's per-center game decomposition makes the distribution
//! center the natural unit of parallel work — each center's VDPS pool
//! and equilibrium loop is independent of every other center's. A
//! *shard* is a group of centers solved together: the scheduling,
//! memory-locality, and attribution unit of the scale-out layer in
//! `fta-algorithms`.
//!
//! Two pluggable partitioners are provided:
//!
//! * [`ShardBy::Hash`] — stateless splitmix64 hash of the center id.
//!   Uniform in expectation, oblivious to geometry; the right default
//!   when centers are homogeneous.
//! * [`ShardBy::Geo`] — deterministic k-means over center locations
//!   (farthest-point seeding + Lloyd iterations, no RNG), so each shard
//!   is a spatially compact group of centers. Geo proximity correlates
//!   with shared road segments and similar task densities, which keeps a
//!   shard's working set coherent.
//!
//! Both partitioners are pure functions of the center list: the same
//! centers always produce the same [`ShardPlan`], which is what lets the
//! sharded solver guarantee bit-identical results to the sequential
//! solve (the plan only *groups* work; it never reorders the merge).

use crate::entities::DistributionCenter;
use crate::ids::CenterId;

/// How centers are grouped into shards. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardBy {
    /// Splitmix64 hash of the center id, modulo the shard count.
    #[default]
    Hash,
    /// Deterministic k-means over center locations (k = shard count).
    Geo,
}

impl ShardBy {
    /// The CLI-facing name of this partitioner.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShardBy::Hash => "hash",
            ShardBy::Geo => "geo",
        }
    }
}

impl std::str::FromStr for ShardBy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(ShardBy::Hash),
            "geo" => Ok(ShardBy::Geo),
            other => Err(format!("unknown shard partitioner '{other}' (hash|geo)")),
        }
    }
}

/// A deterministic assignment of every center to a shard.
///
/// Built by [`ShardPlan::build`]; the shard count is clamped to
/// `[1, centers.len()]` (an empty center list yields one empty shard).
/// Shards may be empty under [`ShardBy::Hash`] (hash collisions) — the
/// solver simply skips them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Center index → shard index.
    assignment: Vec<u32>,
    /// Shard index → center indices, each ascending.
    shards: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Partitions `centers` into (at most) `shards` shards.
    #[must_use]
    pub fn build(centers: &[DistributionCenter], shards: usize, by: ShardBy) -> Self {
        let k = shards.clamp(1, centers.len().max(1));
        let assignment: Vec<u32> = match by {
            ShardBy::Hash => centers
                .iter()
                .map(|c| (splitmix64(u64::from(c.id.0)) % k as u64) as u32)
                .collect(),
            ShardBy::Geo => kmeans_labels(centers, k),
        };
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &s) in assignment.iter().enumerate() {
            buckets[s as usize].push(i);
        }
        Self {
            assignment,
            shards: buckets,
        }
    }

    /// Number of shards in the plan (including empty ones).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard the given center belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the center index is out of range for the partitioned
    /// center list.
    #[must_use]
    pub fn shard_of(&self, center: CenterId) -> u32 {
        self.assignment[center.index()]
    }

    /// The (ascending) center indices of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shard_count()`.
    #[must_use]
    pub fn centers_of(&self, shard: usize) -> &[usize] {
        &self.shards[shard]
    }

    /// Percentage by which the heaviest shard exceeds the mean shard
    /// load, with per-center loads given by `weight`. `0.0` for a
    /// perfectly balanced (or empty) plan; `100.0` means the heaviest
    /// shard carries twice the mean.
    #[must_use]
    pub fn imbalance_pct(&self, weight: impl Fn(usize) -> u64) -> f64 {
        let loads: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.iter().map(|&c| weight(c)).sum())
            .collect();
        let total: u64 = loads.iter().sum();
        if total == 0 || loads.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        (max / mean - 1.0) * 100.0
    }
}

/// Sebastiano Vigna's splitmix64 finalizer: a full-avalanche mix, so
/// consecutive center ids land on unrelated shards.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic k-means over center locations: farthest-point seeding
/// (no RNG — the first centroid is the center nearest the global
/// centroid, each subsequent one the center farthest from all chosen so
/// far, ties to the lower index), then Lloyd iterations with
/// lowest-index tie-breaking, bounded at 32 rounds. An emptied cluster
/// is re-seeded with the point farthest from its own centroid, so every
/// geo shard is non-empty.
fn kmeans_labels(centers: &[DistributionCenter], k: usize) -> Vec<u32> {
    let n = centers.len();
    if n == 0 {
        return Vec::new();
    }
    if k <= 1 {
        return vec![0; n];
    }
    let pts: Vec<(f64, f64)> = centers
        .iter()
        .map(|c| (c.location.x, c.location.y))
        .collect();
    let d2 = |a: (f64, f64), b: (f64, f64)| {
        let dx = a.0 - b.0;
        let dy = a.1 - b.1;
        dx * dx + dy * dy
    };

    // Farthest-point seeding.
    let gx = pts.iter().map(|p| p.0).sum::<f64>() / n as f64;
    let gy = pts.iter().map(|p| p.1).sum::<f64>() / n as f64;
    let mut seeds: Vec<usize> = Vec::with_capacity(k);
    let first = argmin((0..n).map(|i| d2(pts[i], (gx, gy))));
    seeds.push(first);
    let mut nearest: Vec<f64> = (0..n).map(|i| d2(pts[i], pts[first])).collect();
    while seeds.len() < k {
        let next = argmax(nearest.iter().copied());
        seeds.push(next);
        for i in 0..n {
            nearest[i] = nearest[i].min(d2(pts[i], pts[next]));
        }
    }
    let mut centroids: Vec<(f64, f64)> = seeds.iter().map(|&i| pts[i]).collect();

    // Lloyd iterations.
    let mut labels = vec![0u32; n];
    for _ in 0..32 {
        let mut changed = false;
        for i in 0..n {
            let best = argmin(centroids.iter().map(|&c| d2(pts[i], c))) as u32;
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Recompute centroids; re-seed any emptied cluster with the
        // point farthest from its current centroid.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for i in 0..n {
            let s = &mut sums[labels[i] as usize];
            s.0 += pts[i].0;
            s.1 += pts[i].1;
            s.2 += 1;
        }
        for (c, &(sx, sy, cnt)) in centroids.iter_mut().zip(&sums) {
            if cnt > 0 {
                *c = (sx / cnt as f64, sy / cnt as f64);
            }
        }
        for c in 0..k {
            if sums[c].2 == 0 {
                let stray = argmax((0..n).map(|i| d2(pts[i], centroids[labels[i] as usize])));
                labels[stray] = c as u32;
                centroids[c] = pts[stray];
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    labels
}

/// Index of the smallest value (ties to the lower index).
fn argmin(vals: impl Iterator<Item = f64>) -> usize {
    let mut best = (0usize, f64::INFINITY);
    for (i, v) in vals.enumerate() {
        if v < best.1 {
            best = (i, v);
        }
    }
    best.0
}

/// Index of the largest value (ties to the lower index).
fn argmax(vals: impl Iterator<Item = f64>) -> usize {
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, v) in vals.enumerate() {
        if v > best.1 {
            best = (i, v);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn centers(locs: &[(f64, f64)]) -> Vec<DistributionCenter> {
        locs.iter()
            .enumerate()
            .map(|(i, &(x, y))| DistributionCenter {
                id: CenterId::from_index(i),
                location: Point::new(x, y),
            })
            .collect()
    }

    fn grid(n: usize) -> Vec<DistributionCenter> {
        let locs: Vec<(f64, f64)> = (0..n).map(|i| ((i % 7) as f64, (i / 7) as f64)).collect();
        centers(&locs)
    }

    #[test]
    fn every_center_lands_in_exactly_one_shard() {
        for by in [ShardBy::Hash, ShardBy::Geo] {
            let cs = grid(23);
            let plan = ShardPlan::build(&cs, 4, by);
            assert_eq!(plan.shard_count(), 4);
            let mut seen = vec![false; cs.len()];
            for s in 0..plan.shard_count() {
                for &c in plan.centers_of(s) {
                    assert!(!seen[c], "center {c} in two shards ({by:?})");
                    seen[c] = true;
                    assert_eq!(plan.shard_of(CenterId::from_index(c)), s as u32);
                }
            }
            assert!(seen.iter().all(|&s| s), "center missing from plan ({by:?})");
        }
    }

    #[test]
    fn shard_count_is_clamped_to_centers() {
        let cs = grid(3);
        for by in [ShardBy::Hash, ShardBy::Geo] {
            assert_eq!(ShardPlan::build(&cs, 100, by).shard_count(), 3);
            assert_eq!(ShardPlan::build(&cs, 0, by).shard_count(), 1);
        }
        let empty = ShardPlan::build(&[], 5, ShardBy::Hash);
        assert_eq!(empty.shard_count(), 1);
        assert!(empty.centers_of(0).is_empty());
    }

    #[test]
    fn plans_are_deterministic() {
        let cs = grid(40);
        for by in [ShardBy::Hash, ShardBy::Geo] {
            let a = ShardPlan::build(&cs, 6, by);
            let b = ShardPlan::build(&cs, 6, by);
            assert_eq!(a, b, "{by:?} plan must be a pure function of the centers");
        }
    }

    #[test]
    fn geo_shards_are_spatially_compact() {
        // Two well-separated clusters of centers: a 2-shard geo plan must
        // recover them exactly, while a hash plan (id-based) almost
        // certainly mixes them.
        let mut locs = Vec::new();
        for i in 0..8 {
            locs.push((i as f64 * 0.1, 0.0));
            locs.push((i as f64 * 0.1 + 100.0, 50.0));
        }
        let cs = centers(&locs);
        let plan = ShardPlan::build(&cs, 2, ShardBy::Geo);
        for s in 0..2 {
            let xs: Vec<f64> = plan
                .centers_of(s)
                .iter()
                .map(|&c| cs[c].location.x)
                .collect();
            assert!(!xs.is_empty(), "geo shards are never empty");
            let all_left = xs.iter().all(|&x| x < 50.0);
            let all_right = xs.iter().all(|&x| x >= 50.0);
            assert!(
                all_left || all_right,
                "geo shard {s} straddles both clusters: {xs:?}"
            );
        }
    }

    #[test]
    fn geo_shards_are_never_empty() {
        let cs = grid(17);
        let plan = ShardPlan::build(&cs, 9, ShardBy::Geo);
        for s in 0..plan.shard_count() {
            assert!(!plan.centers_of(s).is_empty(), "geo shard {s} is empty");
        }
    }

    #[test]
    fn imbalance_is_zero_when_balanced_and_positive_when_skewed() {
        let cs = grid(8);
        let plan = ShardPlan::build(&cs, 4, ShardBy::Geo);
        // Uniform unit weights over a plan that may already be uneven:
        // imbalance is non-negative by construction.
        assert!(plan.imbalance_pct(|_| 1) >= 0.0);
        // All weight on one center: the max shard is k times the mean.
        let skew = plan.imbalance_pct(|c| u64::from(c == 0));
        assert!((skew - 300.0).abs() < 1e-9, "expected 300%, got {skew}");
        assert_eq!(plan.imbalance_pct(|_| 0), 0.0);
    }

    #[test]
    fn shard_by_parses_and_names() {
        assert_eq!("hash".parse::<ShardBy>().unwrap(), ShardBy::Hash);
        assert_eq!("geo".parse::<ShardBy>().unwrap(), ShardBy::Geo);
        assert!("voronoi".parse::<ShardBy>().is_err());
        assert_eq!(ShardBy::Hash.name(), "hash");
        assert_eq!(ShardBy::Geo.name(), "geo");
    }
}

//! Delivery point sequences (Definition 5) and their validity (Definition 6).
//!
//! A [`Route`] is a concrete visiting order over a set of delivery points,
//! anchored at a distribution center. Because the paper's workers share a
//! uniform speed, everything about a route except the worker's initial leg
//! (worker location → distribution center) can be precomputed once per
//! center: the arrival offsets `t'(dp_i)` of Equation 3, the total reward,
//! and the *slack* — the largest initial-leg travel time for which every
//! task on the route still meets its deadline. A route is then valid for a
//! worker `w` (Definition 6) iff `c(w.l, dc.l) <= slack`.

use crate::error::{FtaError, Result};
use crate::ids::{CenterId, DeliveryPointId, WorkerId};
use crate::instance::{DpAggregate, Instance};
use serde::{Deserialize, Serialize};

/// A scheduled delivery point sequence for one distribution center.
///
/// Invariants (maintained by [`Route::build`]):
///
/// * `dps` is non-empty and duplicate-free;
/// * all delivery points belong to `center`;
/// * `arrival_offsets[i]` is the travel time from the distribution center to
///   `dps[i]` along the sequence (Equation 3's `t'`);
/// * `slack = min_i (e_i - arrival_offsets[i])`, where `e_i` is the earliest
///   task expiry at `dps[i]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    center: CenterId,
    dps: Vec<DeliveryPointId>,
    arrival_offsets: Vec<f64>,
    total_reward: f64,
    slack: f64,
}

impl Route {
    /// Builds a route visiting `dps` in the given order, starting from the
    /// distribution center `center`.
    ///
    /// # Errors
    ///
    /// * [`FtaError::InvalidField`] if `dps` is empty or contains duplicates;
    /// * [`FtaError::UnknownDeliveryPoint`] / [`FtaError::UnknownCenter`] on
    ///   dangling references;
    /// * [`FtaError::CenterMismatch`] if a delivery point belongs to a
    ///   different center (reported with a placeholder worker id of
    ///   `u32::MAX` since no worker is involved yet).
    pub fn build(
        instance: &Instance,
        aggregates: &[DpAggregate],
        center: CenterId,
        dps: Vec<DeliveryPointId>,
    ) -> Result<Self> {
        if dps.is_empty() {
            return Err(FtaError::InvalidField {
                field: "route.dps",
                message: "a route must visit at least one delivery point".into(),
            });
        }
        let dc = instance
            .centers
            .get(center.index())
            .ok_or(FtaError::UnknownCenter(center))?;

        // Duplicate detection: routes are short in practice (the paper's
        // maxDP is 3), so a quadratic scan over the visited prefix beats
        // allocating a per-call `seen` bitmap — the generators build tens
        // of thousands of routes per center and the zeroed allocation
        // dominated their emission phase. Long routes keep the bitmap.
        let mut seen = if dps.len() > 16 {
            Some(vec![false; instance.delivery_points.len()])
        } else {
            None
        };
        let mut arrival_offsets = Vec::with_capacity(dps.len());
        let mut total_reward = 0.0;
        let mut slack = f64::INFINITY;
        let mut t = 0.0;
        let mut prev = dc.location;
        for (i, &dp_id) in dps.iter().enumerate() {
            let dp = instance
                .delivery_points
                .get(dp_id.index())
                .ok_or(FtaError::UnknownDeliveryPoint(dp_id))?;
            if dp.center != center {
                return Err(FtaError::CenterMismatch {
                    worker: WorkerId(u32::MAX),
                    delivery_point: dp_id,
                });
            }
            let duplicate = match &mut seen {
                Some(seen) => std::mem::replace(&mut seen[dp_id.index()], true),
                None => dps[..i].contains(&dp_id),
            };
            if duplicate {
                return Err(FtaError::InvalidField {
                    field: "route.dps",
                    message: format!("delivery point {dp_id} appears twice"),
                });
            }
            t += instance.travel_time(prev, dp.location);
            prev = dp.location;
            arrival_offsets.push(t);
            let agg = &aggregates[dp_id.index()];
            total_reward += agg.total_reward;
            slack = slack.min(agg.earliest_expiry - t);
        }
        Ok(Self {
            center,
            dps,
            arrival_offsets,
            total_reward,
            slack,
        })
    }

    /// Assembles a route from a *trusted* visiting order and precomputed
    /// arrival offsets, skipping per-leg travel recomputation and all
    /// validation.
    ///
    /// The reward and slack folds run over `(dps, arrival_offsets)` with
    /// exactly the accumulation order [`Route::build`] uses, so given
    /// offsets that are bit-identical to what `build` would derive (the
    /// flat DP engine's arrivals are: same distance/speed expression,
    /// same left-to-right additions), the resulting route is
    /// bit-identical to the built one. Callers own the trust obligation:
    /// `dps` non-empty and duplicate-free, all points on `center`, and
    /// `arrival_offsets[i]` the center-origin arrival at `dps[i]`. The
    /// DP generators qualify by construction; everyone else should use
    /// [`Route::build`].
    #[must_use]
    pub fn from_trusted_offsets(
        center: CenterId,
        dps: Vec<DeliveryPointId>,
        arrival_offsets: Vec<f64>,
        aggregates: &[DpAggregate],
    ) -> Self {
        debug_assert!(!dps.is_empty(), "a route must visit at least one point");
        debug_assert_eq!(dps.len(), arrival_offsets.len());
        let mut total_reward = 0.0;
        let mut slack = f64::INFINITY;
        for (i, &dp_id) in dps.iter().enumerate() {
            let agg = &aggregates[dp_id.index()];
            total_reward += agg.total_reward;
            slack = slack.min(agg.earliest_expiry - arrival_offsets[i]);
        }
        Self {
            center,
            dps,
            arrival_offsets,
            total_reward,
            slack,
        }
    }

    /// Rebuilds this route's payload against new `aggregates`, keeping
    /// the visiting order and the already-computed arrival offsets.
    ///
    /// Bit-identical to [`Route::build`] over the same visiting order
    /// **provided the geometry is unchanged** — same center and
    /// delivery-point locations and the same speed, so every travel leg
    /// (and hence every arrival offset) would come out with the same
    /// bits. The caller asserts this; the delta updater uses it for
    /// entries whose deadlines or rewards changed while their stops did
    /// not move, skipping all per-leg distance work.
    #[must_use]
    pub fn retimed(&self, aggregates: &[DpAggregate]) -> Self {
        let mut total_reward = 0.0;
        let mut slack = f64::INFINITY;
        for (i, &dp_id) in self.dps.iter().enumerate() {
            let agg = &aggregates[dp_id.index()];
            total_reward += agg.total_reward;
            slack = slack.min(agg.earliest_expiry - self.arrival_offsets[i]);
        }
        Self {
            center: self.center,
            dps: self.dps.clone(),
            arrival_offsets: self.arrival_offsets.clone(),
            total_reward,
            slack,
        }
    }

    /// The distribution center this route starts from.
    #[must_use]
    pub fn center(&self) -> CenterId {
        self.center
    }

    /// The delivery points in visiting order.
    #[must_use]
    pub fn dps(&self) -> &[DeliveryPointId] {
        &self.dps
    }

    /// Number of delivery points visited.
    #[must_use]
    pub fn len(&self) -> usize {
        self.dps.len()
    }

    /// Always `false`: routes visit at least one delivery point.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Arrival offsets `t'(dp_i)` measured from the distribution center.
    #[must_use]
    pub fn arrival_offsets(&self) -> &[f64] {
        &self.arrival_offsets
    }

    /// Travel time from the distribution center to the final delivery point.
    #[must_use]
    pub fn travel_from_dc(&self) -> f64 {
        *self.arrival_offsets.last().expect("routes are never empty")
    }

    /// Sum of the rewards of all tasks on the route (`VDPS(w).S` rewards).
    #[must_use]
    pub fn total_reward(&self) -> f64 {
        self.total_reward
    }

    /// Largest worker→center travel time for which all deadlines still hold.
    #[must_use]
    pub fn slack(&self) -> f64 {
        self.slack
    }

    /// Whether the route is a valid *center-origin* sequence (C-VDPS): every
    /// delivery point is reached before its earliest task expiry when
    /// starting from the distribution center itself.
    #[must_use]
    pub fn is_center_origin_valid(&self) -> bool {
        self.slack >= 0.0
    }

    /// Whether the route is valid (Definition 6) for a worker whose travel
    /// time to the distribution center is `to_dc` hours.
    #[must_use]
    pub fn is_valid_for_travel(&self, to_dc: f64) -> bool {
        to_dc <= self.slack
    }

    /// Whether the route is valid (Definition 6) for the given worker,
    /// including the `maxDP` and same-center constraints of Definition 4.
    #[must_use]
    pub fn is_valid_for(&self, instance: &Instance, worker: WorkerId) -> bool {
        self.validate_for(instance, worker).is_ok()
    }

    /// Like [`Route::is_valid_for`] but reports *why* a route is invalid.
    ///
    /// # Errors
    ///
    /// * [`FtaError::UnknownWorker`] if the worker id is dangling;
    /// * [`FtaError::CenterMismatch`] if the worker serves another center;
    /// * [`FtaError::MaxDpExceeded`] if the route is longer than `maxDP`;
    /// * [`FtaError::DeadlineViolated`] if some task expires before arrival.
    pub fn validate_for(&self, instance: &Instance, worker: WorkerId) -> Result<()> {
        let w = instance
            .workers
            .get(worker.index())
            .ok_or(FtaError::UnknownWorker(worker))?;
        if w.center != self.center {
            return Err(FtaError::CenterMismatch {
                worker,
                delivery_point: self.dps[0],
            });
        }
        if self.dps.len() > w.max_dp {
            return Err(FtaError::MaxDpExceeded {
                worker,
                assigned: self.dps.len(),
                max_dp: w.max_dp,
            });
        }
        let dc = instance.centers[self.center.index()].location;
        let to_dc = instance.travel_time(w.location, dc);
        if to_dc > self.slack {
            // Identify the first delivery point whose deadline breaks.
            let aggs = instance.dp_aggregates();
            for (i, &dp) in self.dps.iter().enumerate() {
                let arrival = to_dc + self.arrival_offsets[i];
                let deadline = aggs[dp.index()].earliest_expiry;
                if arrival > deadline {
                    return Err(FtaError::DeadlineViolated {
                        worker,
                        delivery_point: dp,
                        arrival,
                        deadline,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use crate::geometry::Point;
    use crate::ids::TaskId;

    /// A line instance: dc at origin, dp0 at (1,0), dp1 at (2,0); worker at
    /// (-1, 0); speed 1 → travel times equal distances.
    fn line_instance() -> Instance {
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(-1.0, 0.0),
                max_dp: 2,
                center: CenterId(0),
            }],
            vec![
                DeliveryPoint {
                    id: DeliveryPointId(0),
                    location: Point::new(1.0, 0.0),
                    center: CenterId(0),
                },
                DeliveryPoint {
                    id: DeliveryPointId(1),
                    location: Point::new(2.0, 0.0),
                    center: CenterId(0),
                },
            ],
            vec![
                SpatialTask {
                    id: TaskId(0),
                    delivery_point: DeliveryPointId(0),
                    expiry: 3.0,
                    reward: 1.0,
                },
                SpatialTask {
                    id: TaskId(1),
                    delivery_point: DeliveryPointId(1),
                    expiry: 3.5,
                    reward: 2.0,
                },
            ],
            1.0,
        )
        .unwrap()
    }

    fn route(inst: &Instance, dps: &[u32]) -> Route {
        let aggs = inst.dp_aggregates();
        Route::build(
            inst,
            &aggs,
            CenterId(0),
            dps.iter().copied().map(DeliveryPointId).collect(),
        )
        .unwrap()
    }

    #[test]
    fn arrival_offsets_accumulate_leg_times() {
        let inst = line_instance();
        let r = route(&inst, &[0, 1]);
        assert_eq!(r.arrival_offsets(), &[1.0, 2.0]);
        assert_eq!(r.travel_from_dc(), 2.0);
        assert_eq!(r.total_reward(), 3.0);
    }

    #[test]
    fn slack_is_tightest_deadline_margin() {
        let inst = line_instance();
        let r = route(&inst, &[0, 1]);
        // dp0: 3.0 - 1.0 = 2.0; dp1: 3.5 - 2.0 = 1.5 → slack 1.5.
        assert!((r.slack() - 1.5).abs() < 1e-12);
        assert!(r.is_center_origin_valid());
    }

    #[test]
    fn order_affects_slack_and_travel() {
        let inst = line_instance();
        let r = route(&inst, &[1, 0]);
        // dc→dp1 = 2, dp1→dp0 = 1 → offsets [2, 3].
        assert_eq!(r.arrival_offsets(), &[2.0, 3.0]);
        // dp1: 3.5-2 = 1.5; dp0: 3.0-3.0 = 0 → slack 0.
        assert!((r.slack() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn worker_validity_depends_on_initial_leg() {
        let inst = line_instance();
        let r = route(&inst, &[0, 1]);
        // Worker is 1.0 from dc; slack 1.5 → valid.
        assert!(r.is_valid_for(&inst, WorkerId(0)));
        assert!(r.is_valid_for_travel(1.5));
        assert!(!r.is_valid_for_travel(1.5000001));
    }

    #[test]
    fn deadline_violation_is_reported_with_first_offender() {
        let mut inst = line_instance();
        inst.workers[0].location = Point::new(-2.0, 0.0); // to_dc = 2.0 > slack 1.5
        let r = route(&inst, &[0, 1]);
        match r.validate_for(&inst, WorkerId(0)) {
            Err(FtaError::DeadlineViolated { delivery_point, .. }) => {
                assert_eq!(delivery_point, DeliveryPointId(1))
            }
            other => panic!("expected deadline violation, got {other:?}"),
        }
    }

    #[test]
    fn max_dp_is_enforced() {
        let mut inst = line_instance();
        inst.workers[0].max_dp = 1;
        let r = route(&inst, &[0, 1]);
        assert!(matches!(
            r.validate_for(&inst, WorkerId(0)),
            Err(FtaError::MaxDpExceeded {
                assigned: 2,
                max_dp: 1,
                ..
            })
        ));
    }

    #[test]
    fn rejects_empty_and_duplicate_routes() {
        let inst = line_instance();
        let aggs = inst.dp_aggregates();
        assert!(Route::build(&inst, &aggs, CenterId(0), vec![]).is_err());
        assert!(Route::build(
            &inst,
            &aggs,
            CenterId(0),
            vec![DeliveryPointId(0), DeliveryPointId(0)]
        )
        .is_err());
    }

    #[test]
    fn rejects_foreign_center_delivery_point() {
        let mut inst = line_instance();
        inst.centers.push(DistributionCenter {
            id: CenterId(1),
            location: Point::new(10.0, 10.0),
        });
        inst.delivery_points[1].center = CenterId(1);
        let aggs = inst.dp_aggregates();
        let err = Route::build(
            &inst,
            &aggs,
            CenterId(0),
            vec![DeliveryPointId(0), DeliveryPointId(1)],
        )
        .unwrap_err();
        assert!(matches!(err, FtaError::CenterMismatch { .. }));
    }

    #[test]
    fn taskless_dp_contributes_infinite_slack() {
        let mut inst = line_instance();
        // Remove dp1's task: dp1 now taskless.
        inst.tasks.pop();
        let r = route(&inst, &[0, 1]);
        assert_eq!(r.total_reward(), 1.0);
        // Slack limited only by dp0's deadline: 3.0 - 1.0 = 2.0.
        assert!((r.slack() - 2.0).abs() < 1e-12);
    }
}

//! Worker payoff (Definition 7, Equation 1).
//!
//! The payoff of a worker `w` that performs the tasks of a valid delivery
//! point set via route `R` is the ratio between the sum of the task rewards
//! and the worker's total travel time — the arrival time at the *final*
//! delivery point, which includes the initial leg from the worker's location
//! to the distribution center.

use crate::ids::WorkerId;
use crate::instance::Instance;
use crate::route::Route;

/// Payoff for a route whose worker needs `to_dc` hours to reach the
/// distribution center.
///
/// Degenerate case: a total travel time of zero (worker standing on the
/// distribution center which coincides with every delivery point) yields
/// `f64::INFINITY` for positive reward and `0.0` for zero reward; workload
/// generators keep locations distinct so this never occurs in experiments.
#[must_use]
pub fn payoff_for_travel(route: &Route, to_dc: f64) -> f64 {
    payoff_from_parts(route.total_reward(), route.travel_from_dc(), to_dc)
}

/// [`payoff_for_travel`] over a route's already-extracted scalars —
/// the same expression, so columnar (struct-of-arrays) scans that carry
/// `(total_reward, travel_from_dc)` per route compute bit-identical
/// payoffs without touching the `Route` allocation.
#[must_use]
pub fn payoff_from_parts(total_reward: f64, travel_from_dc: f64, to_dc: f64) -> f64 {
    let total_time = to_dc + travel_from_dc;
    if total_time <= 0.0 {
        return if total_reward > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
    }
    total_reward / total_time
}

/// Payoff `P(w, VDPS(w))` of `worker` performing `route` (Equation 1).
///
/// # Panics
///
/// Panics if `worker` is not a worker of `instance`.
#[must_use]
pub fn worker_payoff(instance: &Instance, worker: WorkerId, route: &Route) -> f64 {
    let w = &instance.workers[worker.index()];
    let dc = instance.centers[route.center().index()].location;
    let to_dc = instance.travel_time(w.location, dc);
    payoff_for_travel(route, to_dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use crate::geometry::Point;
    use crate::ids::{CenterId, DeliveryPointId, TaskId};

    fn instance() -> Instance {
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(-2.0, 0.0),
                max_dp: 3,
                center: CenterId(0),
            }],
            vec![DeliveryPoint {
                id: DeliveryPointId(0),
                location: Point::new(3.0, 0.0),
                center: CenterId(0),
            }],
            vec![
                SpatialTask {
                    id: TaskId(0),
                    delivery_point: DeliveryPointId(0),
                    expiry: 10.0,
                    reward: 4.0,
                },
                SpatialTask {
                    id: TaskId(1),
                    delivery_point: DeliveryPointId(0),
                    expiry: 10.0,
                    reward: 6.0,
                },
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn payoff_is_reward_over_total_travel() {
        let inst = instance();
        let aggs = inst.dp_aggregates();
        let r = Route::build(&inst, &aggs, CenterId(0), vec![DeliveryPointId(0)]).unwrap();
        // Reward 10, travel 2 (worker→dc) + 3 (dc→dp) = 5 → payoff 2.
        let p = worker_payoff(&inst, WorkerId(0), &r);
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn payoff_for_travel_varies_with_initial_leg() {
        let inst = instance();
        let aggs = inst.dp_aggregates();
        let r = Route::build(&inst, &aggs, CenterId(0), vec![DeliveryPointId(0)]).unwrap();
        assert!((payoff_for_travel(&r, 0.0) - 10.0 / 3.0).abs() < 1e-12);
        assert!((payoff_for_travel(&r, 7.0) - 1.0).abs() < 1e-12);
        // Closer workers get strictly higher payoffs from the same route.
        assert!(payoff_for_travel(&r, 0.5) > payoff_for_travel(&r, 1.0));
    }

    #[test]
    fn degenerate_zero_travel_is_handled() {
        let mut inst = instance();
        inst.delivery_points[0].location = Point::new(0.0, 0.0);
        inst.workers[0].location = Point::new(0.0, 0.0);
        let aggs = inst.dp_aggregates();
        let r = Route::build(&inst, &aggs, CenterId(0), vec![DeliveryPointId(0)]).unwrap();
        assert_eq!(worker_payoff(&inst, WorkerId(0), &r), f64::INFINITY);
    }
}

//! Inequity Aversion based Utility (IAU, Equations 5–7).
//!
//! IAU is the utility function of the classical (FGT) game: a worker's raw
//! payoff minus penalties for *disadvantageous* inequity (`MP`, others
//! earning more) and *advantageous* inequity (`LP`, the worker earning more
//! than others), following Fehr–Schmidt inequity aversion.

use serde::{Deserialize, Serialize};

/// Weights of the two inequity penalties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IauParams {
    /// Weight `α` of the disadvantageous-inequity term `MP` (envy).
    pub alpha: f64,
    /// Weight `β` of the advantageous-inequity term `LP` (guilt).
    pub beta: f64,
}

impl Default for IauParams {
    /// The paper's experimental setting: `α = β = 0.5` (Section VII-A).
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
        }
    }
}

/// Total disadvantageous inequity `MP(w_i)` (Equation 6): the summed payoff
/// surplus of every worker earning more than `own`.
#[must_use]
pub fn disadvantageous_inequity(own: f64, others: &[f64]) -> f64 {
    others.iter().filter(|&&p| p > own).map(|p| p - own).sum()
}

/// Total advantageous inequity `LP(w_i)` (Equation 7): the summed payoff
/// surplus of `own` over every worker earning less.
#[must_use]
pub fn advantageous_inequity(own: f64, others: &[f64]) -> f64 {
    others.iter().filter(|&&p| p < own).map(|p| own - p).sum()
}

/// `IAU(w_i, VDPS(w_i))` (Equation 5) given the worker's own payoff, the
/// payoffs of all *other* workers, and the penalty weights.
///
/// `others` must not include the worker's own payoff; `|W| - 1` in the
/// normalisation is `others.len()`. With no other workers the utility is
/// just the raw payoff.
///
/// ```
/// use fta_core::iau::{iau, IauParams};
///
/// // Equal payoffs carry no inequity penalty…
/// assert_eq!(iau(2.0, &[2.0, 2.0], IauParams::default()), 2.0);
/// // …while being ahead of the pack costs guilt (β) utility.
/// assert!(iau(4.0, &[1.0, 1.0], IauParams::default()) < 4.0);
/// ```
#[must_use]
pub fn iau(own: f64, others: &[f64], params: IauParams) -> f64 {
    if others.is_empty() {
        return own;
    }
    let n_minus_1 = others.len() as f64;
    own - params.alpha / n_minus_1 * disadvantageous_inequity(own, others)
        - params.beta / n_minus_1 * advantageous_inequity(own, others)
}

/// Incremental IAU evaluator for a fixed set of other workers' payoffs.
///
/// Best-response search evaluates `IAU(p)` for many candidate own-payoffs
/// `p` against the *same* rivals. Sorting the rivals once and prefix-summing
/// makes each evaluation `O(log n)` instead of `O(n)`; with hundreds of
/// candidate strategies per worker per round this is the hot path of FGT.
#[derive(Debug, Clone)]
pub struct IauEvaluator {
    sorted: Vec<f64>,
    prefix: Vec<f64>,
    params: IauParams,
}

impl IauEvaluator {
    /// Builds an evaluator over the payoffs of the other workers.
    #[must_use]
    pub fn new(others: &[f64], params: IauParams) -> Self {
        let mut sorted = others.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &p in &sorted {
            acc += p;
            prefix.push(acc);
        }
        Self {
            sorted,
            prefix,
            params,
        }
    }

    /// Number of other workers.
    #[must_use]
    pub fn rivals(&self) -> usize {
        self.sorted.len()
    }

    /// Evaluates `IAU(own)` against the fixed rival payoffs.
    #[must_use]
    pub fn eval(&self, own: f64) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return own;
        }
        // k = number of rivals with payoff strictly below `own`.
        let k = self.sorted.partition_point(|&p| p < own);
        let below_sum = self.prefix[k];
        let above_sum = self.prefix[n] - self.prefix[k];
        // Rivals equal to `own` contribute zero to both terms; treating the
        // `>= own` block as "above" is safe because (p - own) = 0 for ties.
        let mp = above_sum - (n - k) as f64 * own;
        let lp = k as f64 * own - below_sum;
        let n_minus_1 = n as f64;
        own - self.params.alpha / n_minus_1 * mp - self.params.beta / n_minus_1 * lp
    }
}

/// One node of the [`RivalSet`] order-statistic treap: a distinct payoff
/// value with its multiplicity, plus subtree aggregates.
#[derive(Debug, Clone)]
struct Node {
    /// The distinct payoff value this node stores.
    value: f64,
    /// How many copies of `value` the set holds.
    copies: i64,
    /// Treap heap priority (max-heap).
    priority: u64,
    /// Total copies in this subtree (including this node's).
    count: i64,
    /// Total payoff sum in this subtree (including this node's copies).
    sum: f64,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

fn subtree_count(node: &Option<Box<Node>>) -> i64 {
    node.as_ref().map_or(0, |n| n.count)
}

fn subtree_sum(node: &Option<Box<Node>>) -> f64 {
    node.as_ref().map_or(0.0, |n| n.sum)
}

impl Node {
    fn leaf(value: f64, priority: u64) -> Box<Self> {
        Box::new(Self {
            value,
            copies: 1,
            priority,
            count: 1,
            sum: value,
            left: None,
            right: None,
        })
    }

    /// Recomputes this node's subtree aggregates from its children.
    fn pull(&mut self) {
        self.count = self.copies + subtree_count(&self.left) + subtree_count(&self.right);
        self.sum =
            self.value * self.copies as f64 + subtree_sum(&self.left) + subtree_sum(&self.right);
    }
}

/// Rotates `n`'s left child up; both touched nodes are re-aggregated.
fn rotate_right(mut n: Box<Node>) -> Box<Node> {
    let mut l = n.left.take().expect("rotate_right requires a left child");
    n.left = l.right.take();
    n.pull();
    l.right = Some(n);
    l.pull();
    l
}

/// Rotates `n`'s right child up; both touched nodes are re-aggregated.
fn rotate_left(mut n: Box<Node>) -> Box<Node> {
    let mut r = n.right.take().expect("rotate_left requires a right child");
    n.right = r.left.take();
    n.pull();
    r.left = Some(n);
    r.pull();
    r
}

/// Inserts one copy of `value` (treap insert, rebalancing by priority).
fn insert_node(node: Option<Box<Node>>, value: f64, priority: u64) -> Box<Node> {
    let Some(mut n) = node else {
        return Node::leaf(value, priority);
    };
    if value == n.value {
        n.copies += 1;
        n.pull();
        n
    } else if value < n.value {
        n.left = Some(insert_node(n.left.take(), value, priority));
        if n.left.as_ref().is_some_and(|l| l.priority > n.priority) {
            rotate_right(n)
        } else {
            n.pull();
            n
        }
    } else {
        n.right = Some(insert_node(n.right.take(), value, priority));
        if n.right.as_ref().is_some_and(|r| r.priority > n.priority) {
            rotate_left(n)
        } else {
            n.pull();
            n
        }
    }
}

/// Deletes the root node of a subtree by rotating it down to a leaf,
/// preserving the heap property among the remaining nodes.
fn delete_root(mut n: Box<Node>) -> Option<Box<Node>> {
    match (n.left.take(), n.right.take()) {
        (None, r) => r,
        (l @ Some(_), None) => l,
        (Some(l), Some(r)) => {
            if l.priority > r.priority {
                let mut new_root = l;
                n.left = new_root.right.take();
                n.right = Some(r);
                new_root.right = delete_root(n);
                new_root.pull();
                Some(new_root)
            } else {
                let mut new_root = r;
                n.right = new_root.left.take();
                n.left = Some(l);
                new_root.left = delete_root(n);
                new_root.pull();
                Some(new_root)
            }
        }
    }
}

/// Removes one copy of `value`; the boolean reports whether a copy existed.
fn remove_node(node: Option<Box<Node>>, value: f64) -> (Option<Box<Node>>, bool) {
    let Some(mut n) = node else {
        return (None, false);
    };
    if value < n.value {
        let (l, removed) = remove_node(n.left.take(), value);
        n.left = l;
        n.pull();
        (Some(n), removed)
    } else if value > n.value {
        let (r, removed) = remove_node(n.right.take(), value);
        n.right = r;
        n.pull();
        (Some(n), removed)
    } else if n.copies > 1 {
        n.copies -= 1;
        n.pull();
        (Some(n), true)
    } else {
        (delete_root(n), true)
    }
}

/// Incremental rival-payoff engine: IAU evaluation, payoff difference,
/// average, and potential over a *mutable* population of payoffs.
///
/// [`IauEvaluator`] fixes the rivals once, which forces best-response loops
/// to rebuild it for every worker in every round (`O(n² log n)` per round).
/// `RivalSet` instead maintains **all** `n` payoffs in an augmented
/// order-statistic treap keyed by payoff value, with per-subtree copy counts
/// and payoff sums, so a best-response sweep becomes:
///
/// ```text
/// for each worker w:
///     set.remove(payoff(w));          // O(log n)
///     best = argmax over candidates of set.eval(candidate);  // O(log n) each
///     set.insert(best_payoff);        // O(log n)
/// ```
///
/// One structure survives the whole equilibrium loop — `n` point updates per
/// round instead of `n` full rebuilds, and no precomputed value universe:
/// the tree holds only the `n` payoffs currently in play, so construction is
/// `O(n log n)` regardless of how many candidate strategies exist. (An
/// earlier design compressed values into Fenwick trees over the full set of
/// admissible payoffs; with worker-dependent payoffs that universe grows as
/// `O(|W| · |pool|)` and its sort dwarfed the game itself.) Alongside
/// utilities it keeps the sum of pairwise absolute differences up to date,
/// so the fairness metric (Equation 2), the population average, and the
/// potential function are all `O(1)` reads at any time.
///
/// ```
/// use fta_core::iau::{iau, IauParams, RivalSet};
///
/// let params = IauParams::default();
/// let mut set = RivalSet::new(params);
/// for p in [1.0, 2.0, 4.0] {
///     set.insert(p);
/// }
/// // Evaluate worker 0's candidates against its rivals {2.0, 4.0}.
/// set.remove(1.0);
/// assert!((set.eval(1.0) - iau(1.0, &[2.0, 4.0], params)).abs() < 1e-12);
/// set.insert(1.0);
/// assert_eq!(set.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct RivalSet {
    /// Order-statistic treap over the stored payoffs.
    root: Option<Box<Node>>,
    /// Number of payoffs currently stored.
    len: usize,
    /// Sum of all stored payoffs.
    total: f64,
    /// `S = Σ_{i<j} |p_i − p_j|` over the stored payoffs.
    pair_abs_sum: f64,
    /// Xorshift state generating treap priorities (deterministic).
    rng: u64,
    params: IauParams,
}

impl RivalSet {
    /// Builds an empty engine.
    #[must_use]
    pub fn new(params: IauParams) -> Self {
        Self {
            root: None,
            len: 0,
            total: 0.0,
            pair_abs_sum: 0.0,
            rng: 0x9E37_79B9_7F4A_7C15,
            params,
        }
    }

    /// Convenience constructor: builds the engine and inserts every payoff
    /// in `payoffs`.
    #[must_use]
    pub fn with_payoffs(payoffs: &[f64], params: IauParams) -> Self {
        let mut set = Self::new(params);
        for &p in payoffs {
            set.insert(p);
        }
        set
    }

    /// Next treap priority (xorshift64; deterministic across runs).
    fn next_priority(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// The inequity-aversion weights this engine evaluates with.
    #[must_use]
    pub fn params(&self) -> IauParams {
        self.params
    }

    /// Number of payoffs currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no payoffs are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all stored payoffs.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Mean of the stored payoffs (`0.0` when empty).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.total / self.len as f64
        }
    }

    /// `Σ_{i<j} |p_i − p_j|` over the stored payoffs, maintained
    /// incrementally.
    #[must_use]
    pub fn pairwise_diff_sum(&self) -> f64 {
        self.pair_abs_sum
    }

    /// Payoff difference (Equation 2): mean pairwise absolute difference,
    /// `2S / (n(n−1))`. Zero for fewer than two payoffs. Clamped at zero to
    /// absorb floating-point drift from incremental maintenance.
    #[must_use]
    pub fn payoff_difference(&self) -> f64 {
        if self.len < 2 {
            return 0.0;
        }
        let n = self.len as f64;
        (2.0 * self.pair_abs_sum / (n * (n - 1.0))).max(0.0)
    }

    /// The FGT potential `Φ = Σ P_i − (α+β) · n · P_dif / 2`, which
    /// simplifies to `total − (α+β) · S / (n−1)`. Equals `total` for fewer
    /// than two payoffs.
    #[must_use]
    pub fn potential(&self) -> f64 {
        if self.len < 2 {
            return self.total;
        }
        let n_minus_1 = (self.len - 1) as f64;
        self.total - (self.params.alpha + self.params.beta) * self.pair_abs_sum / n_minus_1
    }

    /// (count, sum) of stored copies with value strictly below `v`.
    /// `O(log n)`.
    fn below(&self, v: f64) -> (i64, f64) {
        let mut count = 0;
        let mut sum = 0.0;
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            if v <= n.value {
                cur = n.left.as_deref();
            } else {
                count += subtree_count(&n.left) + n.copies;
                sum += subtree_sum(&n.left) + n.value * n.copies as f64;
                cur = n.right.as_deref();
            }
        }
        (count, sum)
    }

    /// `Σ_{p ∈ set} |p − v|` against the *current* contents. Copies equal
    /// to `v` contribute zero, so they can be lumped with the upper block.
    fn abs_dev_sum(&self, v: f64) -> f64 {
        let (c_lt, s_lt) = self.below(v);
        let c_ge = self.len as i64 - c_lt;
        let s_ge = self.total - s_lt;
        (c_lt as f64 * v - s_lt) + (s_ge - c_ge as f64 * v)
    }

    /// Adds one copy of `v`. `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is NaN.
    pub fn insert(&mut self, v: f64) {
        assert!(!v.is_nan(), "cannot insert NaN into a RivalSet");
        // Delta computed against the set *before* the copy joins.
        self.pair_abs_sum += self.abs_dev_sum(v);
        let priority = self.next_priority();
        self.root = Some(insert_node(self.root.take(), v, priority));
        self.len += 1;
        self.total += v;
    }

    /// Removes one copy of `v`. `O(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if no copy of `v` is stored.
    pub fn remove(&mut self, v: f64) {
        // The removed copy's own |v − v| = 0 term is included harmlessly.
        let delta = self.abs_dev_sum(v);
        let (root, removed) = remove_node(self.root.take(), v);
        self.root = root;
        assert!(removed, "remove({v}): no copy is stored in the RivalSet");
        self.pair_abs_sum -= delta;
        self.len -= 1;
        self.total -= v;
    }

    /// Evaluates `IAU(own)` against the stored payoffs (Equation 5). The
    /// focal worker's payoff must have been [`RivalSet::remove`]d first so
    /// the contents are exactly its rivals. `O(log n)`.
    #[must_use]
    pub fn eval(&self, own: f64) -> f64 {
        if self.len == 0 {
            return own;
        }
        let (c_lt, s_lt) = self.below(own);
        let k = c_lt as f64;
        let n = self.len as f64;
        // Ties contribute zero to both terms, so the `>= own` block is
        // safely treated as "above" (same convention as `IauEvaluator`).
        let mp = (self.total - s_lt) - (n - k) * own;
        let lp = k * own - s_lt;
        own - self.params.alpha / n * mp - self.params.beta / n * lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalties_split_by_comparison() {
        let others = [1.0, 3.0, 5.0];
        assert_eq!(disadvantageous_inequity(2.0, &others), 1.0 + 3.0);
        assert_eq!(advantageous_inequity(2.0, &others), 1.0);
    }

    #[test]
    fn equal_payoffs_have_no_penalty() {
        let others = [2.0, 2.0, 2.0];
        let params = IauParams::default();
        assert_eq!(iau(2.0, &others, params), 2.0);
    }

    #[test]
    fn iau_is_penalised_from_both_sides() {
        let params = IauParams {
            alpha: 0.5,
            beta: 0.5,
        };
        // own=4, others=[1, 2]: LP = 3+2 = 5, MP = 0, n-1 = 2.
        let u = iau(4.0, &[1.0, 2.0], params);
        assert!((u - (4.0 - 0.25 * 5.0)).abs() < 1e-12);
        // own=1, others=[2, 4]: MP = 1+3 = 4.
        let u = iau(1.0, &[2.0, 4.0], params);
        assert!((u - (1.0 - 0.25 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn figure1_fair_joint_strategy_utility() {
        // Paper Section V-B: IAU(w1, {dp1, dp2}) = 2.42 when w1's payoff is
        // 2.55 and w2's is 2.29 with α = β = 0.5.
        let u = iau(2.55, &[2.29], IauParams::default());
        assert!((u - 2.42).abs() < 5e-3, "got {u}");
    }

    #[test]
    fn singleton_population_utility_is_payoff() {
        assert_eq!(iau(3.7, &[], IauParams::default()), 3.7);
    }

    #[test]
    fn evaluator_matches_direct_formula() {
        let others = [0.5, 2.0, 2.0, 3.75, 9.1];
        let params = IauParams {
            alpha: 0.8,
            beta: 0.3,
        };
        let eval = IauEvaluator::new(&others, params);
        for own in [0.0, 0.5, 1.0, 2.0, 3.0, 3.75, 5.0, 9.1, 12.0] {
            let direct = iau(own, &others, params);
            let fast = eval.eval(own);
            assert!(
                (direct - fast).abs() < 1e-10,
                "own={own}: {direct} vs {fast}"
            );
        }
    }

    #[test]
    fn evaluator_with_no_rivals() {
        let eval = IauEvaluator::new(&[], IauParams::default());
        assert_eq!(eval.rivals(), 0);
        assert_eq!(eval.eval(1.5), 1.5);
    }

    /// Brute-force mirror of the incremental S maintenance.
    fn direct_pair_abs_sum(values: &[f64]) -> f64 {
        let mut s = 0.0;
        for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                s += (values[i] - values[j]).abs();
            }
        }
        s
    }

    #[test]
    fn rival_set_eval_matches_direct_iau() {
        let params = IauParams {
            alpha: 0.8,
            beta: 0.3,
        };
        let payoffs = [0.5, 2.0, 2.0, 3.75, 9.1];
        let mut set = RivalSet::with_payoffs(&payoffs, params);
        // Focal worker holds 2.0; its rivals are the other four payoffs.
        set.remove(2.0);
        let rivals = [0.5, 2.0, 3.75, 9.1];
        for own in [0.0, 0.5, 1.0, 2.0, 3.0, 3.75, 5.0, 9.1, 12.0] {
            let direct = iau(own, &rivals, params);
            let fast = set.eval(own);
            assert!(
                (direct - fast).abs() < 1e-10,
                "own={own}: {direct} vs {fast}"
            );
        }
    }

    #[test]
    fn rival_set_tracks_pairwise_diffs_through_updates() {
        let params = IauParams::default();
        let mut set = RivalSet::new(params);
        let mut shadow: Vec<f64> = Vec::new();
        let script: [(bool, f64); 9] = [
            (true, 1.0),
            (true, 4.0),
            (true, 4.0),
            (true, 0.0),
            (false, 4.0),
            (true, 7.0),
            (false, 1.0),
            (true, 2.5),
            (false, 0.0),
        ];
        for (add, v) in script {
            if add {
                set.insert(v);
                shadow.push(v);
            } else {
                set.remove(v);
                let pos = shadow.iter().position(|&p| p == v).unwrap();
                shadow.swap_remove(pos);
            }
            assert_eq!(set.len(), shadow.len());
            let want_total: f64 = shadow.iter().sum();
            assert!((set.total() - want_total).abs() < 1e-9);
            let want_s = direct_pair_abs_sum(&shadow);
            assert!(
                (set.pairwise_diff_sum() - want_s).abs() < 1e-9,
                "after {:?}: {} vs {}",
                (add, v),
                set.pairwise_diff_sum(),
                want_s
            );
        }
    }

    #[test]
    fn rival_set_summary_statistics() {
        let params = IauParams::default();
        let set = RivalSet::with_payoffs(&[1.0, 3.0, 5.0], params);
        assert_eq!(set.len(), 3);
        assert!((set.average() - 3.0).abs() < 1e-12);
        // S = |1−3| + |1−5| + |3−5| = 8; P_dif = 2·8 / (3·2) = 8/3.
        assert!((set.payoff_difference() - 8.0 / 3.0).abs() < 1e-12);
        // Φ = 9 − (0.5+0.5)·8/2 = 5.
        assert!((set.potential() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rival_set_degenerate_sizes() {
        let params = IauParams::default();
        let mut set = RivalSet::new(params);
        assert!(set.is_empty());
        assert_eq!(set.payoff_difference(), 0.0);
        assert_eq!(set.average(), 0.0);
        assert_eq!(set.eval(2.0), 2.0);
        set.insert(2.0);
        assert_eq!(set.payoff_difference(), 0.0);
        assert_eq!(set.potential(), 2.0);
    }

    #[test]
    #[should_panic(expected = "no copy is stored")]
    fn rival_set_rejects_removing_absent_values() {
        let mut set = RivalSet::with_payoffs(&[0.0, 1.0], IauParams::default());
        set.remove(0.75);
    }

    #[test]
    fn rival_set_survives_many_ordered_inserts() {
        // An ascending insertion order is the worst case for a naive BST;
        // the treap's random priorities must keep it balanced enough to
        // finish instantly and agree with the brute force.
        let params = IauParams::default();
        let mut set = RivalSet::new(params);
        let values: Vec<f64> = (0..2000).map(f64::from).collect();
        for &v in &values {
            set.insert(v);
        }
        assert_eq!(set.len(), 2000);
        // S = Σ_{i<j} (j − i) for 0..2000 = Σ_d d·(2000−d).
        let want: f64 = (1..2000).map(|d| (d * (2000 - d)) as f64).sum();
        assert!((set.pairwise_diff_sum() - want).abs() / want < 1e-12);
        set.remove(0.0);
        set.remove(1999.0);
        assert_eq!(set.len(), 1998);
    }

    #[test]
    fn higher_alpha_punishes_envy_more() {
        let others = [5.0];
        let low = iau(
            1.0,
            &others,
            IauParams {
                alpha: 0.1,
                beta: 0.5,
            },
        );
        let high = iau(
            1.0,
            &others,
            IauParams {
                alpha: 0.9,
                beta: 0.5,
            },
        );
        assert!(high < low);
    }
    #[test]
    fn nan_rival_payoff_does_not_panic() {
        // A NaN that leaks into a rival-payoff vector (e.g. from a
        // degenerate 0/0 payoff) must not crash the evaluator; total_cmp
        // sorts NaN to the top and the IAU value is simply NaN-poisoned.
        let ev = IauEvaluator::new(&[1.0, f64::NAN, 3.0], IauParams::default());
        assert_eq!(ev.rivals(), 3);
        let _ = ev.eval(2.0);
        let _ = iau(2.0, &[1.0, f64::NAN, 3.0], IauParams::default());
    }
}

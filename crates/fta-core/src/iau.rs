//! Inequity Aversion based Utility (IAU, Equations 5–7).
//!
//! IAU is the utility function of the classical (FGT) game: a worker's raw
//! payoff minus penalties for *disadvantageous* inequity (`MP`, others
//! earning more) and *advantageous* inequity (`LP`, the worker earning more
//! than others), following Fehr–Schmidt inequity aversion.

use serde::{Deserialize, Serialize};

/// Weights of the two inequity penalties.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IauParams {
    /// Weight `α` of the disadvantageous-inequity term `MP` (envy).
    pub alpha: f64,
    /// Weight `β` of the advantageous-inequity term `LP` (guilt).
    pub beta: f64,
}

impl Default for IauParams {
    /// The paper's experimental setting: `α = β = 0.5` (Section VII-A).
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
        }
    }
}

/// Total disadvantageous inequity `MP(w_i)` (Equation 6): the summed payoff
/// surplus of every worker earning more than `own`.
#[must_use]
pub fn disadvantageous_inequity(own: f64, others: &[f64]) -> f64 {
    others.iter().filter(|&&p| p > own).map(|p| p - own).sum()
}

/// Total advantageous inequity `LP(w_i)` (Equation 7): the summed payoff
/// surplus of `own` over every worker earning less.
#[must_use]
pub fn advantageous_inequity(own: f64, others: &[f64]) -> f64 {
    others.iter().filter(|&&p| p < own).map(|p| own - p).sum()
}

/// `IAU(w_i, VDPS(w_i))` (Equation 5) given the worker's own payoff, the
/// payoffs of all *other* workers, and the penalty weights.
///
/// `others` must not include the worker's own payoff; `|W| - 1` in the
/// normalisation is `others.len()`. With no other workers the utility is
/// just the raw payoff.
///
/// ```
/// use fta_core::iau::{iau, IauParams};
///
/// // Equal payoffs carry no inequity penalty…
/// assert_eq!(iau(2.0, &[2.0, 2.0], IauParams::default()), 2.0);
/// // …while being ahead of the pack costs guilt (β) utility.
/// assert!(iau(4.0, &[1.0, 1.0], IauParams::default()) < 4.0);
/// ```
#[must_use]
pub fn iau(own: f64, others: &[f64], params: IauParams) -> f64 {
    if others.is_empty() {
        return own;
    }
    let n_minus_1 = others.len() as f64;
    own - params.alpha / n_minus_1 * disadvantageous_inequity(own, others)
        - params.beta / n_minus_1 * advantageous_inequity(own, others)
}

/// Incremental IAU evaluator for a fixed set of other workers' payoffs.
///
/// Best-response search evaluates `IAU(p)` for many candidate own-payoffs
/// `p` against the *same* rivals. Sorting the rivals once and prefix-summing
/// makes each evaluation `O(log n)` instead of `O(n)`; with hundreds of
/// candidate strategies per worker per round this is the hot path of FGT.
#[derive(Debug, Clone)]
pub struct IauEvaluator {
    sorted: Vec<f64>,
    prefix: Vec<f64>,
    params: IauParams,
}

impl IauEvaluator {
    /// Builds an evaluator over the payoffs of the other workers.
    #[must_use]
    pub fn new(others: &[f64], params: IauParams) -> Self {
        let mut sorted = others.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("payoffs must not be NaN"));
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &p in &sorted {
            acc += p;
            prefix.push(acc);
        }
        Self {
            sorted,
            prefix,
            params,
        }
    }

    /// Number of other workers.
    #[must_use]
    pub fn rivals(&self) -> usize {
        self.sorted.len()
    }

    /// Evaluates `IAU(own)` against the fixed rival payoffs.
    #[must_use]
    pub fn eval(&self, own: f64) -> f64 {
        let n = self.sorted.len();
        if n == 0 {
            return own;
        }
        // k = number of rivals with payoff strictly below `own`.
        let k = self.sorted.partition_point(|&p| p < own);
        let below_sum = self.prefix[k];
        let above_sum = self.prefix[n] - self.prefix[k];
        // Rivals equal to `own` contribute zero to both terms; treating the
        // `>= own` block as "above" is safe because (p - own) = 0 for ties.
        let mp = above_sum - (n - k) as f64 * own;
        let lp = k as f64 * own - below_sum;
        let n_minus_1 = n as f64;
        own - self.params.alpha / n_minus_1 * mp - self.params.beta / n_minus_1 * lp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalties_split_by_comparison() {
        let others = [1.0, 3.0, 5.0];
        assert_eq!(disadvantageous_inequity(2.0, &others), 1.0 + 3.0);
        assert_eq!(advantageous_inequity(2.0, &others), 1.0);
    }

    #[test]
    fn equal_payoffs_have_no_penalty() {
        let others = [2.0, 2.0, 2.0];
        let params = IauParams::default();
        assert_eq!(iau(2.0, &others, params), 2.0);
    }

    #[test]
    fn iau_is_penalised_from_both_sides() {
        let params = IauParams {
            alpha: 0.5,
            beta: 0.5,
        };
        // own=4, others=[1, 2]: LP = 3+2 = 5, MP = 0, n-1 = 2.
        let u = iau(4.0, &[1.0, 2.0], params);
        assert!((u - (4.0 - 0.25 * 5.0)).abs() < 1e-12);
        // own=1, others=[2, 4]: MP = 1+3 = 4.
        let u = iau(1.0, &[2.0, 4.0], params);
        assert!((u - (1.0 - 0.25 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn figure1_fair_joint_strategy_utility() {
        // Paper Section V-B: IAU(w1, {dp1, dp2}) = 2.42 when w1's payoff is
        // 2.55 and w2's is 2.29 with α = β = 0.5.
        let u = iau(2.55, &[2.29], IauParams::default());
        assert!((u - 2.42).abs() < 5e-3, "got {u}");
    }

    #[test]
    fn singleton_population_utility_is_payoff() {
        assert_eq!(iau(3.7, &[], IauParams::default()), 3.7);
    }

    #[test]
    fn evaluator_matches_direct_formula() {
        let others = [0.5, 2.0, 2.0, 3.75, 9.1];
        let params = IauParams {
            alpha: 0.8,
            beta: 0.3,
        };
        let eval = IauEvaluator::new(&others, params);
        for own in [0.0, 0.5, 1.0, 2.0, 3.0, 3.75, 5.0, 9.1, 12.0] {
            let direct = iau(own, &others, params);
            let fast = eval.eval(own);
            assert!(
                (direct - fast).abs() < 1e-10,
                "own={own}: {direct} vs {fast}"
            );
        }
    }

    #[test]
    fn evaluator_with_no_rivals() {
        let eval = IauEvaluator::new(&[], IauParams::default());
        assert_eq!(eval.rivals(), 0);
        assert_eq!(eval.eval(1.5), 1.5);
    }

    #[test]
    fn higher_alpha_punishes_envy_more() {
        let others = [5.0];
        let low = iau(
            1.0,
            &others,
            IauParams {
                alpha: 0.1,
                beta: 0.5,
            },
        );
        let high = iau(
            1.0,
            &others,
            IauParams {
                alpha: 0.9,
                beta: 0.5,
            },
        );
        assert!(high < low);
    }
}

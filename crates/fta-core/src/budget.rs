//! Solve budgets and cooperative cancellation.
//!
//! The paper's algorithms are allowed to run unboundedly; a production
//! dispatcher is not. A [`SolveBudget`] caps the resources one solve may
//! consume — wall-clock time, DP state count during VDPS generation, and
//! best-response/replicator rounds — and a [`CancelToken`] carries the
//! budget's wall-clock deadline (plus any external cancellation request)
//! into the hot loops, which check it at *layer*/*round* granularity so
//! the common path stays branch-cheap and results stay bit-identical
//! when no budget is configured.
//!
//! Budget exhaustion is not an error: solvers are expected to *degrade*
//! (truncate the strategy pool, stop iterating, fall back to a simpler
//! algorithm) and report what happened instead of dying.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Process-global observer invoked the first time any [`CancelToken`]
/// latches from a passed wall-clock deadline (once per token, on the
/// latching check). The argument names the exhausted budget axis
/// (currently always `"wall_ms"`). Used by the solver layer to trigger
/// a flight-recorder dump at the moment a budget exhausts; must be
/// cheap and must not panic.
static EXHAUSTION_OBSERVER: OnceLock<Box<dyn Fn(&'static str) + Send + Sync>> = OnceLock::new();

/// Install the budget-exhaustion observer. The first installation wins;
/// later calls are ignored (the forensics layer installs exactly one).
pub fn set_exhaustion_observer(observer: Box<dyn Fn(&'static str) + Send + Sync>) {
    let _ = EXHAUSTION_OBSERVER.set(observer);
}

fn notify_exhausted(axis: &'static str) {
    if let Some(observer) = EXHAUSTION_OBSERVER.get() {
        observer(axis);
    }
}

/// Resource caps for one solve. `None` fields are unbounded; the default
/// budget is fully unbounded, in which case the solve pipeline behaves
/// bit-identically to an unbudgeted build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveBudget {
    /// Wall-clock budget for the whole solve, in milliseconds.
    pub wall_ms: Option<u64>,
    /// Maximum number of DP states a single center's VDPS generation may
    /// materialise before the pool is truncated at a layer boundary.
    /// This cap is deterministic (independent of wall-clock and thread
    /// count), unlike `wall_ms`.
    pub max_states: Option<usize>,
    /// Cap on best-response / replicator rounds per equilibrium loop,
    /// applied on top of each algorithm's own `max_rounds`.
    pub max_rounds: Option<usize>,
}

impl SolveBudget {
    /// The fully unbounded budget (the default).
    pub const UNLIMITED: SolveBudget = SolveBudget {
        wall_ms: None,
        max_states: None,
        max_rounds: None,
    };

    /// A budget bounded only by wall-clock time.
    #[must_use]
    pub fn wall_ms(ms: u64) -> Self {
        SolveBudget {
            wall_ms: Some(ms),
            ..Self::UNLIMITED
        }
    }

    /// Whether every cap is `None` (the solve runs exactly as unbudgeted).
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == Self::UNLIMITED
    }

    /// Creates the cancellation token for one solve under this budget,
    /// arming the wall-clock deadline if `wall_ms` is set.
    #[must_use]
    pub fn token(&self) -> CancelToken {
        match self.wall_ms {
            Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
            None => CancelToken::new(),
        }
    }
}

/// A shared, cheap-to-clone cancellation token.
///
/// Combines an explicit [`cancel`](CancelToken::cancel) flag with an
/// optional wall-clock deadline. [`is_cancelled`](CancelToken::is_cancelled)
/// latches the flag once the deadline passes, so all clones observe
/// cancellation consistently after the first expired check.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; only [`cancel`](CancelToken::cancel)
    /// trips it.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that trips automatically once `budget` wall-clock time has
    /// elapsed (measured from construction).
    ///
    /// A budget so large that `now + budget` overflows `Instant` is
    /// *saturated* to the farthest representable deadline instead of being
    /// dropped: a huge-but-finite budget must stay a finite deadline, never
    /// silently become "no deadline at all". The saturation halves the
    /// budget until the addition fits, so the stored deadline is still
    /// decades away on every platform.
    #[must_use]
    pub fn with_deadline(budget: Duration) -> Self {
        let now = Instant::now();
        let mut capped = budget;
        let deadline = loop {
            match now.checked_add(capped) {
                Some(deadline) => break deadline,
                // Unreachable at Duration::ZERO: `now + 0` always fits.
                None => capped /= 2,
            }
        };
        CancelToken {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation: every clone's `is_cancelled` returns `true`
    /// from now on.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    /// A passed deadline latches the cancelled flag.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                // `swap` so only the first latching check (across all
                // clones) fires the exhaustion observer.
                if !self.inner.cancelled.swap(true, Ordering::AcqRel) {
                    notify_exhausted("wall_ms");
                }
                return true;
            }
        }
        false
    }

    /// The remaining time before the deadline trips, if one is armed.
    /// `Duration::ZERO` once expired; `None` when no deadline exists.
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        assert!(SolveBudget::default().is_unlimited());
        assert!(SolveBudget::UNLIMITED.is_unlimited());
        assert!(!SolveBudget::wall_ms(5).is_unlimited());
    }

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.remaining().is_none());
    }

    #[test]
    fn cancel_is_observed_by_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        // Latches: subsequent checks stay cancelled.
        assert!(token.is_cancelled());
    }

    #[test]
    fn far_deadline_does_not_trip() {
        let token = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!token.is_cancelled());
        assert!(token.remaining().expect("deadline armed") > Duration::from_secs(3000));
    }

    #[test]
    fn exhaustion_observer_fires_on_deadline_latch() {
        use std::sync::atomic::AtomicBool;
        static FIRED: AtomicBool = AtomicBool::new(false);
        set_exhaustion_observer(Box::new(|axis| {
            assert_eq!(axis, "wall_ms");
            FIRED.store(true, Ordering::Release);
        }));
        let token = CancelToken::with_deadline(Duration::ZERO);
        assert!(token.is_cancelled());
        assert!(FIRED.load(Ordering::Acquire));
        // Explicit cancel (no deadline) never reports exhaustion; the
        // observer is already installed, so this would panic on a
        // non-"wall_ms" axis if it fired.
        let manual = CancelToken::new();
        manual.cancel();
        assert!(manual.is_cancelled());
    }

    #[test]
    fn budget_token_arms_deadline_only_when_wall_ms_set() {
        assert!(SolveBudget::UNLIMITED.token().remaining().is_none());
        assert!(SolveBudget::wall_ms(10_000).token().remaining().is_some());
    }
}

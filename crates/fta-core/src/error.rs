//! Error type shared across the FTA crates.

use crate::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use std::fmt;

/// Convenient result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, FtaError>;

/// Errors produced while building instances or validating assignments.
#[derive(Debug, Clone, PartialEq)]
pub enum FtaError {
    /// An entity references a distribution center that does not exist.
    UnknownCenter(CenterId),
    /// A task references a delivery point that does not exist.
    UnknownDeliveryPoint(DeliveryPointId),
    /// An assignment references a worker that does not exist.
    UnknownWorker(WorkerId),
    /// Entity ids are not dense (id does not match its position).
    NonDenseId {
        /// Human-readable entity kind ("worker", "task", ...).
        kind: &'static str,
        /// Position in the instance vector.
        position: usize,
        /// The id actually stored there.
        found: u32,
    },
    /// A numeric field is invalid (negative reward, non-positive speed, ...).
    InvalidField {
        /// Which field failed validation.
        field: &'static str,
        /// A description of the failure.
        message: String,
    },
    /// Two workers were assigned overlapping delivery point sets
    /// (violates Definition 8's disjointness requirement).
    OverlappingAssignment {
        /// First worker in the conflict.
        first: WorkerId,
        /// Second worker in the conflict.
        second: WorkerId,
        /// One delivery point assigned to both.
        delivery_point: DeliveryPointId,
    },
    /// A route visits a delivery point after one of its tasks has expired.
    DeadlineViolated {
        /// The worker whose route is infeasible.
        worker: WorkerId,
        /// The delivery point reached too late.
        delivery_point: DeliveryPointId,
        /// The arrival time in hours.
        arrival: f64,
        /// The earliest task deadline at that delivery point.
        deadline: f64,
    },
    /// A worker was assigned more delivery points than its `maxDP`.
    MaxDpExceeded {
        /// The worker in question.
        worker: WorkerId,
        /// Number of delivery points assigned.
        assigned: usize,
        /// The worker's `maxDP` bound.
        max_dp: usize,
    },
    /// A route references a delivery point of a different distribution
    /// center than the worker's.
    CenterMismatch {
        /// The worker in question.
        worker: WorkerId,
        /// The foreign delivery point.
        delivery_point: DeliveryPointId,
    },
    /// A task is referenced but missing (e.g. a delivery point with no task
    /// set where one is required).
    UnknownTask(TaskId),
    /// A solve phase ran out of budget (wall-clock deadline, state cap,
    /// or round cap) and had to stop early.
    BudgetExhausted {
        /// The phase that hit its cap ("vdps", "assignment", ...).
        phase: &'static str,
    },
    /// A per-center solve panicked and was quarantined by the panic
    /// isolation layer instead of aborting the whole round.
    CenterPanicked {
        /// The distribution center whose solve panicked.
        center: CenterId,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for FtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownCenter(id) => write!(f, "unknown distribution center {id}"),
            Self::UnknownDeliveryPoint(id) => write!(f, "unknown delivery point {id}"),
            Self::UnknownWorker(id) => write!(f, "unknown worker {id}"),
            Self::NonDenseId {
                kind,
                position,
                found,
            } => write!(
                f,
                "{kind} at position {position} has id {found}; ids must be dense"
            ),
            Self::InvalidField { field, message } => {
                write!(f, "invalid field `{field}`: {message}")
            }
            Self::OverlappingAssignment {
                first,
                second,
                delivery_point,
            } => write!(
                f,
                "workers {first} and {second} were both assigned {delivery_point}"
            ),
            Self::DeadlineViolated {
                worker,
                delivery_point,
                arrival,
                deadline,
            } => write!(
                f,
                "{worker} arrives at {delivery_point} at t={arrival:.3}h, after deadline {deadline:.3}h"
            ),
            Self::MaxDpExceeded {
                worker,
                assigned,
                max_dp,
            } => write!(
                f,
                "{worker} assigned {assigned} delivery points, exceeding maxDP={max_dp}"
            ),
            Self::CenterMismatch {
                worker,
                delivery_point,
            } => write!(
                f,
                "{worker} assigned {delivery_point}, which belongs to a different distribution center"
            ),
            Self::UnknownTask(id) => write!(f, "unknown task {id}"),
            Self::BudgetExhausted { phase } => {
                write!(f, "solve budget exhausted during {phase}")
            }
            Self::CenterPanicked { center, message } => {
                write!(f, "solve for {center} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for FtaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = FtaError::OverlappingAssignment {
            first: WorkerId(0),
            second: WorkerId(1),
            delivery_point: DeliveryPointId(2),
        };
        let msg = err.to_string();
        assert!(msg.contains("w0"));
        assert!(msg.contains("w1"));
        assert!(msg.contains("dp2"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&FtaError::UnknownWorker(WorkerId(3)));
    }

    #[test]
    fn deadline_violation_formats_times() {
        let err = FtaError::DeadlineViolated {
            worker: WorkerId(1),
            delivery_point: DeliveryPointId(4),
            arrival: 2.53721,
            deadline: 2.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("2.537"));
        assert!(msg.contains("2.000"));
    }
}

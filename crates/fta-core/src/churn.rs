//! Round-over-round churn description for incremental re-solves.
//!
//! A production assignment round rarely differs from the previous one by
//! more than a handful of task arrivals and worker check-ins. [`ChurnSet`]
//! is the contract between a round loop (the sim engine, a dispatcher)
//! and an incremental solver: it carries the *identity* information the
//! solver cannot reconstruct from two instances alone — a stable key per
//! worker (instances renumber [`WorkerId`](crate::WorkerId)s densely every
//! round) and how much wall-clock time passed since the cached solve (all
//! relative task expiries shrank by that much) — plus per-center churn
//! diagnostics.
//!
//! The diagnostics are advisory: an incremental solver must detect dirty
//! delivery points by comparing cached against fresh per-point aggregates
//! bit for bit, because floating-point expiries re-derived from a new
//! round instant are almost never bitwise equal to `old − age`. The counts
//! here feed telemetry and let a round loop skip the incremental path
//! entirely when churn is too heavy to pay off.

/// Per-center churn counts between two consecutive rounds (diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CenterChurn {
    /// Tasks newly visible to this center's snapshot (arrivals, retries
    /// whose backoff expired).
    pub added_tasks: u32,
    /// Tasks that left the snapshot (delivered, expired, cancelled,
    /// abandoned, or backoff-hidden).
    pub removed_tasks: u32,
    /// Workers that joined the center's idle pool.
    pub arrived_workers: u32,
    /// Workers that left the idle pool (dispatched, still busy).
    pub departed_workers: u32,
}

impl CenterChurn {
    /// Whether this center saw no churn at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added_tasks == 0
            && self.removed_tasks == 0
            && self.arrived_workers == 0
            && self.departed_workers == 0
    }
}

/// What changed between the previously solved round and the current one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnSet {
    /// Wall-clock time elapsed since the cached solve, in instance time
    /// units. Every surviving task's relative expiry shrank by this much;
    /// `0.0` means the rounds share an instant (pure add/remove churn).
    pub age: f64,
    /// One stable key per worker of the *current* instance, parallel to
    /// `instance.workers`. Keys identify the same physical worker across
    /// rounds (the sim uses scenario indices); they are what lets a warm
    /// start map cached equilibrium strategies onto freshly renumbered
    /// [`WorkerId`](crate::WorkerId)s.
    pub worker_keys: Vec<u64>,
    /// Per-center diagnostics, indexed by [`CenterId`](crate::CenterId)
    /// index. May be empty when the producer does not track them.
    pub per_center: Vec<CenterChurn>,
}

impl ChurnSet {
    /// A churn set declaring "nothing changed" for an instance of
    /// `n_workers` workers keyed by their own indices (the convention of
    /// [`Solver::solve`](../../fta_algorithms/solver/index.html) when no
    /// explicit keys are given).
    #[must_use]
    pub fn empty(n_workers: usize) -> Self {
        Self {
            age: 0.0,
            worker_keys: (0..n_workers as u64).collect(),
            per_center: Vec::new(),
        }
    }

    /// Whether the set declares zero churn (no aging, no per-center
    /// activity). Worker keys are identity, not churn, so they do not
    /// participate.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.age == 0.0 && self.per_center.iter().all(CenterChurn::is_empty)
    }

    /// Total tasks added across centers.
    #[must_use]
    pub fn tasks_added(&self) -> u64 {
        self.per_center
            .iter()
            .map(|c| u64::from(c.added_tasks))
            .sum()
    }

    /// Total tasks removed across centers.
    #[must_use]
    pub fn tasks_removed(&self) -> u64 {
        self.per_center
            .iter()
            .map(|c| u64::from(c.removed_tasks))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_churn_is_identity_keyed_and_empty() {
        let c = ChurnSet::empty(4);
        assert_eq!(c.worker_keys, vec![0, 1, 2, 3]);
        assert!(c.is_empty());
        assert_eq!(c.tasks_added(), 0);
        assert_eq!(c.tasks_removed(), 0);
    }

    #[test]
    fn aging_or_center_activity_makes_churn_nonempty() {
        let mut c = ChurnSet::empty(2);
        c.age = 0.25;
        assert!(!c.is_empty());
        let mut c = ChurnSet::empty(2);
        c.per_center.push(CenterChurn {
            added_tasks: 1,
            ..CenterChurn::default()
        });
        assert!(!c.is_empty());
        assert_eq!(c.tasks_added(), 1);
    }
}

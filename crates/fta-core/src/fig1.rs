//! The worked example of the paper's Figure 1.
//!
//! The paper's figure fixes the distribution center at `(2, 2)`, worker
//! `w1` at `(1, 2)`, worker `w2` at `(3, 1)`, and five delivery points with
//! task counts `6, 3, 4, 4, 3`. The figure itself does not print the
//! delivery point coordinates, so this module reconstructs coordinates that
//! reproduce the paper's reported travel legs and payoffs exactly:
//!
//! * greedy assignment `{(w1, {dp1,dp2,dp3}), (w2, {dp4,dp5})}` has payoffs
//!   `2.80` and `2.09` — payoff difference `0.71`, average `2.44`;
//! * fair assignment `{(w1, {dp1,dp2}), (w2, {dp3,dp4,dp5})}` has payoffs
//!   `2.55` and `2.29` — payoff difference `0.26`, average `2.42`.

use crate::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use crate::geometry::Point;
use crate::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use crate::instance::Instance;

/// Task counts per delivery point, as drawn in Figure 1.
pub const TASK_COUNTS: [usize; 5] = [6, 3, 4, 4, 3];

/// Builds the Figure 1 instance: one distribution center, two workers, five
/// delivery points, twenty unit-reward tasks, speed 1.
///
/// Delivery point indices are zero-based: `DeliveryPointId(0)` is the
/// paper's `dp1`, and so on.
#[must_use]
pub fn instance() -> Instance {
    let center = DistributionCenter {
        id: CenterId(0),
        location: Point::new(2.0, 2.0),
    };
    let workers = vec![
        Worker {
            id: WorkerId(0),
            location: Point::new(1.0, 2.0),
            max_dp: 3,
            center: CenterId(0),
        },
        Worker {
            id: WorkerId(1),
            location: Point::new(3.0, 1.0),
            max_dp: 3,
            center: CenterId(0),
        },
    ];
    // Coordinates reconstructed from the paper's travel legs:
    //   dc→dp1 = 1.41, dp1→dp2 = dp2→dp3 = 1.12 (w1's greedy route), and
    //   w2's routes have legs dc→dp4 = 1.12, dp4→dp5 = 0.82, dp5→dp3 = 1.46.
    let dp_locations = [
        Point::new(3.0, 3.0),
        Point::new(4.0, 3.5),
        Point::new(4.2757, 2.4165),
        Point::new(3.0, 1.5),
        Point::new(3.7, 1.08),
    ];
    let delivery_points: Vec<DeliveryPoint> = dp_locations
        .iter()
        .enumerate()
        .map(|(i, &location)| DeliveryPoint {
            id: DeliveryPointId::from_index(i),
            location,
            center: CenterId(0),
        })
        .collect();

    // Figure 1 annotates dp1's earliest expiration as 2.5; the other
    // delivery points get a slack deadline of 6.0, which keeps both the
    // greedy and the fair routes feasible.
    let mut tasks = Vec::new();
    for (dp_idx, &count) in TASK_COUNTS.iter().enumerate() {
        let expiry = if dp_idx == 0 { 2.5 } else { 6.0 };
        for _ in 0..count {
            tasks.push(SpatialTask {
                id: TaskId::from_index(tasks.len()),
                delivery_point: DeliveryPointId::from_index(dp_idx),
                expiry,
                reward: 1.0,
            });
        }
    }

    Instance::new(vec![center], workers, delivery_points, tasks, 1.0)
        .expect("the Figure 1 instance is valid by construction")
}

/// Expected metrics of the Figure 1 example, for tests and the quickstart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpectedFig1 {
    /// Greedy payoffs `(w1, w2)`.
    pub greedy_payoffs: (f64, f64),
    /// Fair payoffs `(w1, w2)`.
    pub fair_payoffs: (f64, f64),
    /// Greedy payoff difference.
    pub greedy_diff: f64,
    /// Fair payoff difference.
    pub fair_diff: f64,
}

/// The paper's reported numbers (rounded to two decimals in the text).
#[must_use]
pub fn expected() -> ExpectedFig1 {
    ExpectedFig1 {
        greedy_payoffs: (2.80, 2.09),
        fair_payoffs: (2.55, 2.29),
        greedy_diff: 0.71,
        fair_diff: 0.26,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payoff::worker_payoff;
    use crate::route::Route;

    const TOL: f64 = 5e-3;

    fn route(inst: &Instance, dps: &[usize]) -> Route {
        let aggs = inst.dp_aggregates();
        Route::build(
            inst,
            &aggs,
            CenterId(0),
            dps.iter()
                .map(|&i| DeliveryPointId::from_index(i))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn greedy_route_payoffs_match_paper() {
        let inst = instance();
        let r1 = route(&inst, &[0, 1, 2]);
        let p1 = worker_payoff(&inst, WorkerId(0), &r1);
        assert!((p1 - 2.80).abs() < TOL, "w1 greedy payoff {p1}");

        let r2 = route(&inst, &[3, 4]);
        let p2 = worker_payoff(&inst, WorkerId(1), &r2);
        assert!((p2 - 2.09).abs() < TOL, "w2 greedy payoff {p2}");
    }

    #[test]
    fn fair_route_payoffs_match_paper() {
        let inst = instance();
        let r1 = route(&inst, &[0, 1]);
        let p1 = worker_payoff(&inst, WorkerId(0), &r1);
        assert!((p1 - 2.55).abs() < TOL, "w1 fair payoff {p1}");

        let r2 = route(&inst, &[3, 4, 2]);
        let p2 = worker_payoff(&inst, WorkerId(1), &r2);
        assert!((p2 - 2.29).abs() < TOL, "w2 fair payoff {p2}");
    }

    #[test]
    fn paper_example_total_travel_time() {
        // 13 / 4.65 = 2.80 in the paper's introduction.
        let inst = instance();
        let r1 = route(&inst, &[0, 1, 2]);
        let dc = inst.centers[0].location;
        let to_dc = inst.travel_time(inst.workers[0].location, dc);
        let total = to_dc + r1.travel_from_dc();
        assert!((total - 4.65).abs() < 5e-3, "total travel {total}");
        assert!((r1.total_reward() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn dp1_deadline_is_tight_but_feasible_for_w1() {
        let inst = instance();
        let r1 = route(&inst, &[0, 1, 2]);
        // w1 arrives at dp1 at 1.0 + 1.414 ≈ 2.414 < 2.5.
        assert!(r1.is_valid_for(&inst, WorkerId(0)));
        // A worker farther than ~0.086 extra cannot serve dp1 first.
        assert!(!r1.is_valid_for_travel(1.1));
    }

    #[test]
    fn task_counts_match_figure() {
        let inst = instance();
        let aggs = inst.dp_aggregates();
        for (i, &count) in TASK_COUNTS.iter().enumerate() {
            assert_eq!(aggs[i].task_count, count);
            assert_eq!(aggs[i].total_reward, count as f64);
        }
        assert_eq!(inst.task_count(), 20);
    }

    #[test]
    fn greedy_vs_fair_tradeoff_matches_paper() {
        use crate::fairness::{average_payoff, payoff_difference};
        let inst = instance();
        let g1 = worker_payoff(&inst, WorkerId(0), &route(&inst, &[0, 1, 2]));
        let g2 = worker_payoff(&inst, WorkerId(1), &route(&inst, &[3, 4]));
        let f1 = worker_payoff(&inst, WorkerId(0), &route(&inst, &[0, 1]));
        let f2 = worker_payoff(&inst, WorkerId(1), &route(&inst, &[3, 4, 2]));

        let greedy_diff = payoff_difference(&[g1, g2]);
        let fair_diff = payoff_difference(&[f1, f2]);
        assert!(
            (greedy_diff - 0.71).abs() < 2e-2,
            "greedy diff {greedy_diff}"
        );
        assert!((fair_diff - 0.26).abs() < 2e-2, "fair diff {fair_diff}");

        let greedy_avg = average_payoff(&[g1, g2]);
        let fair_avg = average_payoff(&[f1, f2]);
        assert!((greedy_avg - 2.44).abs() < 2e-2, "greedy avg {greedy_avg}");
        assert!((fair_avg - 2.42).abs() < 2e-2, "fair avg {fair_avg}");
        // The fair assignment trades a little average payoff for a much
        // smaller payoff difference.
        assert!(fair_diff < greedy_diff / 2.0);
        assert!(fair_avg > greedy_avg - 0.05);
    }
}

//! Planar geometry: locations, Euclidean distance, and travel time.
//!
//! The paper works in a two-dimensional Euclidean space (its synthetic
//! datasets are drawn from `[0, 100]^2`) with a uniform worker speed
//! (5 km/h by default), so travel time between two locations is simply
//! `distance / speed`.

use serde::{Deserialize, Serialize};

/// A location in the plane, in kilometres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Easting, km.
    pub x: f64,
    /// Northing, km.
    pub y: f64,
}

impl Point {
    /// Creates a point from kilometre coordinates.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in kilometres (`d(a, b)` in the paper).
    #[must_use]
    pub fn distance(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx.hypot(dy)
    }

    /// Squared Euclidean distance; cheaper than [`Point::distance`] when only
    /// comparisons are needed (e.g. k-means assignment steps).
    #[must_use]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Whether both coordinates are finite (not NaN and not infinite).
    /// Instances with non-finite coordinates are rejected at validation
    /// time so the DP and payoff layers never see NaN travel times.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Travel time from `self` to `other` at `speed` km/h (`c(a, b)` in the
    /// paper), in hours.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `speed` is not strictly positive.
    #[must_use]
    pub fn travel_time(&self, other: Point, speed: f64) -> f64 {
        debug_assert!(speed > 0.0, "worker speed must be positive, got {speed}");
        self.distance(other) / speed
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Self { x, y }
    }
}

/// Returns the centroid of a non-empty set of points.
///
/// The paper uses the centroid of all task locations as the distribution
/// center for the gMission dataset (Section VII-A). Returns `None` for an
/// empty slice.
#[must_use]
pub fn centroid(points: &[Point]) -> Option<Point> {
    if points.is_empty() {
        return None;
    }
    let n = points.len() as f64;
    let (sx, sy) = points
        .iter()
        .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
    Some(Point::new(sx / n, sy / n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(1.5, -2.5);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance_sq(b) - a.distance(b).powi(2)).abs() < 1e-12);
    }

    #[test]
    fn travel_time_scales_with_speed() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert!((a.travel_time(b, 5.0) - 2.0).abs() < 1e-12);
        assert!((a.travel_time(b, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_square() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = centroid(&pts).unwrap();
        assert!((c.x - 1.0).abs() < 1e-12);
        assert!((c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&[]).is_none());
    }

    #[test]
    fn point_from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn triangle_inequality_example() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(5.0, 1.0);
        let c = Point::new(2.0, 7.0);
        assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-12);
    }
}

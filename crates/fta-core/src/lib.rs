//! # fta-core — domain model for Fairness-aware Task Assignment (FTA)
//!
//! This crate contains the problem-domain layer of the FTA reproduction
//! (Zhao et al., *Fairness-aware Task Assignment in Spatial Crowdsourcing:
//! Game-Theoretic Approaches*, ICDE 2021):
//!
//! * [`geometry`] — 2D points, Euclidean distances, and travel times;
//! * [`ids`] — strongly-typed identifiers for workers, tasks, delivery
//!   points, and distribution centers;
//! * [`entities`] — the paper's Definitions 1–4: distribution centers,
//!   delivery points, spatial tasks, and workers;
//! * [`instance`] — a complete problem instance with validation and the
//!   per-center decomposition the paper exploits for parallelism;
//! * [`route`] — delivery point sequences (Definition 5) with arrival
//!   times, deadline slack, and validity checks (Definition 6);
//! * [`payoff`] — worker payoff (Definition 7, Equation 1);
//! * [`assignment`] — spatial task assignments (Definition 8) with
//!   disjointness validation;
//! * [`builder`] — ergonomic instance construction with auto-assigned ids;
//! * [`fairness`] — the payoff difference `P_dif` (Equation 2) plus
//!   auxiliary fairness indices (Gini, Jain, min–max ratio);
//! * [`iau`] — Inequity Aversion based Utility (Equations 5–7);
//! * [`priority`] — priority-aware fairness, the paper's future-work
//!   extension: entitlement-weighted payoff differences and IAU;
//! * [`fig1`] — the hand-built worked example of the paper's Figure 1,
//!   used by the quickstart example and by tests.
//!
//! The crate is deliberately free of I/O, randomness, and threading; those
//! concerns live in `fta-data`, `fta-algorithms`, and `fta-experiments`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod assignment;
pub mod budget;
pub mod builder;
pub mod churn;
pub mod entities;
pub mod error;
pub mod fairness;
pub mod fig1;
pub mod geometry;
pub mod iau;
pub mod ids;
pub mod instance;
pub mod payoff;
pub mod priority;
pub mod route;
pub mod shard;

pub use assignment::Assignment;
pub use budget::{set_exhaustion_observer, CancelToken, SolveBudget};
pub use churn::{CenterChurn, ChurnSet};
pub use entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
pub use error::{FtaError, Result};
pub use fairness::FairnessReport;
pub use geometry::Point;
pub use iau::IauParams;
pub use ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
pub use instance::{CenterView, DpAggregate, Instance};
pub use route::Route;
pub use shard::{ShardBy, ShardPlan};

//! Spatial task assignments (Definition 8).

use crate::error::{FtaError, Result};
use crate::fairness::FairnessReport;
use crate::ids::{DeliveryPointId, WorkerId};
use crate::instance::Instance;
use crate::payoff::worker_payoff;
use crate::route::Route;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A spatial task assignment: a set of `(worker, VDPS)` pairs with pairwise
/// disjoint delivery point sets (Definition 8).
///
/// Workers playing the `null` strategy (no delivery tasks) are simply absent
/// from the map; their payoff is `0`. A `BTreeMap` keeps iteration order
/// deterministic, which makes every metric and report reproducible.
///
/// Routes are stored behind [`Arc`] so that materialising an assignment
/// from a strategy-space pool, merging per-center solutions, and handing
/// planned routes to the simulator all share one allocation per route
/// instead of deep-copying the stop vector at every boundary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    choices: BTreeMap<WorkerId, Arc<Route>>,
}

impl Assignment {
    /// Creates an empty assignment (all workers on the `null` strategy).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `route` to `worker`, replacing any previous route. Returns
    /// the previous route, if any. Accepts either an owned [`Route`] or an
    /// already-shared [`Arc<Route>`] (the latter is a refcount bump).
    pub fn assign(&mut self, worker: WorkerId, route: impl Into<Arc<Route>>) -> Option<Arc<Route>> {
        self.choices.insert(worker, route.into())
    }

    /// Reverts `worker` to the `null` strategy; returns the removed route.
    pub fn unassign(&mut self, worker: WorkerId) -> Option<Arc<Route>> {
        self.choices.remove(&worker)
    }

    /// The route assigned to `worker`, if any.
    #[must_use]
    pub fn route_of(&self, worker: WorkerId) -> Option<&Route> {
        self.choices.get(&worker).map(Arc::as_ref)
    }

    /// Number of workers with a non-null strategy.
    #[must_use]
    pub fn assigned_workers(&self) -> usize {
        self.choices.len()
    }

    /// Iterates over `(worker, route)` pairs in worker-id order.
    pub fn iter(&self) -> impl Iterator<Item = (WorkerId, &Route)> {
        self.choices.iter().map(|(&w, r)| (w, r.as_ref()))
    }

    /// Iterates over `(worker, route)` pairs in worker-id order, yielding
    /// shared handles. Cloning the yielded [`Arc`] is a refcount bump, not
    /// a deep copy — the simulator uses this to keep per-tick planned
    /// routes alive past the assignment itself.
    pub fn iter_shared(&self) -> impl Iterator<Item = (WorkerId, Arc<Route>)> + '_ {
        self.choices.iter().map(|(&w, r)| (w, Arc::clone(r)))
    }

    /// Merges another assignment into this one (used to combine per-center
    /// solutions). Workers present in both keep `other`'s route.
    pub fn merge(&mut self, other: Assignment) {
        self.choices.extend(other.choices);
    }

    /// Payoff of `worker` under this assignment (`0` for the null strategy).
    #[must_use]
    pub fn payoff_of(&self, instance: &Instance, worker: WorkerId) -> f64 {
        self.choices
            .get(&worker)
            .map_or(0.0, |r| worker_payoff(instance, worker, r))
    }

    /// Payoff vector for the given population of workers, in their order.
    #[must_use]
    pub fn payoffs(&self, instance: &Instance, workers: &[WorkerId]) -> Vec<f64> {
        workers
            .iter()
            .map(|&w| self.payoff_of(instance, w))
            .collect()
    }

    /// All fairness metrics for the given population.
    #[must_use]
    pub fn fairness(&self, instance: &Instance, workers: &[WorkerId]) -> FairnessReport {
        FairnessReport::from_payoffs(&self.payoffs(instance, workers))
    }

    /// Total number of delivery points covered by the assignment.
    #[must_use]
    pub fn covered_dps(&self) -> usize {
        self.choices.values().map(|r| r.len()).sum()
    }

    /// Total reward collected by all workers.
    #[must_use]
    pub fn total_reward(&self) -> f64 {
        self.choices.values().map(|r| r.total_reward()).sum()
    }

    /// Renders a human-readable summary: one line per assigned worker with
    /// its route, reward, and payoff, followed by the fairness report over
    /// `workers`.
    #[must_use]
    pub fn summary(&self, instance: &Instance, workers: &[WorkerId]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (worker, route) in self.iter() {
            let stops: Vec<String> = route.dps().iter().map(ToString::to_string).collect();
            let _ = writeln!(
                out,
                "{worker}: {} | reward {:.2}, payoff {:.3}",
                stops.join(" -> "),
                route.total_reward(),
                self.payoff_of(instance, worker),
            );
        }
        let report = self.fairness(instance, workers);
        let _ = writeln!(
            out,
            "assigned {}/{} workers | P_dif {:.3} | average payoff {:.3} | jain {:.3}",
            self.assigned_workers(),
            workers.len(),
            report.payoff_difference,
            report.average_payoff,
            report.jain,
        );
        out
    }

    /// Validates the assignment against `instance`:
    ///
    /// * every route is valid for its worker (deadlines, `maxDP`, center);
    /// * delivery point sets are pairwise disjoint.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, instance: &Instance) -> Result<()> {
        let mut owner: BTreeMap<DeliveryPointId, WorkerId> = BTreeMap::new();
        for (&worker, route) in &self.choices {
            route.validate_for(instance, worker)?;
            for &dp in route.dps() {
                if let Some(&first) = owner.get(&dp) {
                    return Err(FtaError::OverlappingAssignment {
                        first,
                        second: worker,
                        delivery_point: dp,
                    });
                }
                owner.insert(dp, worker);
            }
        }
        Ok(())
    }
}

impl FromIterator<(WorkerId, Route)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (WorkerId, Route)>>(iter: T) -> Self {
        Self {
            choices: iter.into_iter().map(|(w, r)| (w, Arc::new(r))).collect(),
        }
    }
}

impl FromIterator<(WorkerId, Arc<Route>)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (WorkerId, Arc<Route>)>>(iter: T) -> Self {
        Self {
            choices: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
    use crate::geometry::Point;
    use crate::ids::{CenterId, TaskId};

    fn instance() -> Instance {
        Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(0.0, 0.0),
            }],
            vec![
                Worker {
                    id: WorkerId(0),
                    location: Point::new(-1.0, 0.0),
                    max_dp: 2,
                    center: CenterId(0),
                },
                Worker {
                    id: WorkerId(1),
                    location: Point::new(1.0, 1.0),
                    max_dp: 2,
                    center: CenterId(0),
                },
            ],
            vec![
                DeliveryPoint {
                    id: DeliveryPointId(0),
                    location: Point::new(1.0, 0.0),
                    center: CenterId(0),
                },
                DeliveryPoint {
                    id: DeliveryPointId(1),
                    location: Point::new(0.0, 1.0),
                    center: CenterId(0),
                },
            ],
            vec![
                SpatialTask {
                    id: TaskId(0),
                    delivery_point: DeliveryPointId(0),
                    expiry: 10.0,
                    reward: 2.0,
                },
                SpatialTask {
                    id: TaskId(1),
                    delivery_point: DeliveryPointId(1),
                    expiry: 10.0,
                    reward: 3.0,
                },
            ],
            1.0,
        )
        .unwrap()
    }

    fn route(inst: &Instance, dps: &[u32]) -> Route {
        let aggs = inst.dp_aggregates();
        Route::build(
            inst,
            &aggs,
            CenterId(0),
            dps.iter().copied().map(DeliveryPointId).collect(),
        )
        .unwrap()
    }

    #[test]
    fn disjoint_assignment_validates() {
        let inst = instance();
        let mut a = Assignment::new();
        a.assign(WorkerId(0), route(&inst, &[0]));
        a.assign(WorkerId(1), route(&inst, &[1]));
        assert!(a.validate(&inst).is_ok());
        assert_eq!(a.assigned_workers(), 2);
        assert_eq!(a.covered_dps(), 2);
        assert_eq!(a.total_reward(), 5.0);
    }

    #[test]
    fn overlapping_assignment_is_rejected() {
        let inst = instance();
        let mut a = Assignment::new();
        a.assign(WorkerId(0), route(&inst, &[0, 1]));
        a.assign(WorkerId(1), route(&inst, &[1]));
        assert!(matches!(
            a.validate(&inst),
            Err(FtaError::OverlappingAssignment {
                delivery_point: DeliveryPointId(1),
                ..
            })
        ));
    }

    #[test]
    fn null_strategy_workers_have_zero_payoff() {
        let inst = instance();
        let mut a = Assignment::new();
        a.assign(WorkerId(0), route(&inst, &[0]));
        let payoffs = a.payoffs(&inst, &[WorkerId(0), WorkerId(1)]);
        // w0: reward 2, travel 1 (to dc) + 1 (to dp0) = 2 → payoff 1.
        assert!((payoffs[0] - 1.0).abs() < 1e-12);
        assert_eq!(payoffs[1], 0.0);
    }

    #[test]
    fn unassign_restores_null_strategy() {
        let inst = instance();
        let mut a = Assignment::new();
        a.assign(WorkerId(0), route(&inst, &[0]));
        assert!(a.unassign(WorkerId(0)).is_some());
        assert!(a.route_of(WorkerId(0)).is_none());
        assert_eq!(a.payoff_of(&inst, WorkerId(0)), 0.0);
    }

    #[test]
    fn merge_combines_center_solutions() {
        let inst = instance();
        let mut a = Assignment::new();
        a.assign(WorkerId(0), route(&inst, &[0]));
        let mut b = Assignment::new();
        b.assign(WorkerId(1), route(&inst, &[1]));
        a.merge(b);
        assert_eq!(a.assigned_workers(), 2);
        assert!(a.validate(&inst).is_ok());
    }

    #[test]
    fn fairness_report_over_population() {
        let inst = instance();
        let mut a = Assignment::new();
        a.assign(WorkerId(0), route(&inst, &[0]));
        let report = a.fairness(&inst, &[WorkerId(0), WorkerId(1)]);
        assert!(report.payoff_difference > 0.0);
        assert!((report.average_payoff - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_lists_routes_and_metrics() {
        let inst = instance();
        let mut a = Assignment::new();
        a.assign(WorkerId(0), route(&inst, &[0, 1]));
        let text = a.summary(&inst, &[WorkerId(0), WorkerId(1)]);
        assert!(text.contains("w0: dp0 -> dp1"));
        assert!(text.contains("reward 5.00"));
        assert!(text.contains("assigned 1/2 workers"));
        assert!(text.contains("P_dif"));
    }

    #[test]
    fn from_iterator_builds_assignment() {
        let inst = instance();
        let a: Assignment = vec![(WorkerId(0), route(&inst, &[0]))]
            .into_iter()
            .collect();
        assert_eq!(a.assigned_workers(), 1);
    }
}

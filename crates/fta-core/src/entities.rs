//! The paper's core entities (Definitions 1–4).

use crate::geometry::Point;
use crate::ids::{CenterId, DeliveryPointId, TaskId};
use serde::{Deserialize, Serialize};

/// A distribution center (Definition 1): the pickup location from which every
/// assigned worker collects tasks before visiting delivery points.
///
/// The tasks and delivery points belonging to a center are not stored inline;
/// they are recovered from the owning [`Instance`](crate::Instance) via the
/// `center` fields on [`DeliveryPoint`] and [`Worker`], keeping the entity
/// types plain-old-data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionCenter {
    /// Dense identifier of this center.
    pub id: CenterId,
    /// Location `dc.l`.
    pub location: Point,
}

/// A delivery point (Definition 2): a drop-off location with an associated
/// set of tasks (the deliveries destined for it).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeliveryPoint {
    /// Dense identifier of this delivery point.
    pub id: DeliveryPointId,
    /// Location `dp.l`.
    pub location: Point,
    /// The distribution center whose tasks are delivered here.
    pub center: CenterId,
}

/// A spatial task (Definition 3): one delivery from the distribution center
/// to a delivery point, with an expiration deadline and a reward.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialTask {
    /// Dense identifier of this task.
    pub id: TaskId,
    /// The delivery point `s.dp` the task must be delivered to.
    pub delivery_point: DeliveryPointId,
    /// Expiration deadline `s.e`, in hours from the assignment instant. A
    /// worker must *arrive* at the delivery point no later than this.
    pub expiry: f64,
    /// Reward `s.r` earned by the worker completing the task.
    pub reward: f64,
}

/// A worker (Definition 4): an online participant able to perform tasks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Dense identifier of this worker.
    pub id: crate::ids::WorkerId,
    /// Current location `w.l`.
    pub location: Point,
    /// Maximum acceptable number of delivery points `w.maxDP` the worker is
    /// willing to visit in one assignment.
    pub max_dp: usize,
    /// The (single) distribution center the worker works for; the paper
    /// assumes each worker serves exactly one center.
    pub center: CenterId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::WorkerId;

    #[test]
    fn entities_are_copy_and_comparable() {
        let dc = DistributionCenter {
            id: CenterId(0),
            location: Point::new(2.0, 2.0),
        };
        let dc2 = dc; // Copy
        assert_eq!(dc, dc2);

        let dp = DeliveryPoint {
            id: DeliveryPointId(1),
            location: Point::new(0.0, 1.0),
            center: CenterId(0),
        };
        assert_eq!(dp.center, dc.id);

        let task = SpatialTask {
            id: TaskId(0),
            delivery_point: dp.id,
            expiry: 2.5,
            reward: 1.0,
        };
        assert_eq!(task.delivery_point, dp.id);

        let w = Worker {
            id: WorkerId(0),
            location: Point::new(1.0, 2.0),
            max_dp: 3,
            center: CenterId(0),
        };
        assert_eq!(w.max_dp, 3);
    }

    #[test]
    fn serde_round_trip() {
        let task = SpatialTask {
            id: TaskId(5),
            delivery_point: DeliveryPointId(2),
            expiry: 1.5,
            reward: 2.0,
        };
        let json = serde_json::to_string(&task).unwrap();
        let back: SpatialTask = serde_json::from_str(&json).unwrap();
        assert_eq!(task, back);
    }
}

//! Property-based tests for the domain layer: fairness metrics, IAU, and
//! route construction invariants.

use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use fta_core::fairness::{average_payoff, gini, jain_index, min_max_ratio, payoff_difference};
use fta_core::geometry::Point;
use fta_core::iau::{iau, IauEvaluator, IauParams, RivalSet};
use fta_core::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use fta_core::instance::Instance;
use fta_core::route::Route;
use proptest::prelude::*;

fn payoff_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..100.0, 0..max_len)
}

fn naive_payoff_difference(payoffs: &[f64]) -> f64 {
    let n = payoffs.len();
    if n < 2 {
        return 0.0;
    }
    let mut sum = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                sum += (payoffs[i] - payoffs[j]).abs();
            }
        }
    }
    sum / (n * (n - 1)) as f64
}

proptest! {
    #[test]
    fn payoff_difference_matches_naive(p in payoff_vec(40)) {
        let fast = payoff_difference(&p);
        let naive = naive_payoff_difference(&p);
        prop_assert!((fast - naive).abs() < 1e-8, "{fast} vs {naive}");
    }

    #[test]
    fn fairness_metrics_stay_in_range(p in payoff_vec(40)) {
        prop_assert!(payoff_difference(&p) >= 0.0);
        let g = gini(&p);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
        let j = jain_index(&p);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "jain {j}");
        let m = min_max_ratio(&p);
        prop_assert!((0.0..=1.0).contains(&m), "min/max {m}");
    }

    #[test]
    fn payoff_difference_is_translation_and_permutation_stable(
        p in payoff_vec(20),
        shift in 0.0f64..50.0,
        rot in 0usize..19,
    ) {
        let base = payoff_difference(&p);
        // Translation invariance (differences cancel shifts).
        let shifted: Vec<f64> = p.iter().map(|x| x + shift).collect();
        prop_assert!((payoff_difference(&shifted) - base).abs() < 1e-8);
        // Permutation invariance.
        if !p.is_empty() {
            let mut rotated = p.clone();
            rotated.rotate_left(rot % p.len());
            prop_assert!((payoff_difference(&rotated) - base).abs() < 1e-10);
        }
    }

    #[test]
    fn equalizing_transfer_reduces_unfairness(
        mut p in prop::collection::vec(0.0f64..100.0, 2..20),
        frac in 0.0f64..=0.5,
    ) {
        // A Pigou–Dalton transfer from the richest to the poorest worker
        // must not increase the payoff difference.
        let before = payoff_difference(&p);
        let (max_i, _) = p.iter().enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        let (min_i, _) = p.iter().enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap();
        let transfer = (p[max_i] - p[min_i]) * frac / 2.0;
        p[max_i] -= transfer;
        p[min_i] += transfer;
        let after = payoff_difference(&p);
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
    }

    #[test]
    fn iau_evaluator_matches_direct_formula(
        others in prop::collection::vec(0.0f64..50.0, 0..30),
        own in 0.0f64..50.0,
        alpha in 0.0f64..2.0,
        beta in 0.0f64..2.0,
    ) {
        let params = IauParams { alpha, beta };
        let eval = IauEvaluator::new(&others, params);
        let direct = iau(own, &others, params);
        prop_assert!((eval.eval(own) - direct).abs() < 1e-8);
    }

    #[test]
    fn iau_is_bounded_by_raw_payoff(
        others in prop::collection::vec(0.0f64..50.0, 1..30),
        own in 0.0f64..50.0,
        alpha in 0.0f64..2.0,
        beta in 0.0f64..2.0,
    ) {
        // Both penalty terms are non-negative, so IAU ≤ payoff, with
        // equality iff everyone is equal.
        let params = IauParams { alpha, beta };
        prop_assert!(iau(own, &others, params) <= own + 1e-12);
    }

    #[test]
    fn rival_set_matches_direct_iau_under_arbitrary_updates(
        ops in prop::collection::vec((0.0f64..50.0, prop::bool::ANY, 0u16..u16::MAX), 1..50),
        own in 0.0f64..50.0,
        alpha in 0.0f64..2.0,
        beta in 0.0f64..2.0,
    ) {
        // Drive a RivalSet through an arbitrary insert/remove sequence and
        // shadow it with a plain vector: after EVERY operation the
        // incremental aggregates and the IAU of a probe payoff must match
        // the direct formulas.
        let params = IauParams { alpha, beta };
        let mut set = RivalSet::new(params);
        let mut shadow: Vec<f64> = Vec::new();
        for (v, remove, pick) in ops {
            if remove && !shadow.is_empty() {
                let victim = shadow.swap_remove(pick as usize % shadow.len());
                set.remove(victim);
            } else {
                set.insert(v);
                shadow.push(v);
            }
            prop_assert_eq!(set.len(), shadow.len());
            let total: f64 = shadow.iter().sum();
            prop_assert!((set.total() - total).abs() < 1e-8 * (1.0 + total.abs()));
            let mut s_direct = 0.0;
            for i in 0..shadow.len() {
                for j in (i + 1)..shadow.len() {
                    s_direct += (shadow[i] - shadow[j]).abs();
                }
            }
            prop_assert!(
                (set.pairwise_diff_sum() - s_direct).abs() < 1e-8 * (1.0 + s_direct),
                "S drifted: {} vs {}", set.pairwise_diff_sum(), s_direct
            );
            let direct = iau(own, &shadow, params);
            prop_assert!(
                (set.eval(own) - direct).abs() < 1e-8 * (1.0 + direct.abs()),
                "IAU mismatch: {} vs {}", set.eval(own), direct
            );
        }
    }

    #[test]
    fn average_payoff_between_min_and_max(p in prop::collection::vec(0.0f64..100.0, 1..30)) {
        let avg = average_payoff(&p);
        let min = p.iter().copied().fold(f64::INFINITY, f64::min);
        let max = p.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= min - 1e-12 && avg <= max + 1e-12);
    }
}

/// A random single-center instance on arbitrary points.
fn arb_instance() -> impl Strategy<Value = (Instance, Vec<DeliveryPointId>)> {
    let dp = (0.0f64..10.0, 0.0f64..10.0, 0.5f64..30.0);
    prop::collection::vec(dp, 1..6).prop_map(|dps| {
        let delivery_points: Vec<DeliveryPoint> = dps
            .iter()
            .enumerate()
            .map(|(i, &(x, y, _))| DeliveryPoint {
                id: DeliveryPointId::from_index(i),
                location: Point::new(x, y),
                center: CenterId(0),
            })
            .collect();
        let tasks: Vec<SpatialTask> = dps
            .iter()
            .enumerate()
            .map(|(i, &(_, _, e))| SpatialTask {
                id: TaskId::from_index(i),
                delivery_point: DeliveryPointId::from_index(i),
                expiry: e,
                reward: 1.0,
            })
            .collect();
        let order: Vec<DeliveryPointId> = delivery_points.iter().map(|d| d.id).collect();
        let instance = Instance::new(
            vec![DistributionCenter {
                id: CenterId(0),
                location: Point::new(5.0, 5.0),
            }],
            vec![Worker {
                id: WorkerId(0),
                location: Point::new(4.0, 5.0),
                max_dp: dps.len(),
                center: CenterId(0),
            }],
            delivery_points,
            tasks,
            1.0,
        )
        .expect("generated instances are valid");
        (instance, order)
    })
}

proptest! {
    #[test]
    fn route_offsets_are_strictly_increasing_along_distinct_points(
        (instance, order) in arb_instance()
    ) {
        let aggs = instance.dp_aggregates();
        let route = Route::build(&instance, &aggs, CenterId(0), order).unwrap();
        let offsets = route.arrival_offsets();
        for pair in offsets.windows(2) {
            prop_assert!(pair[1] >= pair[0] - 1e-12);
        }
        prop_assert!((route.travel_from_dc() - offsets.last().unwrap()).abs() < 1e-12);
    }

    #[test]
    fn route_slack_certifies_worker_validity(
        (instance, order) in arb_instance(),
        to_dc in 0.0f64..20.0,
    ) {
        let aggs = instance.dp_aggregates();
        let route = Route::build(&instance, &aggs, CenterId(0), order).unwrap();
        // Validity via slack must agree with a direct deadline re-check
        // whenever we are not within floating-point reach of the boundary.
        if (route.slack() - to_dc).abs() > 1e-9 {
            let direct_valid = route
                .dps()
                .iter()
                .zip(route.arrival_offsets())
                .all(|(dp, &off)| to_dc + off <= aggs[dp.index()].earliest_expiry);
            prop_assert_eq!(route.is_valid_for_travel(to_dc), direct_valid);
        }
    }
}

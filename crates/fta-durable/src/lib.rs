//! # fta-durable — checksummed commit log + snapshots, crash-consistent recovery
//!
//! ROADMAP item 3: a daemon restart (or a panic-quarantined shard) must
//! restore mid-day state *deterministically*. Longitudinal fairness makes
//! this load-bearing for correctness, not just availability — per-worker
//! cumulative income is state, and losing it silently resets the fairness
//! guarantee mid-day. This crate is the storage half of that contract,
//! split SpacetimeDB-style into a commit log and a snapshot store:
//!
//! * [`log`] — `fta-wal` v1: an append-only file of length-prefixed,
//!   CRC32C-checksummed frames with a configurable [`FsyncPolicy`]. The
//!   reader stops at the first bad checksum, so a torn final frame (the
//!   signature of a crash mid-append) costs exactly the torn round.
//! * [`snapshot`] — self-checksummed full-state snapshots written via
//!   temp-file + atomic rename, taken every N rounds, after which the log
//!   is truncated.
//! * [`Journal`] / [`recover`] — the writer and reader orchestration used
//!   by `fta-sim`. Frame payloads are opaque bytes here; their schema (sim
//!   state, solver-cache seed, round metadata) lives in `fta_sim::state`.
//!
//! Every frame journaled by the simulator is a *self-contained* recovery
//! point, so recovery never replays logic — it decodes the newest intact
//! payload (last clean log frame, else newest valid snapshot) and resumes
//! the deterministic event loop from there. That is what makes the
//! bit-for-bit pin against an uninterrupted run testable: there is no
//! divergent replay path to drift.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod crc32c;
pub mod log;
pub mod snapshot;
pub mod wire;

pub use log::{read_log, CommitLog, FsyncPolicy, LogRead};
pub use snapshot::{latest_valid_snapshot, read_snapshot, write_snapshot, Snapshot};

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the commit-log file inside a durable directory.
pub const WAL_FILE: &str = "wal.fta";

/// Typed failures of the durability layer. Everything a full disk, a torn
/// write, or a stale directory can produce is represented here — recovery
/// and journaling never panic on I/O.
#[derive(Debug)]
pub enum DurableError {
    /// Underlying filesystem error (full disk, permissions, ...).
    Io(io::Error),
    /// The named file does not start with the expected magic bytes.
    BadMagic(&'static str),
    /// Container version this build does not speak.
    BadVersion {
        /// Version this build writes and reads.
        expected: u32,
        /// Version found in the file.
        found: u32,
    },
    /// Stored checksum does not match the payload.
    BadChecksum {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum computed over the payload.
        found: u32,
    },
    /// The journal belongs to a different scenario/config than the one
    /// recovery was asked to restore — refusing prevents a wrong-state
    /// restore that would be silently plausible.
    FingerprintMismatch {
        /// Fingerprint of the scenario/config being restored.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// The directory holds no snapshot and no clean log frame.
    NoState,
    /// Structural corruption with a static description.
    Corrupt(&'static str),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "durable I/O error: {e}"),
            Self::BadMagic(what) => write!(f, "{what}: bad magic bytes"),
            Self::BadVersion { expected, found } => {
                write!(
                    f,
                    "unsupported container version {found} (expected {expected})"
                )
            }
            Self::BadChecksum { expected, found } => write!(
                f,
                "checksum mismatch: header says {expected:#010x}, payload is {found:#010x}"
            ),
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "journal fingerprint {found:#018x} does not match scenario/config {expected:#018x}"
            ),
            Self::NoState => write!(f, "no recoverable state in durable directory"),
            Self::Corrupt(what) => write!(f, "corrupt durable data: {what}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writer orchestration: one commit log plus periodic snapshots in a
/// single directory. Each recorded payload must be a self-contained
/// recovery point; on snapshot rounds the same payload is persisted as a
/// snapshot and the log is truncated.
pub struct Journal {
    dir: PathBuf,
    log: CommitLog,
    fingerprint: u64,
    snapshot_every: u64,
    rounds_since_snapshot: u64,
    snapshots: u64,
}

impl Journal {
    /// Creates `dir` (and parents) and starts a fresh journal in it. An
    /// existing journal in the directory is truncated — pass the directory
    /// to [`recover`] first if its contents matter.
    pub fn create(
        dir: &Path,
        fingerprint: u64,
        policy: FsyncPolicy,
        snapshot_every: u64,
    ) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir)?;
        let log = CommitLog::create(&dir.join(WAL_FILE), fingerprint, policy)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            log,
            fingerprint,
            snapshot_every: snapshot_every.max(1),
            rounds_since_snapshot: 0,
            snapshots: 0,
        })
    }

    /// Reopens the journal of a recovered directory for appending,
    /// positioned after the last clean frame so a torn tail is overwritten.
    pub fn resume(
        dir: &Path,
        fingerprint: u64,
        policy: FsyncPolicy,
        snapshot_every: u64,
        recovered: &Recovery,
    ) -> Result<Self, DurableError> {
        let wal = dir.join(WAL_FILE);
        let log = if recovered.log_valid_len >= log::WAL_HEADER_LEN {
            CommitLog::open_at(&wal, recovered.log_valid_len, policy)?
        } else {
            CommitLog::create(&wal, fingerprint, policy)?
        };
        Ok(Self {
            dir: dir.to_path_buf(),
            log,
            fingerprint,
            snapshot_every: snapshot_every.max(1),
            rounds_since_snapshot: recovered.frames.len() as u64,
            snapshots: 0,
        })
    }

    /// Journals one round's self-contained payload; on every
    /// `snapshot_every`-th call also persists it as a snapshot and
    /// truncates the log.
    pub fn record(&mut self, round: u64, payload: &[u8]) -> Result<(), DurableError> {
        self.log.append(payload)?;
        self.rounds_since_snapshot += 1;
        if self.rounds_since_snapshot >= self.snapshot_every {
            let sync = self.log.policy() != FsyncPolicy::Never;
            snapshot::write_snapshot(&self.dir, round, self.fingerprint, payload, sync)?;
            self.log.truncate()?;
            self.rounds_since_snapshot = 0;
            self.snapshots += 1;
        }
        Ok(())
    }

    /// Flushes frames the fsync policy left buffered in the page cache.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.log.sync()
    }

    /// Frames appended through this journal.
    pub fn frames_written(&self) -> u64 {
        self.log.frames_written()
    }

    /// Snapshots persisted through this journal.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots
    }
}

/// Everything recovery could extract from a durable directory.
#[derive(Debug)]
pub struct Recovery {
    /// Newest snapshot that validated, if any.
    pub snapshot: Option<Snapshot>,
    /// Clean log frames in append order (payloads are opaque here).
    pub frames: Vec<Vec<u8>>,
    /// Journal fingerprint (from the log header, else the snapshot).
    pub fingerprint: u64,
    /// True when the log ended in a torn/truncated frame that was dropped.
    pub torn_tail: bool,
    /// Byte offset where clean log content ends (append resume point).
    pub log_valid_len: u64,
    /// Error from the newest *invalid* snapshot, kept for diagnostics when
    /// an older snapshot (or the log alone) carried the recovery.
    pub skipped_snapshot: Option<DurableError>,
}

impl Recovery {
    /// The newest self-contained payload: last clean log frame, else the
    /// snapshot payload.
    pub fn newest_payload(&self) -> Option<&[u8]> {
        self.frames
            .last()
            .map(|f| f.as_slice())
            .or_else(|| self.snapshot.as_ref().map(|s| s.payload.as_slice()))
    }
}

/// Scans a durable directory: newest valid snapshot plus the clean log
/// tail. Emits `wal.torn_tail` to obs and a flight-ring mark when a torn
/// frame was dropped. Fails typed on a missing/empty directory
/// ([`DurableError::NoState`]), foreign files ([`DurableError::BadMagic`])
/// or a fingerprint mismatch when `expected_fingerprint` is given.
pub fn recover(dir: &Path, expected_fingerprint: Option<u64>) -> Result<Recovery, DurableError> {
    if !dir.is_dir() {
        return Err(DurableError::NoState);
    }
    let (snapshot, skipped_snapshot) = snapshot::latest_valid_snapshot(dir)?;
    let log = read_log(&dir.join(WAL_FILE))?;
    let fingerprint = if log.valid_len >= log::WAL_HEADER_LEN {
        log.fingerprint
    } else {
        snapshot.as_ref().map(|s| s.fingerprint).unwrap_or(0)
    };
    if snapshot.is_none() && log.frames.is_empty() {
        return Err(DurableError::NoState);
    }
    if let Some(expected) = expected_fingerprint {
        if fingerprint != expected {
            return Err(DurableError::FingerprintMismatch {
                expected,
                found: fingerprint,
            });
        }
        if let Some(snap) = &snapshot {
            if snap.fingerprint != expected {
                return Err(DurableError::FingerprintMismatch {
                    expected,
                    found: snap.fingerprint,
                });
            }
        }
    }
    if log.torn_tail {
        fta_obs::counter("wal.torn_tail", 1);
        fta_obs::ring::mark("wal-torn-tail", None);
    }
    fta_obs::ring::mark("wal-recover", None);
    Ok(Recovery {
        snapshot,
        frames: log.frames,
        fingerprint,
        torn_tail: log.torn_tail,
        log_valid_len: log.valid_len,
        skipped_snapshot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fta-durable-lib-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn journal_snapshot_cycle_and_recovery() {
        let dir = tmp("cycle");
        let mut j = Journal::create(&dir, 0xF00D, FsyncPolicy::Never, 3).unwrap();
        for round in 1..=7u64 {
            j.record(round, format!("state-{round}").as_bytes())
                .unwrap();
        }
        assert_eq!(j.snapshots_written(), 2); // after rounds 3 and 6
        drop(j);
        let rec = recover(&dir, Some(0xF00D)).unwrap();
        let snap = rec.snapshot.as_ref().unwrap();
        assert_eq!(snap.round, 6);
        assert_eq!(rec.frames, vec![b"state-7".to_vec()]);
        assert_eq!(rec.newest_payload().unwrap(), b"state-7");
        assert!(!rec.torn_tail);
    }

    #[test]
    fn missing_dir_is_no_state() {
        assert!(matches!(
            recover(&tmp("missing"), None),
            Err(DurableError::NoState)
        ));
    }

    #[test]
    fn empty_dir_is_no_state() {
        let dir = tmp("emptydir");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(recover(&dir, None), Err(DurableError::NoState)));
    }

    #[test]
    fn snapshot_only_recovers() {
        let dir = tmp("snaponly");
        fs::create_dir_all(&dir).unwrap();
        write_snapshot(&dir, 12, 5, b"snap-state", true).unwrap();
        let rec = recover(&dir, Some(5)).unwrap();
        assert_eq!(rec.newest_payload().unwrap(), b"snap-state");
        assert!(rec.frames.is_empty());
    }

    #[test]
    fn log_only_recovers() {
        let dir = tmp("logonly");
        let mut j = Journal::create(&dir, 9, FsyncPolicy::Never, 1000).unwrap();
        j.record(1, b"one").unwrap();
        j.record(2, b"two").unwrap();
        drop(j);
        let rec = recover(&dir, Some(9)).unwrap();
        assert!(rec.snapshot.is_none());
        assert_eq!(rec.newest_payload().unwrap(), b"two");
    }

    #[test]
    fn fingerprint_mismatch_refused() {
        let dir = tmp("fingerprint");
        let mut j = Journal::create(&dir, 0xAAAA, FsyncPolicy::Never, 1000).unwrap();
        j.record(1, b"state").unwrap();
        drop(j);
        assert!(matches!(
            recover(&dir, Some(0xBBBB)),
            Err(DurableError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn torn_tail_falls_back_to_previous_frame() {
        let dir = tmp("tornfallback");
        let mut j = Journal::create(&dir, 1, FsyncPolicy::Never, 1000).unwrap();
        j.record(1, b"good-round").unwrap();
        j.record(2, b"torn-round").unwrap();
        drop(j);
        let wal = dir.join(WAL_FILE);
        let full = fs::metadata(&wal).unwrap().len();
        fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(full - 4)
            .unwrap();
        let rec = recover(&dir, Some(1)).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.newest_payload().unwrap(), b"good-round");
        // Resume overwrites the torn bytes.
        let mut j = Journal::resume(&dir, 1, FsyncPolicy::Never, 1000, &rec).unwrap();
        j.record(2, b"retried-round").unwrap();
        drop(j);
        let rec = recover(&dir, Some(1)).unwrap();
        assert!(!rec.torn_tail);
        assert_eq!(
            rec.frames,
            vec![b"good-round".to_vec(), b"retried-round".to_vec()]
        );
    }

    #[test]
    fn zero_length_log_with_snapshot_resumes_clean() {
        let dir = tmp("zerolog");
        fs::create_dir_all(&dir).unwrap();
        write_snapshot(&dir, 4, 3, b"snap", true).unwrap();
        fs::write(dir.join(WAL_FILE), b"").unwrap();
        let rec = recover(&dir, Some(3)).unwrap();
        assert_eq!(rec.newest_payload().unwrap(), b"snap");
        assert!(!rec.torn_tail);
    }
}

//! Minimal binary wire codec shared by frames and snapshots.
//!
//! The journal stores floats as IEEE-754 bit patterns and integers as
//! fixed-width little-endian, because recovery is pinned *bit-for-bit*
//! against an uninterrupted run: a decimal round-trip (JSON) would be both
//! slower and lossy for the `u128` strategy masks the solver cache seeds
//! carry. The codec is deliberately schema-free — each payload type owns
//! its field order and bumps the container version when it changes.

use crate::DurableError;

/// Append-only byte sink with fixed-width little-endian primitives.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128` little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends an `Option` discriminant followed by the value if present.
    pub fn opt<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.u8(0),
            Some(inner) => {
                self.u8(1);
                f(self, inner);
            }
        }
    }

    /// Appends a length-prefixed sequence.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }
}

/// Bounds-checked cursor over an encoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` for decoding from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails decoding unless every byte was consumed — trailing garbage
    /// means the payload was produced by a different schema revision.
    pub fn finish(self) -> Result<(), DurableError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DurableError::Corrupt("trailing bytes after payload"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        if self.remaining() < n {
            return Err(DurableError::Corrupt("payload truncated"));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DurableError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DurableError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, DurableError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, DurableError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], DurableError> {
        let len = self.len_prefix()?;
        self.take(len)
    }

    /// Reads an `Option` discriminant and the value if present.
    pub fn opt<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, DurableError>,
    ) -> Result<Option<T>, DurableError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            _ => Err(DurableError::Corrupt("bad option discriminant")),
        }
    }

    /// Reads a length-prefixed sequence.
    pub fn seq<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, DurableError>,
    ) -> Result<Vec<T>, DurableError> {
        let len = self.len_prefix()?;
        let mut out = Vec::with_capacity(len.min(self.remaining()));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Reads a length prefix, rejecting lengths that exceed the buffer so a
    /// corrupt prefix cannot drive a huge allocation.
    fn len_prefix(&mut self) -> Result<usize, DurableError> {
        let len = self.u64()?;
        if len > self.remaining() as u64 * 17 {
            // Elements are at least one byte except empty-struct sequences;
            // the 17x slack covers Option<u128> worst cases without letting
            // a corrupt 2^60 prefix through.
            return Err(DurableError::Corrupt("length prefix exceeds payload"));
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::{Reader, Writer};

    #[test]
    fn round_trips_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.u128(u128::MAX / 3);
        w.f64(-0.1f64);
        w.f64(f64::NAN);
        w.bytes(b"frame");
        w.opt(&Some(42u64), |w, v| w.u64(*v));
        w.opt(&None::<u64>, |w, v| w.u64(*v));
        w.seq(&[1u64, 2, 3], |w, v| w.u64(*v));
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.bytes().unwrap(), b"frame");
        assert_eq!(r.opt(|r| r.u64()).unwrap(), Some(42));
        assert_eq!(r.opt(|r| r.u64()).unwrap(), None);
        assert_eq!(r.seq(|r| r.u64()).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.u64(99);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        let mut w = Writer::new();
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.seq(|r| r.u8()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.u32(1);
        w.u32(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.u32().unwrap();
        assert!(r.finish().is_err());
    }
}

//! Self-checksummed snapshot files with atomic installation.
//!
//! A snapshot captures the complete recovery payload (sim state + solver
//! cache seed) at a round boundary so the commit log can be truncated.
//! Durability comes from the rename protocol: the bytes are written to a
//! `.tmp` sibling, fsynced, then `rename(2)`d into place — a reader can
//! never observe a half-written `snap-*.ftas`, only the old file or the
//! new one. The header carries its own CRC so a snapshot corrupted at
//! rest is detected and skipped in favour of an older valid one.
//!
//! File layout:
//!
//! ```text
//! [ magic "FTASNAP1" : 8 ][ version : u32 ][ fingerprint : u64 ]
//! [ round : u64 ][ len : u64 ][ crc32c(payload) : u32 ][ payload ]
//! ```

use crate::crc32c::crc32c;
use crate::DurableError;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
pub const SNAP_MAGIC: [u8; 8] = *b"FTASNAP1";
/// Current snapshot container version.
pub const SNAP_VERSION: u32 = 1;
const SNAP_HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 4;

/// A decoded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// Scenario/config fingerprint the snapshot belongs to.
    pub fingerprint: u64,
    /// Simulator round the payload captures (state *after* this round).
    pub round: u64,
    /// Opaque recovery payload (owned by fta-sim's state codec).
    pub payload: Vec<u8>,
}

/// File name for the snapshot taken after `round`.
pub fn snapshot_name(round: u64) -> String {
    format!("snap-{round:010}.ftas")
}

/// Writes a snapshot via the temp-file + atomic-rename protocol.
///
/// `sync` controls whether the bytes (and the rename) are fsynced before
/// returning. The journal passes `false` under `FsyncPolicy::Never`: the
/// rename is still atomic in the VFS, so a *process* crash can never
/// observe a half-written snapshot — only power loss can, and recovery
/// then falls back to an older snapshot or the log, which is exactly the
/// loss envelope that policy opted into.
pub fn write_snapshot(
    dir: &Path,
    round: u64,
    fingerprint: u64,
    payload: &[u8],
    sync: bool,
) -> Result<PathBuf, DurableError> {
    let final_path = dir.join(snapshot_name(round));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_name(round)));
    let mut buf = Vec::with_capacity(SNAP_HEADER_LEN + payload.len());
    buf.extend_from_slice(&SNAP_MAGIC);
    buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    buf.extend_from_slice(&fingerprint.to_le_bytes());
    buf.extend_from_slice(&round.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&crc32c(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    {
        let mut tmp = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&buf)?;
        if sync {
            tmp.sync_all()?;
        }
    }
    fs::rename(&tmp_path, &final_path)?;
    // Persist the rename itself; non-fatal on filesystems that refuse
    // directory fsync, since the worst case is re-recovering from the
    // previous snapshot plus a longer log tail.
    if sync {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    fta_obs::counter("wal.snapshots", 1);
    Ok(final_path)
}

/// Reads and validates one snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, DurableError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    if raw.len() < SNAP_HEADER_LEN {
        return Err(DurableError::Corrupt("snapshot shorter than header"));
    }
    if raw[..8] != SNAP_MAGIC {
        return Err(DurableError::BadMagic("snapshot"));
    }
    let version = u32::from_le_bytes(raw[8..12].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(DurableError::BadVersion {
            expected: SNAP_VERSION,
            found: version,
        });
    }
    let fingerprint = u64::from_le_bytes(raw[12..20].try_into().unwrap());
    let round = u64::from_le_bytes(raw[20..28].try_into().unwrap());
    let len = u64::from_le_bytes(raw[28..36].try_into().unwrap());
    let crc = u32::from_le_bytes(raw[36..40].try_into().unwrap());
    let payload = &raw[SNAP_HEADER_LEN..];
    if payload.len() as u64 != len {
        return Err(DurableError::Corrupt("snapshot payload length mismatch"));
    }
    let found = crc32c(payload);
    if found != crc {
        return Err(DurableError::BadChecksum {
            expected: crc,
            found,
        });
    }
    Ok(Snapshot {
        fingerprint,
        round,
        payload: payload.to_vec(),
    })
}

/// Scans `dir` for the newest snapshot that validates, skipping corrupt or
/// version-mismatched files (an older valid snapshot plus a longer log
/// replay beats refusing to recover). Returns `None` when no snapshot
/// validates; the last error seen is returned alongside for diagnostics.
pub fn latest_valid_snapshot(
    dir: &Path,
) -> Result<(Option<Snapshot>, Option<DurableError>), DurableError> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("snap-") && name.ends_with(".ftas") {
            candidates.push(path);
        }
    }
    // Zero-padded round numbers sort lexicographically; newest last.
    candidates.sort();
    let mut last_err = None;
    for path in candidates.iter().rev() {
        match read_snapshot(path) {
            Ok(snap) => return Ok((Some(snap), last_err)),
            Err(e) => last_err = Some(e),
        }
    }
    Ok((None, last_err))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fta-durable-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmp("roundtrip");
        let path = write_snapshot(&dir, 42, 0xABCD, b"payload-bytes", true).unwrap();
        assert!(path.ends_with("snap-0000000042.ftas"));
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.round, 42);
        assert_eq!(snap.fingerprint, 0xABCD);
        assert_eq!(snap.payload, b"payload-bytes");
        assert!(!dir.join("snap-0000000042.ftas.tmp").exists());
    }

    #[test]
    fn corrupt_payload_detected() {
        let dir = tmp("corrupt");
        let path = write_snapshot(&dir, 1, 7, b"some payload", true).unwrap();
        let mut raw = fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0x10;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(DurableError::BadChecksum { .. })
        ));
    }

    #[test]
    fn version_mismatch_detected() {
        let dir = tmp("version");
        let path = write_snapshot(&dir, 1, 7, b"p", true).unwrap();
        let mut raw = fs::read(&path).unwrap();
        raw[8] = 99; // bump version field
        fs::write(&path, &raw).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(DurableError::BadVersion {
                expected: SNAP_VERSION,
                found: 99
            })
        ));
    }

    #[test]
    fn latest_valid_skips_corrupt_newest() {
        let dir = tmp("latest");
        write_snapshot(&dir, 10, 7, b"old-good", true).unwrap();
        let newest = write_snapshot(&dir, 20, 7, b"new-bad", true).unwrap();
        let mut raw = fs::read(&newest).unwrap();
        let n = raw.len();
        raw[n - 2] ^= 0xFF;
        fs::write(&newest, &raw).unwrap();
        let (snap, err) = latest_valid_snapshot(&dir).unwrap();
        let snap = snap.expect("older snapshot still recovers");
        assert_eq!(snap.round, 10);
        assert_eq!(snap.payload, b"old-good");
        assert!(err.is_some());
    }

    #[test]
    fn empty_dir_yields_none() {
        let dir = tmp("empty");
        let (snap, err) = latest_valid_snapshot(&dir).unwrap();
        assert!(snap.is_none());
        assert!(err.is_none());
    }
}

//! Software CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected).
//!
//! The WAL and snapshot formats checksum every payload with CRC32C — the
//! same polynomial iSCSI, ext4 and SpacetimeDB's commitlog use — because
//! it detects the failure modes a torn write actually produces (trailing
//! zero fill, truncation mid-frame) far better than a sum. Hardware SSE4.2
//! `crc32` would be faster but needs `unsafe` intrinsics; the slice-by-one
//! table below checksums a few-KiB round frame in well under a
//! microsecond, which is noise next to the `write(2)` call it guards.

/// Lazily-built 256-entry lookup table for the reflected Castagnoli poly.
const fn build_table() -> [u32; 256] {
    const POLY: u32 = 0x82F6_3B78; // 0x1EDC6F41 bit-reflected
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32C of `data` (init `!0`, final xor `!0` — the standard reflected
/// convention, matching the `crc32c` crate and RFC 3720 test vectors).
pub fn crc32c(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32c;

    /// RFC 3720 appendix B.4 test vectors.
    #[test]
    fn rfc3720_vectors() {
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn classic_check_value() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut buf = vec![0x5Au8; 97];
        let clean = crc32c(&buf);
        for i in 0..buf.len() {
            buf[i] ^= 0x01;
            assert_ne!(crc32c(&buf), clean, "flip at byte {i} undetected");
            buf[i] ^= 0x01;
        }
    }
}

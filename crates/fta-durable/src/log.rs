//! Append-only commit log of checksummed frames (`fta-wal` v1).
//!
//! File layout:
//!
//! ```text
//! [ magic "FTAWAL1\0" : 8 bytes ][ fingerprint : u64 LE ]      header
//! [ len : u32 LE ][ crc32c(payload) : u32 LE ][ payload ]      frame 0
//! [ len : u32 LE ][ crc32c(payload) : u32 LE ][ payload ]      frame 1
//! ...
//! ```
//!
//! The reader stops at the first frame that fails to parse cleanly — short
//! header, length running past EOF, or checksum mismatch — and reports
//! everything before it plus a `torn_tail` flag, mirroring the fta-flight
//! dump parser's "a clean parse *is* the integrity check" design. A torn
//! tail is the expected signature of a crash mid-append and costs exactly
//! the torn round; it is never an error.

use crate::crc32c::crc32c;
use crate::DurableError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every commit-log file.
pub const WAL_MAGIC: [u8; 8] = *b"FTAWAL1\0";
/// Header length: magic + fingerprint.
pub const WAL_HEADER_LEN: u64 = 16;
/// Per-frame overhead: length prefix + checksum.
pub const FRAME_HEADER_LEN: usize = 8;
/// Hard ceiling on a single frame; anything larger is corruption.
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// When the log file is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync(2)` after every appended frame — at most zero committed
    /// rounds lost on power failure, at the cost of a disk round-trip per
    /// simulator round.
    Always,
    /// `fsync(2)` every N frames — bounds loss to the last N rounds while
    /// amortising the flush. The default (`EveryN(8)`) is the recommended
    /// production setting.
    EveryN(u32),
    /// Never fsync; rely on the OS page cache. Survives process crashes
    /// (writes are in the kernel already) but not power loss.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always`, `never`, or a frame count for
    /// every-N (`every-n` alone means the default of 8).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(Self::Always),
            "never" => Some(Self::Never),
            "every-n" => Some(Self::EveryN(8)),
            n => n.parse::<u32>().ok().filter(|&n| n > 0).map(Self::EveryN),
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Always => write!(f, "always"),
            Self::EveryN(n) => write!(f, "every-{n}"),
            Self::Never => write!(f, "never"),
        }
    }
}

/// Writer half of the commit log.
pub struct CommitLog {
    file: File,
    policy: FsyncPolicy,
    since_sync: u32,
    frames: u64,
}

impl CommitLog {
    /// Creates (or truncates) the log at `path` and writes the header.
    pub fn create(
        path: &Path,
        fingerprint: u64,
        policy: FsyncPolicy,
    ) -> Result<Self, DurableError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&WAL_MAGIC)?;
        file.write_all(&fingerprint.to_le_bytes())?;
        file.sync_all()?;
        Ok(Self {
            file,
            policy,
            since_sync: 0,
            frames: 0,
        })
    }

    /// Opens an existing log for appending after recovery, positioning the
    /// cursor at `valid_len` (the end of the last clean frame) so a torn
    /// tail is overwritten rather than extended.
    pub fn open_at(path: &Path, valid_len: u64, policy: FsyncPolicy) -> Result<Self, DurableError> {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        let mut log = Self {
            file,
            policy,
            since_sync: 0,
            frames: 0,
        };
        log.file.seek(SeekFrom::Start(valid_len))?;
        Ok(log)
    }

    /// Appends one checksummed frame, honouring the fsync policy. Returns
    /// the on-disk size of the frame (payload + 8-byte frame header).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, DurableError> {
        debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
        let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32c(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.frames += 1;
        fta_obs::counter("wal.frames", 1);
        fta_obs::counter("wal.bytes", buf.len() as u64);
        let sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => {
                self.since_sync += 1;
                self.since_sync >= n
            }
            FsyncPolicy::Never => false,
        };
        if sync {
            self.file.sync_data()?;
            self.since_sync = 0;
            fta_obs::counter("wal.fsyncs", 1);
        }
        Ok(buf.len() as u64)
    }

    /// Truncates the log back to its header — called after a snapshot has
    /// been renamed into place, making the journaled rounds redundant.
    /// Under [`FsyncPolicy::Never`] the truncation stays in the page
    /// cache like everything else; otherwise it is fsynced so a power
    /// failure cannot resurrect pre-snapshot frames. (No sync is needed
    /// *before* `set_len`: the dropped frames are dead the moment the
    /// snapshot writer returned, and it already ordered the snapshot to
    /// disk.)
    pub fn truncate(&mut self) -> Result<(), DurableError> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        if self.policy != FsyncPolicy::Never {
            self.file.sync_data()?;
        }
        self.since_sync = 0;
        Ok(())
    }

    /// Flushes any frames the policy left unsynced.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.file.sync_data()?;
        self.since_sync = 0;
        fta_obs::counter("wal.fsyncs", 1);
        Ok(())
    }

    /// Frames appended through this handle.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// The fsync policy this log was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

/// Result of scanning a commit-log file.
#[derive(Debug)]
pub struct LogRead {
    /// Scenario/config fingerprint from the header.
    pub fingerprint: u64,
    /// Every frame payload that parsed cleanly, in append order.
    pub frames: Vec<Vec<u8>>,
    /// True when trailing bytes after the last clean frame failed to parse
    /// (crash mid-append). The torn bytes are ignored.
    pub torn_tail: bool,
    /// Byte offset of the end of the last clean frame — where appends must
    /// resume to overwrite the torn tail.
    pub valid_len: u64,
}

/// Reads a commit log, stopping at the first bad frame.
///
/// A missing or zero-length file reads as an empty log (a crash can land
/// between `create` and the header write); a partial header is a torn
/// tail; a wrong magic is a typed error — that file is not a WAL.
pub fn read_log(path: &Path) -> Result<LogRead, DurableError> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    if raw.is_empty() {
        return Ok(LogRead {
            fingerprint: 0,
            frames: Vec::new(),
            torn_tail: false,
            valid_len: 0,
        });
    }
    if raw.len() < WAL_HEADER_LEN as usize {
        return Ok(LogRead {
            fingerprint: 0,
            frames: Vec::new(),
            torn_tail: true,
            valid_len: 0,
        });
    }
    if raw[..8] != WAL_MAGIC {
        return Err(DurableError::BadMagic("commit log"));
    }
    let fingerprint = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    let mut frames = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    let mut torn_tail = false;
    let mut valid_len = pos as u64;
    while pos < raw.len() {
        let rest = &raw[pos..];
        if rest.len() < FRAME_HEADER_LEN {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN || rest.len() - FRAME_HEADER_LEN < len as usize {
            torn_tail = true;
            break;
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize];
        if crc32c(payload) != crc {
            torn_tail = true;
            break;
        }
        frames.push(payload.to_vec());
        pos += FRAME_HEADER_LEN + len as usize;
        valid_len = pos as u64;
    }
    Ok(LogRead {
        fingerprint,
        frames,
        torn_tail,
        valid_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fta-durable-log-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("wal.fta")
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = tmp("roundtrip");
        let mut log = CommitLog::create(&path, 0xFEED, FsyncPolicy::EveryN(2)).unwrap();
        log.append(b"round-0").unwrap();
        log.append(b"round-1").unwrap();
        log.append(&[]).unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.fingerprint, 0xFEED);
        assert_eq!(
            read.frames,
            vec![b"round-0".to_vec(), b"round-1".to_vec(), vec![]]
        );
        assert!(!read.torn_tail);
        assert_eq!(read.valid_len, fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn truncated_payload_is_torn_not_error() {
        let path = tmp("torn");
        let mut log = CommitLog::create(&path, 1, FsyncPolicy::Never).unwrap();
        log.append(b"kept-frame").unwrap();
        log.append(b"torn-frame").unwrap();
        drop(log);
        let full = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 3).unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.frames, vec![b"kept-frame".to_vec()]);
        assert!(read.torn_tail);
    }

    #[test]
    fn bad_crc_stops_the_scan() {
        let path = tmp("badcrc");
        let mut log = CommitLog::create(&path, 1, FsyncPolicy::Never).unwrap();
        log.append(b"good").unwrap();
        log.append(b"evil").unwrap();
        drop(log);
        let mut raw = fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xFF; // flip a payload byte of the last frame
        fs::write(&path, &raw).unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.frames, vec![b"good".to_vec()]);
        assert!(read.torn_tail);
    }

    #[test]
    fn zero_length_file_reads_empty() {
        let path = tmp("zerolen");
        fs::write(&path, b"").unwrap();
        let read = read_log(&path).unwrap();
        assert!(read.frames.is_empty());
        assert!(!read.torn_tail);
    }

    #[test]
    fn partial_header_is_torn() {
        let path = tmp("partialheader");
        fs::write(&path, &WAL_MAGIC[..5]).unwrap();
        let read = read_log(&path).unwrap();
        assert!(read.frames.is_empty());
        assert!(read.torn_tail);
    }

    #[test]
    fn wrong_magic_is_typed_error() {
        let path = tmp("badmagic");
        fs::write(&path, b"NOTAWAL!0123456789").unwrap();
        assert!(matches!(read_log(&path), Err(DurableError::BadMagic(_))));
    }

    #[test]
    fn truncate_then_append_resumes_clean() {
        let path = tmp("truncate");
        let mut log = CommitLog::create(&path, 9, FsyncPolicy::Always).unwrap();
        log.append(b"pre-snapshot").unwrap();
        log.truncate().unwrap();
        log.append(b"post-snapshot").unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.frames, vec![b"post-snapshot".to_vec()]);
        assert!(!read.torn_tail);
    }

    #[test]
    fn open_at_overwrites_torn_tail() {
        let path = tmp("reopen");
        let mut log = CommitLog::create(&path, 2, FsyncPolicy::Never).unwrap();
        log.append(b"solid").unwrap();
        log.append(b"will-be-torn").unwrap();
        drop(log);
        let full = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 2).unwrap();
        drop(f);
        let read = read_log(&path).unwrap();
        assert!(read.torn_tail);
        let mut log = CommitLog::open_at(&path, read.valid_len, FsyncPolicy::Never).unwrap();
        log.append(b"replacement").unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(
            read.frames,
            vec![b"solid".to_vec(), b"replacement".to_vec()]
        );
        assert!(!read.torn_tail);
    }
}

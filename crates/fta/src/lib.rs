//! # fta — Fairness-aware Task Assignment in Spatial Crowdsourcing
//!
//! A complete, from-scratch Rust implementation of the system described in
//! *Zhao, Yang, Zheng, Pedersen, Guo, Jensen: "Fairness-aware Task
//! Assignment in Spatial Crowdsourcing: Game-Theoretic Approaches"* (ICDE
//! 2021): the Valid Delivery Point Set generator (dynamic programming plus
//! distance-constrained pruning), the Fairness-aware Game-Theoretic (FGT)
//! and Improved Evolutionary Game-Theoretic (IEGT) assignment algorithms,
//! the MPTA/GTA baselines, the paper's two workloads, and an experiment
//! harness regenerating every table and figure of the evaluation.
//!
//! This facade crate re-exports the whole public API:
//!
//! * [`core`] (`fta-core`) — entities, routes, payoffs, IAU, fairness
//!   metrics;
//! * [`vdps`] (`fta-vdps`) — Algorithm 1 and the per-worker strategy
//!   spaces;
//! * [`algorithms`] (`fta-algorithms`) — GTA, MPTA, FGT, IEGT, exact and
//!   random baselines, and the whole-instance solver;
//! * [`data`] (`fta-data`) — synthetic and gMission-like workload
//!   generators, plus k-means;
//! * [`experiments`] (`fta-experiments`) — the paper's evaluation as a
//!   library;
//! * [`sim`] (`fta-sim`) — a discrete-event platform simulator streaming
//!   tasks through periodic assignment rounds (longitudinal fairness);
//! * [`obs`] (`fta-obs`) — opt-in telemetry: scoped spans, counters, and
//!   latency histograms with JSONL trace export and Prometheus snapshots.
//!
//! ## Quickstart
//!
//! ```
//! use fta::prelude::*;
//!
//! // The paper's Figure 1 instance: one distribution center, two workers,
//! // five delivery points.
//! let instance = fta::core::fig1::instance();
//!
//! // Solve with the Improved Evolutionary Game-Theoretic approach.
//! let outcome = solve(
//!     &instance,
//!     &SolveConfig {
//!         vdps: VdpsConfig::unpruned(3),
//!         ..SolveConfig::new(Algorithm::Iegt(IegtConfig::default()))
//!     },
//! );
//! assert!(outcome.assignment.validate(&instance).is_ok());
//!
//! // Every worker/route pair respects deadlines and disjointness, and the
//! // fairness report gives the paper's metrics.
//! let workers: Vec<_> = instance.workers.iter().map(|w| w.id).collect();
//! let report = outcome.assignment.fairness(&instance, &workers);
//! assert!(report.payoff_difference >= 0.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use fta_algorithms as algorithms;
pub use fta_core as core;
pub use fta_data as data;
pub use fta_experiments as experiments;
pub use fta_obs as obs;
pub use fta_sim as sim;
pub use fta_vdps as vdps;

/// One-stop imports for typical use.
pub mod prelude {
    pub use fta_algorithms::{
        solve, Algorithm, DegradationEvent, DegradationReport, FgtConfig, GameContext, IegtConfig,
        LadderRung, MptaConfig, PanicInjection, RedrawPolicy, SolveConfig, SolveOutcome,
    };
    pub use fta_core::{
        Assignment, CancelToken, CenterId, DeliveryPoint, DeliveryPointId, DistributionCenter,
        FairnessReport, FtaError, IauParams, Instance, Point, Route, SolveBudget, SpatialTask,
        TaskId, Worker, WorkerId,
    };
    pub use fta_data::{generate_gmission, generate_syn, GMissionConfig, SynConfig};
    pub use fta_experiments::{Dataset, RunnerOptions};
    pub use fta_obs::Recorder;
    pub use fta_sim::FaultPlan;
    pub use fta_vdps::{StrategySpace, VdpsConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_an_end_to_end_run() {
        let instance = generate_syn(
            &SynConfig {
                n_centers: 1,
                n_workers: 5,
                n_tasks: 40,
                n_delivery_points: 8,
                extent: 2.0,
                ..SynConfig::bench_scale()
            },
            1,
        );
        let outcome = solve(&instance, &SolveConfig::new(Algorithm::Gta));
        assert!(outcome.assignment.validate(&instance).is_ok());
    }
}

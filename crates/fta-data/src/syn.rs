//! The synthetic (SYN) workload generator (Section VII-A, Table I).
//!
//! Workers and delivery points are uniformly distributed over a square
//! extent; each worker and delivery point is associated with a random
//! distribution center; tasks are associated with random delivery points;
//! every task has reward 1.
//!
//! ## Spatial calibration
//!
//! The paper draws locations from `[0, 100]^2` with a worker speed of
//! 5 km/h and expiration times up to 2.5 h. Taken literally (kilometre
//! units) almost no delivery point would be reachable before expiry
//! (5 km/h × 2.5 h = 12.5 km of range in a 100 km square), so the paper's
//! coordinate unit cannot be a kilometre. We therefore default the extent
//! to a 10 km city (one paper coordinate unit = 0.1 km), which makes the
//! reachable fraction, chain lengths, and the ε thresholds of Table I
//! behave like the paper's plots. The extent is configurable for
//! sensitivity studies; see `DESIGN.md` §3 and `EXPERIMENTS.md`.

use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use fta_core::geometry::Point;
use fta_core::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use fta_core::instance::Instance;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic workload (Table I, SYN rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynConfig {
    /// Number of distribution centers (paper: 50).
    pub n_centers: usize,
    /// Number of workers `|W|` (paper default: 2 000).
    pub n_workers: usize,
    /// Number of tasks `|S|` (paper default: 100 000).
    pub n_tasks: usize,
    /// Number of delivery points `|DP|` (paper default: 5 000).
    pub n_delivery_points: usize,
    /// Task expiration `e` in hours (paper default: 2 h). Table I lists a
    /// single value per configuration, so every task expires at `e`.
    pub expiry: f64,
    /// Maximum acceptable delivery points per worker (paper default: 3).
    pub max_dp: usize,
    /// Worker speed in km/h (paper: 5).
    pub speed: f64,
    /// Side length of the square spatial extent, km (see module docs).
    pub extent: f64,
    /// Reward per task (paper: 1).
    pub reward: f64,
}

impl SynConfig {
    /// The paper's full-scale defaults (Table I, underlined values).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            n_centers: 50,
            n_workers: 2_000,
            n_tasks: 100_000,
            n_delivery_points: 5_000,
            expiry: 2.0,
            max_dp: 3,
            speed: 5.0,
            extent: 10.0,
            reward: 1.0,
        }
    }

    /// A 1/10 linear scale-down used as the default benchmark size: 5
    /// centers, 200 workers, 10 000 tasks, 500 delivery points. Per-center
    /// subproblem sizes (≈100 delivery points, ≈40 workers) match the
    /// paper's, so algorithmic behaviour is preserved while a full
    /// parameter sweep stays laptop-sized.
    #[must_use]
    pub fn bench_scale() -> Self {
        Self {
            n_centers: 5,
            n_workers: 200,
            n_tasks: 10_000,
            n_delivery_points: 500,
            ..Self::paper_scale()
        }
    }
}

impl Default for SynConfig {
    fn default() -> Self {
        Self::bench_scale()
    }
}

/// Generates a synthetic instance.
///
/// # Panics
///
/// Panics if `n_centers == 0` while workers, tasks, or delivery points are
/// requested, or if the resulting instance fails validation (which cannot
/// happen for well-formed configs).
#[must_use]
pub fn generate_syn(config: &SynConfig, seed: u64) -> Instance {
    assert!(
        config.n_centers > 0,
        "a synthetic instance needs at least one distribution center"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let point = |rng: &mut StdRng| {
        Point::new(
            rng.gen_range(0.0..config.extent),
            rng.gen_range(0.0..config.extent),
        )
    };

    let centers: Vec<DistributionCenter> = (0..config.n_centers)
        .map(|i| DistributionCenter {
            id: CenterId::from_index(i),
            location: point(&mut rng),
        })
        .collect();

    let workers: Vec<Worker> = (0..config.n_workers)
        .map(|i| Worker {
            id: WorkerId::from_index(i),
            location: point(&mut rng),
            max_dp: config.max_dp,
            center: CenterId::from_index(rng.gen_range(0..config.n_centers)),
        })
        .collect();

    // Balanced random association of delivery points to centers: a shuffled
    // round-robin keeps every center at ⌈|DP|/|DC|⌉ delivery points (the
    // paper's random association, load-balanced so the per-center bitmask
    // DP's 128-delivery-point capacity is never exceeded by sampling noise).
    let mut dp_centers: Vec<usize> = (0..config.n_delivery_points)
        .map(|i| i % config.n_centers)
        .collect();
    dp_centers.shuffle(&mut rng);
    let delivery_points: Vec<DeliveryPoint> = dp_centers
        .iter()
        .enumerate()
        .map(|(i, &c)| DeliveryPoint {
            id: DeliveryPointId::from_index(i),
            location: point(&mut rng),
            center: CenterId::from_index(c),
        })
        .collect();

    let tasks: Vec<SpatialTask> = (0..config.n_tasks)
        .map(|i| SpatialTask {
            id: TaskId::from_index(i),
            delivery_point: DeliveryPointId::from_index(rng.gen_range(0..config.n_delivery_points)),
            expiry: config.expiry,
            reward: config.reward,
        })
        .collect();

    Instance::new(centers, workers, delivery_points, tasks, config.speed)
        .expect("generated synthetic instances are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_cardinalities() {
        let cfg = SynConfig {
            n_centers: 3,
            n_workers: 20,
            n_tasks: 100,
            n_delivery_points: 15,
            ..SynConfig::bench_scale()
        };
        let inst = generate_syn(&cfg, 1);
        assert_eq!(inst.centers.len(), 3);
        assert_eq!(inst.workers.len(), 20);
        assert_eq!(inst.delivery_points.len(), 15);
        assert_eq!(inst.tasks.len(), 100);
        assert!(inst.validate().is_ok());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = SynConfig::default();
        let a = generate_syn(&cfg, 99);
        let b = generate_syn(&cfg, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynConfig {
            n_tasks: 50,
            n_workers: 10,
            n_delivery_points: 10,
            n_centers: 2,
            ..SynConfig::bench_scale()
        };
        let a = generate_syn(&cfg, 1);
        let b = generate_syn(&cfg, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn locations_respect_extent() {
        let cfg = SynConfig {
            extent: 4.0,
            n_centers: 2,
            n_workers: 30,
            n_tasks: 60,
            n_delivery_points: 20,
            ..SynConfig::bench_scale()
        };
        let inst = generate_syn(&cfg, 5);
        for w in &inst.workers {
            assert!(w.location.x >= 0.0 && w.location.x < 4.0);
            assert!(w.location.y >= 0.0 && w.location.y < 4.0);
        }
        for dp in &inst.delivery_points {
            assert!(dp.location.x < 4.0 && dp.location.y < 4.0);
        }
    }

    #[test]
    fn all_tasks_expire_at_e() {
        let cfg = SynConfig {
            expiry: 2.0,
            n_centers: 1,
            n_workers: 5,
            n_tasks: 200,
            n_delivery_points: 10,
            ..SynConfig::bench_scale()
        };
        let inst = generate_syn(&cfg, 8);
        for t in &inst.tasks {
            assert_eq!(t.expiry, 2.0);
            assert_eq!(t.reward, 1.0);
        }
    }

    #[test]
    fn delivery_points_are_balanced_across_centers() {
        let cfg = SynConfig {
            n_centers: 7,
            n_workers: 10,
            n_tasks: 100,
            n_delivery_points: 100,
            ..SynConfig::bench_scale()
        };
        let inst = generate_syn(&cfg, 12);
        let mut counts = vec![0usize; 7];
        for dp in &inst.delivery_points {
            counts[dp.center.index()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced dp association: {counts:?}");
    }

    #[test]
    fn every_center_view_is_consistent() {
        let inst = generate_syn(&SynConfig::default(), 3);
        let views = inst.center_views();
        assert_eq!(views.len(), inst.centers.len());
        let total_workers: usize = views.iter().map(|v| v.workers.len()).sum();
        assert_eq!(total_workers, inst.workers.len());
    }

    #[test]
    fn paper_scale_matches_table_one() {
        let cfg = SynConfig::paper_scale();
        assert_eq!(cfg.n_centers, 50);
        assert_eq!(cfg.n_workers, 2_000);
        assert_eq!(cfg.n_tasks, 100_000);
        assert_eq!(cfg.n_delivery_points, 5_000);
        assert_eq!(cfg.expiry, 2.0);
        assert_eq!(cfg.max_dp, 3);
        assert_eq!(cfg.speed, 5.0);
    }
}

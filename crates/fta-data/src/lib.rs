//! # fta-data — workload substrate for the FTA experiments
//!
//! The paper evaluates on two datasets:
//!
//! * **gMission (GM)** — a real spatial-crowdsourcing dataset. The raw data
//!   is not redistributable here, so [`gmission`] provides a seeded
//!   *gMission-like* generator producing clustered task locations with
//!   per-task expirations and rewards, and then reproduces the paper's own
//!   preprocessing exactly: the distribution center is the centroid of all
//!   task locations, and delivery points are obtained by k-means clustering
//!   of the task locations ([`mod@kmeans`]), with each cluster's tasks delivered
//!   to its centroid (Section VII-A).
//! * **Synthetic (SYN)** — uniformly distributed workers and delivery
//!   points, 50 distribution centers, random center/worker/task
//!   associations, unit rewards (Table I); implemented in [`syn`].
//!
//! All generators take an explicit `u64` seed and are fully deterministic.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod gmission;
pub mod io;
pub mod kmeans;
pub mod syn;

pub use gmission::{generate_gmission, GMissionConfig};
pub use kmeans::{kmeans, KMeansResult};
pub use syn::{generate_syn, SynConfig};

//! The gMission-like (GM) workload generator.
//!
//! The real gMission dataset (reference \[29\] of the paper) associates each task with a location, an
//! expiration time, and a reward, and each worker with a location. The raw
//! data is not redistributable, so this module generates a *gMission-like*
//! workload — task locations drawn from a Gaussian mixture over a
//! city-scale extent (real SC tasks cluster around campus/city hot spots) —
//! and then reproduces the paper's preprocessing (Section VII-A) exactly:
//!
//! 1. the distribution center is placed at the centroid of all task
//!    locations;
//! 2. task locations are clustered with k-means into `|DP|` clusters whose
//!    centroids become the delivery points;
//! 3. each cluster's tasks are delivered to its centroid.
//!
//! This substitution exercises the identical code path as the real data:
//! after step 1–3 the algorithms only ever see delivery points, expiries,
//! and rewards.

use crate::kmeans::kmeans;
use fta_core::entities::{DeliveryPoint, DistributionCenter, SpatialTask, Worker};
use fta_core::geometry::{centroid, Point};
use fta_core::ids::{CenterId, DeliveryPointId, TaskId, WorkerId};
use fta_core::instance::Instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the gMission-like workload (Table I, GM rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GMissionConfig {
    /// Number of tasks `|S|` (paper default: 200).
    pub n_tasks: usize,
    /// Number of workers `|W|` (paper default: 40).
    pub n_workers: usize,
    /// Number of delivery points `|DP|` — the k of the k-means step
    /// (paper default: 100).
    pub n_delivery_points: usize,
    /// Number of latent spatial hot spots tasks cluster around.
    pub n_hotspots: usize,
    /// Standard deviation of each hot spot's Gaussian, km.
    pub hotspot_sigma: f64,
    /// Side length of the square spatial extent, km.
    pub extent: f64,
    /// Minimum task expiration, hours.
    pub expiry_min: f64,
    /// Maximum task expiration, hours.
    pub expiry_max: f64,
    /// Minimum task reward (gMission rewards vary per task).
    pub reward_min: f64,
    /// Maximum task reward.
    pub reward_max: f64,
    /// Maximum acceptable delivery points per worker.
    pub max_dp: usize,
    /// Worker speed, km/h (paper: 5).
    pub speed: f64,
}

impl Default for GMissionConfig {
    /// The paper's GM defaults (Table I, underlined values): 200 tasks,
    /// 40 workers, 100 delivery points; spatial extent calibrated so the
    /// ε sweep {0.2, …, 1.0} km of Table I spans sparse-to-saturated
    /// chaining like the paper's Figure 2.
    fn default() -> Self {
        Self {
            n_tasks: 200,
            n_workers: 40,
            n_delivery_points: 100,
            n_hotspots: 8,
            hotspot_sigma: 0.6,
            extent: 5.0,
            expiry_min: 0.8,
            expiry_max: 3.0,
            reward_min: 0.5,
            reward_max: 1.5,
            max_dp: 3,
            speed: 5.0,
        }
    }
}

/// Samples an approximately standard-normal value (Irwin–Hall with 12
/// uniform draws), avoiding a dependency on `rand_distr`.
fn sample_std_normal(rng: &mut StdRng) -> f64 {
    (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0
}

/// Generates a gMission-like instance, applying the paper's preprocessing.
///
/// The resulting instance has exactly one distribution center (the task
/// centroid); the number of delivery points equals the number of non-empty
/// k-means clusters (`min(n_delivery_points, n_tasks)`).
///
/// # Panics
///
/// Panics if `n_tasks == 0` (there is no centroid to place the center at).
#[must_use]
pub fn generate_gmission(config: &GMissionConfig, seed: u64) -> Instance {
    assert!(config.n_tasks > 0, "a GM instance needs at least one task");
    let mut rng = StdRng::seed_from_u64(seed);

    // Latent hot spots and raw (pre-clustering) task locations.
    let hotspots: Vec<Point> = (0..config.n_hotspots.max(1))
        .map(|_| {
            Point::new(
                rng.gen_range(0.0..config.extent),
                rng.gen_range(0.0..config.extent),
            )
        })
        .collect();
    let clamp = |v: f64| v.clamp(0.0, config.extent);
    let task_locations: Vec<Point> = (0..config.n_tasks)
        .map(|_| {
            let h = hotspots[rng.gen_range(0..hotspots.len())];
            clamp_point(
                Point::new(
                    h.x + config.hotspot_sigma * sample_std_normal(&mut rng),
                    h.y + config.hotspot_sigma * sample_std_normal(&mut rng),
                ),
                clamp,
            )
        })
        .collect();

    // Paper preprocessing: dc at the centroid of all tasks…
    let dc_location = centroid(&task_locations).expect("n_tasks > 0");
    let center = DistributionCenter {
        id: CenterId(0),
        location: dc_location,
    };

    // …and k-means centroids as delivery points.
    let clustering = kmeans(
        &task_locations,
        config.n_delivery_points,
        seed ^ 0x9e37,
        100,
    );
    let delivery_points: Vec<DeliveryPoint> = clustering
        .centroids
        .iter()
        .enumerate()
        .map(|(i, &location)| DeliveryPoint {
            id: DeliveryPointId::from_index(i),
            location,
            center: CenterId(0),
        })
        .collect();

    let tasks: Vec<SpatialTask> = clustering
        .labels
        .iter()
        .enumerate()
        .map(|(i, &cluster)| SpatialTask {
            id: TaskId::from_index(i),
            delivery_point: DeliveryPointId::from_index(cluster),
            expiry: rng.gen_range(config.expiry_min..=config.expiry_max),
            reward: rng.gen_range(config.reward_min..=config.reward_max),
        })
        .collect();

    // Workers spread uniformly over the extent (gMission workers are not
    // clustered the way tasks are).
    let workers: Vec<Worker> = (0..config.n_workers)
        .map(|i| Worker {
            id: WorkerId::from_index(i),
            location: Point::new(
                rng.gen_range(0.0..config.extent),
                rng.gen_range(0.0..config.extent),
            ),
            max_dp: config.max_dp,
            center: CenterId(0),
        })
        .collect();

    Instance::new(vec![center], workers, delivery_points, tasks, config.speed)
        .expect("generated GM instances are valid by construction")
}

fn clamp_point(p: Point, clamp: impl Fn(f64) -> f64) -> Point {
    Point::new(clamp(p.x), clamp(p.y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_single_center_at_task_centroid() {
        let cfg = GMissionConfig {
            n_tasks: 50,
            n_delivery_points: 10,
            ..GMissionConfig::default()
        };
        let inst = generate_gmission(&cfg, 1);
        assert_eq!(inst.centers.len(), 1);
        // The dc must be inside the extent (centroid of clamped points).
        let dc = inst.centers[0].location;
        assert!(dc.x >= 0.0 && dc.x <= cfg.extent);
        assert!(dc.y >= 0.0 && dc.y <= cfg.extent);
    }

    #[test]
    fn task_count_and_references_hold() {
        let cfg = GMissionConfig {
            n_tasks: 120,
            n_delivery_points: 30,
            ..GMissionConfig::default()
        };
        let inst = generate_gmission(&cfg, 2);
        assert_eq!(inst.tasks.len(), 120);
        assert!(inst.delivery_points.len() <= 30);
        assert!(inst.validate().is_ok());
        // Every delivery point owns at least one task (k-means guarantees
        // non-empty clusters).
        let aggs = inst.dp_aggregates();
        assert!(aggs.iter().all(|a| a.task_count > 0));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = GMissionConfig::default();
        assert_eq!(generate_gmission(&cfg, 7), generate_gmission(&cfg, 7));
    }

    #[test]
    fn expiries_and_rewards_in_configured_ranges() {
        let cfg = GMissionConfig {
            n_tasks: 80,
            expiry_min: 1.0,
            expiry_max: 2.0,
            reward_min: 0.25,
            reward_max: 0.75,
            ..GMissionConfig::default()
        };
        let inst = generate_gmission(&cfg, 3);
        for t in &inst.tasks {
            assert!(t.expiry >= 1.0 && t.expiry <= 2.0);
            assert!(t.reward >= 0.25 && t.reward <= 0.75);
        }
    }

    #[test]
    fn more_clusters_than_tasks_is_clamped() {
        let cfg = GMissionConfig {
            n_tasks: 5,
            n_delivery_points: 100,
            ..GMissionConfig::default()
        };
        let inst = generate_gmission(&cfg, 4);
        assert!(inst.delivery_points.len() <= 5);
    }

    #[test]
    fn tasks_cluster_near_their_delivery_point() {
        // k-means assigns each task to its nearest centroid; the average
        // task→dp distance must be far below the extent.
        let cfg = GMissionConfig::default();
        let inst = generate_gmission(&cfg, 5);
        let avg: f64 = inst
            .tasks
            .iter()
            .map(|t| {
                // Task locations are discarded after preprocessing; use the
                // dp location spread as a proxy: dps should not all coincide.
                inst.delivery_points[t.delivery_point.index()].location.x
            })
            .sum::<f64>()
            / inst.tasks.len() as f64;
        assert!(avg.is_finite());
        let min_x = inst
            .delivery_points
            .iter()
            .map(|d| d.location.x)
            .fold(f64::INFINITY, f64::min);
        let max_x = inst
            .delivery_points
            .iter()
            .map(|d| d.location.x)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_x - min_x > 0.5, "delivery points should be spread out");
    }

    #[test]
    fn worker_count_matches_config() {
        let cfg = GMissionConfig {
            n_workers: 17,
            ..GMissionConfig::default()
        };
        let inst = generate_gmission(&cfg, 6);
        assert_eq!(inst.workers.len(), 17);
        assert!(inst.workers.iter().all(|w| w.center == CenterId(0)));
    }
}

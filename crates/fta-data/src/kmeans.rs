//! Seeded k-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! The paper derives the gMission delivery points by clustering the task
//! locations with k-means and using the cluster centroids as delivery
//! points (Section VII-A); this module implements that preprocessing step.

use fta_core::geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster centroids, `k` of them (possibly fewer than requested when
    /// there are fewer points than clusters).
    pub centroids: Vec<Point>,
    /// For each input point, the index of its centroid.
    pub labels: Vec<usize>,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Clusters `points` into at most `k` clusters.
///
/// * k-means++ initialisation (distance-squared-weighted sampling);
/// * Lloyd iterations until assignments stabilise or `max_iters` is hit;
/// * empty clusters are re-seeded to the point farthest from its centroid,
///   so every returned centroid owns at least one point.
///
/// Deterministic for a fixed `seed`. Returns an empty result when `points`
/// is empty or `k == 0`.
///
/// ```
/// use fta_core::geometry::Point;
/// use fta_data::kmeans::kmeans;
///
/// let points = vec![
///     Point::new(0.0, 0.0), Point::new(0.1, 0.0),   // cluster 1
///     Point::new(9.0, 9.0), Point::new(9.1, 9.0),   // cluster 2
/// ];
/// let result = kmeans(&points, 2, 7, 100);
/// assert_eq!(result.centroids.len(), 2);
/// assert_eq!(result.labels[0], result.labels[1]);
/// assert_ne!(result.labels[0], result.labels[2]);
/// ```
#[must_use]
pub fn kmeans(points: &[Point], k: usize, seed: u64, max_iters: usize) -> KMeansResult {
    let k = k.min(points.len());
    if k == 0 {
        return KMeansResult {
            centroids: Vec::new(),
            labels: Vec::new(),
            iterations: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // --- k-means++ seeding ---
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())]);
    let mut min_d2: Vec<f64> = points.iter().map(|p| p.distance_sq(centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = min_d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All remaining points coincide with chosen centroids; pick any.
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (i, &d2) in min_d2.iter().enumerate() {
                if target < d2 {
                    chosen = i;
                    break;
                }
                target -= d2;
            }
            chosen
        };
        let c = points[next];
        centroids.push(c);
        for (i, p) in points.iter().enumerate() {
            min_d2[i] = min_d2[i].min(p.distance_sq(c));
        }
    }

    // --- Lloyd iterations ---
    let mut labels = vec![0usize; points.len()];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d2 = f64::INFINITY;
            for (c_idx, c) in centroids.iter().enumerate() {
                let d2 = p.distance_sq(*c);
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = c_idx;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }

        // Recompute centroids.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); k];
        for (i, p) in points.iter().enumerate() {
            let s = &mut sums[labels[i]];
            s.0 += p.x;
            s.1 += p.y;
            s.2 += 1;
        }
        for (c_idx, &(sx, sy, count)) in sums.iter().enumerate() {
            if count > 0 {
                centroids[c_idx] = Point::new(sx / count as f64, sy / count as f64);
            } else {
                // Re-seed an empty cluster to the point farthest from its
                // current centroid.
                let far = (0..points.len())
                    .max_by(|&a, &b| {
                        let da = points[a].distance_sq(centroids[labels[a]]);
                        let db = points[b].distance_sq(centroids[labels[b]]);
                        da.total_cmp(&db)
                    })
                    .expect("points is non-empty");
                centroids[c_idx] = points[far];
                labels[far] = c_idx;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    KMeansResult {
        centroids,
        labels,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: (f64, f64), r: f64, n: usize, offset: f64) -> Vec<Point> {
        // Deterministic ring of points around the center.
        (0..n)
            .map(|i| {
                let angle = offset + i as f64 * std::f64::consts::TAU / n as f64;
                Point::new(center.0 + r * angle.cos(), center.1 + r * angle.sin())
            })
            .collect()
    }

    #[test]
    fn separates_well_separated_blobs() {
        let mut pts = blob((0.0, 0.0), 0.5, 20, 0.0);
        pts.extend(blob((10.0, 10.0), 0.5, 20, 0.3));
        let res = kmeans(&pts, 2, 7, 100);
        assert_eq!(res.centroids.len(), 2);
        // All points of a blob share a label.
        let first = res.labels[0];
        assert!(res.labels[..20].iter().all(|&l| l == first));
        let second = res.labels[20];
        assert_ne!(first, second);
        assert!(res.labels[20..].iter().all(|&l| l == second));
        // Centroids sit near the blob centers.
        let mut cs = res.centroids.clone();
        cs.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
        assert!(cs[0].distance(Point::new(0.0, 0.0)) < 0.2);
        assert!(cs[1].distance(Point::new(10.0, 10.0)) < 0.2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blob((1.0, 2.0), 3.0, 50, 0.1);
        let a = kmeans(&pts, 5, 42, 100);
        let b = kmeans(&pts, 5, 42, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let pts = blob((0.0, 0.0), 1.0, 3, 0.0);
        let res = kmeans(&pts, 10, 1, 100);
        assert_eq!(res.centroids.len(), 3);
        assert_eq!(res.labels.len(), 3);
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let res = kmeans(&[], 4, 0, 100);
        assert!(res.centroids.is_empty());
        assert!(res.labels.is_empty());
    }

    #[test]
    fn every_centroid_owns_a_point() {
        let mut pts = blob((0.0, 0.0), 0.1, 30, 0.0);
        pts.extend(blob((5.0, 0.0), 0.1, 2, 0.0));
        let res = kmeans(&pts, 6, 3, 100);
        for c in 0..res.centroids.len() {
            assert!(res.labels.contains(&c), "centroid {c} owns no points");
        }
    }

    #[test]
    fn labels_point_to_nearest_centroid() {
        let pts = blob((2.0, 2.0), 4.0, 40, 0.2);
        let res = kmeans(&pts, 4, 11, 100);
        for (i, p) in pts.iter().enumerate() {
            let own = p.distance_sq(res.centroids[res.labels[i]]);
            for c in &res.centroids {
                assert!(own <= p.distance_sq(*c) + 1e-9);
            }
        }
    }

    #[test]
    fn single_cluster_is_the_centroid() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 3.0),
        ];
        let res = kmeans(&pts, 1, 5, 100);
        assert_eq!(res.centroids.len(), 1);
        assert!(res.centroids[0].distance(Point::new(1.0, 1.0)) < 1e-9);
    }
}

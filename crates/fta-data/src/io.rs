//! Instance persistence: JSON save/load with validation on load.
//!
//! Lets experiment inputs be frozen to disk and shared (the moral
//! equivalent of shipping the paper's preprocessed datasets): an instance
//! written by [`save_instance`] is bit-identical after [`load_instance`]
//! (`serde_json` is configured with `float_roundtrip`), and loading always
//! re-validates the invariants so a hand-edited file cannot smuggle a
//! dangling reference into the solver.

use fta_core::{FtaError, Instance};
use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Errors from instance persistence.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file is not valid JSON for an instance.
    Parse(serde_json::Error),
    /// The decoded instance violates a domain invariant.
    Invalid(FtaError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Parse(e) => write!(f, "malformed instance file: {e}"),
            Self::Invalid(e) => write!(f, "instance file violates invariants: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Parse(e) => Some(e),
            Self::Invalid(e) => Some(e),
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes `instance` as pretty JSON to `path` (atomically: a temp file in
/// the same directory is renamed into place).
///
/// # Errors
///
/// Returns [`IoError::Io`] on filesystem failures.
pub fn save_instance(path: &Path, instance: &Instance) -> Result<(), IoError> {
    let json = serde_json::to_string_pretty(instance).map_err(IoError::Parse)?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and validates an instance from `path`.
///
/// # Errors
///
/// Returns [`IoError::Io`] on filesystem failures, [`IoError::Parse`] on
/// malformed JSON, and [`IoError::Invalid`] when the decoded instance
/// fails [`Instance::validate`].
pub fn load_instance(path: &Path) -> Result<Instance, IoError> {
    let json = fs::read_to_string(path)?;
    let instance: Instance = serde_json::from_str(&json).map_err(IoError::Parse)?;
    instance.validate().map_err(IoError::Invalid)?;
    Ok(instance)
}

/// Writes an assignment as pretty JSON to `path` (same atomic strategy as
/// [`save_instance`]).
///
/// # Errors
///
/// Returns [`IoError::Io`] on filesystem failures.
pub fn save_assignment(path: &Path, assignment: &fta_core::Assignment) -> Result<(), IoError> {
    let json = serde_json::to_string_pretty(assignment).map_err(IoError::Parse)?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads an assignment from `path` and validates it against `instance`
/// (route feasibility and Definition 8 disjointness).
///
/// # Errors
///
/// Returns [`IoError::Io`] / [`IoError::Parse`] on file problems, and
/// [`IoError::Invalid`] when the assignment does not fit the instance.
pub fn load_assignment(path: &Path, instance: &Instance) -> Result<fta_core::Assignment, IoError> {
    let json = fs::read_to_string(path)?;
    let assignment: fta_core::Assignment = serde_json::from_str(&json).map_err(IoError::Parse)?;
    assignment.validate(instance).map_err(IoError::Invalid)?;
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syn::{generate_syn, SynConfig};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fta-io-test-{}-{name}", std::process::id()));
        p
    }

    fn small_instance() -> Instance {
        generate_syn(
            &SynConfig {
                n_centers: 2,
                n_workers: 6,
                n_tasks: 40,
                n_delivery_points: 10,
                ..SynConfig::bench_scale()
            },
            3,
        )
    }

    #[test]
    fn round_trips_exactly() {
        let path = temp_path("roundtrip.json");
        let instance = small_instance();
        save_instance(&path, &instance).unwrap();
        let back = load_instance(&path).unwrap();
        assert_eq!(instance, back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_malformed_json() {
        let path = temp_path("garbage.json");
        fs::write(&path, "{ not json").unwrap();
        assert!(matches!(load_instance(&path), Err(IoError::Parse(_))));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejects_invariant_violations() {
        let path = temp_path("invalid.json");
        let mut instance = small_instance();
        // Corrupt a reference after validation.
        instance.workers[0].center = fta_core::CenterId(99);
        let json = serde_json::to_string(&instance).unwrap();
        fs::write(&path, json).unwrap();
        assert!(matches!(load_instance(&path), Err(IoError::Invalid(_))));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn assignment_round_trips_and_validates() {
        use fta_core::route::Route;
        let path = temp_path("assignment.json");
        let instance = small_instance();
        let aggs = instance.dp_aggregates();
        // Assign worker 0 a single reachable delivery point, if any.
        let views = instance.center_views();
        let mut assignment = fta_core::Assignment::new();
        'outer: for view in &views {
            for &w in &view.workers {
                for &dp in &view.dps {
                    let route = Route::build(&instance, &aggs, view.center, vec![dp]).unwrap();
                    if route.is_valid_for(&instance, w) {
                        assignment.assign(w, route);
                        break 'outer;
                    }
                }
            }
        }
        save_assignment(&path, &assignment).unwrap();
        let back = load_assignment(&path, &instance).unwrap();
        assert_eq!(assignment, back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn assignment_violating_instance_is_rejected() {
        use fta_core::route::Route;
        let path = temp_path("bad-assignment.json");
        let instance = small_instance();
        let aggs = instance.dp_aggregates();
        let views = instance.center_views();
        // A route for a worker of the wrong center is invalid.
        let foreign_center = views
            .iter()
            .find(|v| !v.dps.is_empty())
            .expect("some center has tasks");
        let route = Route::build(
            &instance,
            &aggs,
            foreign_center.center,
            vec![foreign_center.dps[0]],
        )
        .unwrap();
        let wrong_worker = instance
            .workers
            .iter()
            .find(|w| w.center != foreign_center.center)
            .expect("another center has workers");
        let mut assignment = fta_core::Assignment::new();
        assignment.assign(wrong_worker.id, route);
        save_assignment(&path, &assignment).unwrap();
        assert!(matches!(
            load_assignment(&path, &instance),
            Err(IoError::Invalid(_))
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("does-not-exist.json");
        assert!(matches!(load_instance(&path), Err(IoError::Io(_))));
    }

    #[test]
    fn error_display_is_informative() {
        let err = IoError::Invalid(FtaError::UnknownCenter(fta_core::CenterId(7)));
        assert!(err.to_string().contains("dc7"));
    }
}

/root/repo/target/debug/deps/fta_sim-48e4d1bc56a847e8.d: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

/root/repo/target/debug/deps/fta_sim-48e4d1bc56a847e8: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

crates/fta-sim/src/lib.rs:
crates/fta-sim/src/engine.rs:
crates/fta-sim/src/metrics.rs:
crates/fta-sim/src/scenario.rs:

/root/repo/target/debug/deps/fta-758a45c3a510713a.d: crates/fta/src/lib.rs

/root/repo/target/debug/deps/fta-758a45c3a510713a: crates/fta/src/lib.rs

crates/fta/src/lib.rs:

/root/repo/target/debug/deps/fta_data-a1b33118a20d0cfe.d: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

/root/repo/target/debug/deps/fta_data-a1b33118a20d0cfe: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

crates/fta-data/src/lib.rs:
crates/fta-data/src/gmission.rs:
crates/fta-data/src/io.rs:
crates/fta-data/src/kmeans.rs:
crates/fta-data/src/syn.rs:

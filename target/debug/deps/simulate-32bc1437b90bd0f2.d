/root/repo/target/debug/deps/simulate-32bc1437b90bd0f2.d: crates/fta-bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-32bc1437b90bd0f2: crates/fta-bench/src/bin/simulate.rs

crates/fta-bench/src/bin/simulate.rs:

/root/repo/target/debug/deps/fta_algorithms-9a23d5794d4e5ded.d: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

/root/repo/target/debug/deps/fta_algorithms-9a23d5794d4e5ded: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

crates/fta-algorithms/src/lib.rs:
crates/fta-algorithms/src/context.rs:
crates/fta-algorithms/src/exact.rs:
crates/fta-algorithms/src/fgt.rs:
crates/fta-algorithms/src/gta.rs:
crates/fta-algorithms/src/iegt.rs:
crates/fta-algorithms/src/mpta.rs:
crates/fta-algorithms/src/pfgt.rs:
crates/fta-algorithms/src/random.rs:
crates/fta-algorithms/src/solver.rs:
crates/fta-algorithms/src/trace.rs:

/root/repo/target/debug/deps/integration_datasets-b38a9c5562ec5a89.d: crates/fta/../../tests/integration_datasets.rs

/root/repo/target/debug/deps/integration_datasets-b38a9c5562ec5a89: crates/fta/../../tests/integration_datasets.rs

crates/fta/../../tests/integration_datasets.rs:

/root/repo/target/debug/deps/simulate-a6aec2b8e923b6b8.d: crates/fta-bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-a6aec2b8e923b6b8: crates/fta-bench/src/bin/simulate.rs

crates/fta-bench/src/bin/simulate.rs:

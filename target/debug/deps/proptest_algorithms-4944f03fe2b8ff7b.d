/root/repo/target/debug/deps/proptest_algorithms-4944f03fe2b8ff7b.d: crates/fta-algorithms/tests/proptest_algorithms.rs

/root/repo/target/debug/deps/proptest_algorithms-4944f03fe2b8ff7b: crates/fta-algorithms/tests/proptest_algorithms.rs

crates/fta-algorithms/tests/proptest_algorithms.rs:

/root/repo/target/debug/deps/integration_fairness-1c86328e992a8c19.d: crates/fta/../../tests/integration_fairness.rs

/root/repo/target/debug/deps/integration_fairness-1c86328e992a8c19: crates/fta/../../tests/integration_fairness.rs

crates/fta/../../tests/integration_fairness.rs:

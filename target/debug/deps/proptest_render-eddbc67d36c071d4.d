/root/repo/target/debug/deps/proptest_render-eddbc67d36c071d4.d: crates/fta-experiments/tests/proptest_render.rs

/root/repo/target/debug/deps/proptest_render-eddbc67d36c071d4: crates/fta-experiments/tests/proptest_render.rs

crates/fta-experiments/tests/proptest_render.rs:

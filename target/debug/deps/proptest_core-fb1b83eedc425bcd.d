/root/repo/target/debug/deps/proptest_core-fb1b83eedc425bcd.d: crates/fta-core/tests/proptest_core.rs

/root/repo/target/debug/deps/proptest_core-fb1b83eedc425bcd: crates/fta-core/tests/proptest_core.rs

crates/fta-core/tests/proptest_core.rs:

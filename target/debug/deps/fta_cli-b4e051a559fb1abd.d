/root/repo/target/debug/deps/fta_cli-b4e051a559fb1abd.d: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

/root/repo/target/debug/deps/libfta_cli-b4e051a559fb1abd.rlib: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

/root/repo/target/debug/deps/libfta_cli-b4e051a559fb1abd.rmeta: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

crates/fta-cli/src/lib.rs:
crates/fta-cli/src/args.rs:
crates/fta-cli/src/commands.rs:

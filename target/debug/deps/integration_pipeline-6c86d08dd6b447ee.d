/root/repo/target/debug/deps/integration_pipeline-6c86d08dd6b447ee.d: crates/fta/../../tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-6c86d08dd6b447ee: crates/fta/../../tests/integration_pipeline.rs

crates/fta/../../tests/integration_pipeline.rs:

/root/repo/target/debug/deps/proptest_sim-145ae801251c59a4.d: crates/fta-sim/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-145ae801251c59a4: crates/fta-sim/tests/proptest_sim.rs

crates/fta-sim/tests/proptest_sim.rs:

/root/repo/target/debug/deps/fta-d6cd809dbdb27a21.d: crates/fta/src/lib.rs

/root/repo/target/debug/deps/libfta-d6cd809dbdb27a21.rlib: crates/fta/src/lib.rs

/root/repo/target/debug/deps/libfta-d6cd809dbdb27a21.rmeta: crates/fta/src/lib.rs

crates/fta/src/lib.rs:

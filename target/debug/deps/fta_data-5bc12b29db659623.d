/root/repo/target/debug/deps/fta_data-5bc12b29db659623.d: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

/root/repo/target/debug/deps/libfta_data-5bc12b29db659623.rlib: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

/root/repo/target/debug/deps/libfta_data-5bc12b29db659623.rmeta: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

crates/fta-data/src/lib.rs:
crates/fta-data/src/gmission.rs:
crates/fta-data/src/io.rs:
crates/fta-data/src/kmeans.rs:
crates/fta-data/src/syn.rs:

/root/repo/target/debug/deps/reproduce-c9d3cb54ebd7c0ea.d: crates/fta-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-c9d3cb54ebd7c0ea: crates/fta-bench/src/bin/reproduce.rs

crates/fta-bench/src/bin/reproduce.rs:

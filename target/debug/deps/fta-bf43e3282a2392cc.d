/root/repo/target/debug/deps/fta-bf43e3282a2392cc.d: crates/fta-cli/src/main.rs

/root/repo/target/debug/deps/fta-bf43e3282a2392cc: crates/fta-cli/src/main.rs

crates/fta-cli/src/main.rs:

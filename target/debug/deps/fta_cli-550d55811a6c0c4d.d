/root/repo/target/debug/deps/fta_cli-550d55811a6c0c4d.d: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

/root/repo/target/debug/deps/fta_cli-550d55811a6c0c4d: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

crates/fta-cli/src/lib.rs:
crates/fta-cli/src/args.rs:
crates/fta-cli/src/commands.rs:

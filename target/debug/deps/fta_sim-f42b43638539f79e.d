/root/repo/target/debug/deps/fta_sim-f42b43638539f79e.d: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

/root/repo/target/debug/deps/libfta_sim-f42b43638539f79e.rlib: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

/root/repo/target/debug/deps/libfta_sim-f42b43638539f79e.rmeta: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

crates/fta-sim/src/lib.rs:
crates/fta-sim/src/engine.rs:
crates/fta-sim/src/metrics.rs:
crates/fta-sim/src/scenario.rs:

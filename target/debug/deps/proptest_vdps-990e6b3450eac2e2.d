/root/repo/target/debug/deps/proptest_vdps-990e6b3450eac2e2.d: crates/fta-vdps/tests/proptest_vdps.rs

/root/repo/target/debug/deps/proptest_vdps-990e6b3450eac2e2: crates/fta-vdps/tests/proptest_vdps.rs

crates/fta-vdps/tests/proptest_vdps.rs:

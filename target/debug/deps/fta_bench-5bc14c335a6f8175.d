/root/repo/target/debug/deps/fta_bench-5bc14c335a6f8175.d: crates/fta-bench/src/lib.rs

/root/repo/target/debug/deps/fta_bench-5bc14c335a6f8175: crates/fta-bench/src/lib.rs

crates/fta-bench/src/lib.rs:

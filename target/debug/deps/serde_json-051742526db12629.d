/root/repo/target/debug/deps/serde_json-051742526db12629.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-051742526db12629.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-051742526db12629.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

/root/repo/target/debug/deps/proptest-efd93c568d91788c.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-efd93c568d91788c.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-efd93c568d91788c.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:

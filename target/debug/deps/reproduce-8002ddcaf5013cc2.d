/root/repo/target/debug/deps/reproduce-8002ddcaf5013cc2.d: crates/fta-bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-8002ddcaf5013cc2: crates/fta-bench/src/bin/reproduce.rs

crates/fta-bench/src/bin/reproduce.rs:

/root/repo/target/debug/deps/integration_equilibrium-1b1b8855b8a5c87e.d: crates/fta/../../tests/integration_equilibrium.rs

/root/repo/target/debug/deps/integration_equilibrium-1b1b8855b8a5c87e: crates/fta/../../tests/integration_equilibrium.rs

crates/fta/../../tests/integration_equilibrium.rs:

/root/repo/target/debug/deps/fta_experiments-1e2df8040de5a508.d: crates/fta-experiments/src/lib.rs crates/fta-experiments/src/chart.rs crates/fta-experiments/src/experiments/mod.rs crates/fta-experiments/src/experiments/common.rs crates/fta-experiments/src/experiments/convergence.rs crates/fta-experiments/src/experiments/delivery_points.rs crates/fta-experiments/src/experiments/epsilon.rs crates/fta-experiments/src/experiments/expiration.rs crates/fta-experiments/src/experiments/ext_early_stop.rs crates/fta-experiments/src/experiments/ext_priority.rs crates/fta-experiments/src/experiments/ext_redraw.rs crates/fta-experiments/src/experiments/ext_simulation.rs crates/fta-experiments/src/experiments/fig1.rs crates/fta-experiments/src/experiments/maxdp.rs crates/fta-experiments/src/experiments/table1.rs crates/fta-experiments/src/experiments/tasks.rs crates/fta-experiments/src/experiments/workers.rs crates/fta-experiments/src/measure.rs crates/fta-experiments/src/params.rs crates/fta-experiments/src/report.rs crates/fta-experiments/src/svg.rs

/root/repo/target/debug/deps/fta_experiments-1e2df8040de5a508: crates/fta-experiments/src/lib.rs crates/fta-experiments/src/chart.rs crates/fta-experiments/src/experiments/mod.rs crates/fta-experiments/src/experiments/common.rs crates/fta-experiments/src/experiments/convergence.rs crates/fta-experiments/src/experiments/delivery_points.rs crates/fta-experiments/src/experiments/epsilon.rs crates/fta-experiments/src/experiments/expiration.rs crates/fta-experiments/src/experiments/ext_early_stop.rs crates/fta-experiments/src/experiments/ext_priority.rs crates/fta-experiments/src/experiments/ext_redraw.rs crates/fta-experiments/src/experiments/ext_simulation.rs crates/fta-experiments/src/experiments/fig1.rs crates/fta-experiments/src/experiments/maxdp.rs crates/fta-experiments/src/experiments/table1.rs crates/fta-experiments/src/experiments/tasks.rs crates/fta-experiments/src/experiments/workers.rs crates/fta-experiments/src/measure.rs crates/fta-experiments/src/params.rs crates/fta-experiments/src/report.rs crates/fta-experiments/src/svg.rs

crates/fta-experiments/src/lib.rs:
crates/fta-experiments/src/chart.rs:
crates/fta-experiments/src/experiments/mod.rs:
crates/fta-experiments/src/experiments/common.rs:
crates/fta-experiments/src/experiments/convergence.rs:
crates/fta-experiments/src/experiments/delivery_points.rs:
crates/fta-experiments/src/experiments/epsilon.rs:
crates/fta-experiments/src/experiments/expiration.rs:
crates/fta-experiments/src/experiments/ext_early_stop.rs:
crates/fta-experiments/src/experiments/ext_priority.rs:
crates/fta-experiments/src/experiments/ext_redraw.rs:
crates/fta-experiments/src/experiments/ext_simulation.rs:
crates/fta-experiments/src/experiments/fig1.rs:
crates/fta-experiments/src/experiments/maxdp.rs:
crates/fta-experiments/src/experiments/table1.rs:
crates/fta-experiments/src/experiments/tasks.rs:
crates/fta-experiments/src/experiments/workers.rs:
crates/fta-experiments/src/measure.rs:
crates/fta-experiments/src/params.rs:
crates/fta-experiments/src/report.rs:
crates/fta-experiments/src/svg.rs:

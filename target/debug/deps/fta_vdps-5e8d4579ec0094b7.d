/root/repo/target/debug/deps/fta_vdps-5e8d4579ec0094b7.d: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

/root/repo/target/debug/deps/fta_vdps-5e8d4579ec0094b7: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

crates/fta-vdps/src/lib.rs:
crates/fta-vdps/src/config.rs:
crates/fta-vdps/src/grid.rs:
crates/fta-vdps/src/generator.rs:
crates/fta-vdps/src/naive.rs:
crates/fta-vdps/src/schedule.rs:
crates/fta-vdps/src/strategy.rs:

/root/repo/target/debug/deps/fta_vdps-f70aa85b71c2989d.d: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

/root/repo/target/debug/deps/libfta_vdps-f70aa85b71c2989d.rlib: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

/root/repo/target/debug/deps/libfta_vdps-f70aa85b71c2989d.rmeta: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

crates/fta-vdps/src/lib.rs:
crates/fta-vdps/src/config.rs:
crates/fta-vdps/src/grid.rs:
crates/fta-vdps/src/generator.rs:
crates/fta-vdps/src/naive.rs:
crates/fta-vdps/src/schedule.rs:
crates/fta-vdps/src/strategy.rs:

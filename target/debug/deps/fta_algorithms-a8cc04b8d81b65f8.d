/root/repo/target/debug/deps/fta_algorithms-a8cc04b8d81b65f8.d: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

/root/repo/target/debug/deps/libfta_algorithms-a8cc04b8d81b65f8.rlib: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

/root/repo/target/debug/deps/libfta_algorithms-a8cc04b8d81b65f8.rmeta: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

crates/fta-algorithms/src/lib.rs:
crates/fta-algorithms/src/context.rs:
crates/fta-algorithms/src/exact.rs:
crates/fta-algorithms/src/fgt.rs:
crates/fta-algorithms/src/gta.rs:
crates/fta-algorithms/src/iegt.rs:
crates/fta-algorithms/src/mpta.rs:
crates/fta-algorithms/src/pfgt.rs:
crates/fta-algorithms/src/random.rs:
crates/fta-algorithms/src/solver.rs:
crates/fta-algorithms/src/trace.rs:

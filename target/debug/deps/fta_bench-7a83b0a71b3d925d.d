/root/repo/target/debug/deps/fta_bench-7a83b0a71b3d925d.d: crates/fta-bench/src/lib.rs

/root/repo/target/debug/deps/libfta_bench-7a83b0a71b3d925d.rlib: crates/fta-bench/src/lib.rs

/root/repo/target/debug/deps/libfta_bench-7a83b0a71b3d925d.rmeta: crates/fta-bench/src/lib.rs

crates/fta-bench/src/lib.rs:

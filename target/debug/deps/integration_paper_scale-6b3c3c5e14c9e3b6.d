/root/repo/target/debug/deps/integration_paper_scale-6b3c3c5e14c9e3b6.d: crates/fta/../../tests/integration_paper_scale.rs

/root/repo/target/debug/deps/integration_paper_scale-6b3c3c5e14c9e3b6: crates/fta/../../tests/integration_paper_scale.rs

crates/fta/../../tests/integration_paper_scale.rs:

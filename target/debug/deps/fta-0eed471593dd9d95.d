/root/repo/target/debug/deps/fta-0eed471593dd9d95.d: crates/fta-cli/src/main.rs

/root/repo/target/debug/deps/fta-0eed471593dd9d95: crates/fta-cli/src/main.rs

crates/fta-cli/src/main.rs:

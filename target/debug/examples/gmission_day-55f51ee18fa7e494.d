/root/repo/target/debug/examples/gmission_day-55f51ee18fa7e494.d: crates/fta/../../examples/gmission_day.rs

/root/repo/target/debug/examples/gmission_day-55f51ee18fa7e494: crates/fta/../../examples/gmission_day.rs

crates/fta/../../examples/gmission_day.rs:

/root/repo/target/debug/examples/food_delivery-ee2821cf26b5ff46.d: crates/fta/../../examples/food_delivery.rs

/root/repo/target/debug/examples/food_delivery-ee2821cf26b5ff46: crates/fta/../../examples/food_delivery.rs

crates/fta/../../examples/food_delivery.rs:

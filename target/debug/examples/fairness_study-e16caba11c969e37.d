/root/repo/target/debug/examples/fairness_study-e16caba11c969e37.d: crates/fta/../../examples/fairness_study.rs

/root/repo/target/debug/examples/fairness_study-e16caba11c969e37: crates/fta/../../examples/fairness_study.rs

crates/fta/../../examples/fairness_study.rs:

/root/repo/target/debug/examples/priority_tiers-8afc45be0ba2022b.d: crates/fta/../../examples/priority_tiers.rs

/root/repo/target/debug/examples/priority_tiers-8afc45be0ba2022b: crates/fta/../../examples/priority_tiers.rs

crates/fta/../../examples/priority_tiers.rs:

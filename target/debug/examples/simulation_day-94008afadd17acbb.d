/root/repo/target/debug/examples/simulation_day-94008afadd17acbb.d: crates/fta/../../examples/simulation_day.rs

/root/repo/target/debug/examples/simulation_day-94008afadd17acbb: crates/fta/../../examples/simulation_day.rs

crates/fta/../../examples/simulation_day.rs:

/root/repo/target/debug/examples/quickstart-fc01c0f7536d9966.d: crates/fta/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fc01c0f7536d9966: crates/fta/../../examples/quickstart.rs

crates/fta/../../examples/quickstart.rs:

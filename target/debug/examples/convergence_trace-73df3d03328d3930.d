/root/repo/target/debug/examples/convergence_trace-73df3d03328d3930.d: crates/fta/../../examples/convergence_trace.rs

/root/repo/target/debug/examples/convergence_trace-73df3d03328d3930: crates/fta/../../examples/convergence_trace.rs

crates/fta/../../examples/convergence_trace.rs:

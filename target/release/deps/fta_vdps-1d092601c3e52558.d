/root/repo/target/release/deps/fta_vdps-1d092601c3e52558.d: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

/root/repo/target/release/deps/libfta_vdps-1d092601c3e52558.rlib: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

/root/repo/target/release/deps/libfta_vdps-1d092601c3e52558.rmeta: crates/fta-vdps/src/lib.rs crates/fta-vdps/src/config.rs crates/fta-vdps/src/grid.rs crates/fta-vdps/src/generator.rs crates/fta-vdps/src/naive.rs crates/fta-vdps/src/schedule.rs crates/fta-vdps/src/strategy.rs

crates/fta-vdps/src/lib.rs:
crates/fta-vdps/src/config.rs:
crates/fta-vdps/src/grid.rs:
crates/fta-vdps/src/generator.rs:
crates/fta-vdps/src/naive.rs:
crates/fta-vdps/src/schedule.rs:
crates/fta-vdps/src/strategy.rs:

/root/repo/target/release/deps/fta-375c7b30508b80fe.d: crates/fta/src/lib.rs

/root/repo/target/release/deps/libfta-375c7b30508b80fe.rlib: crates/fta/src/lib.rs

/root/repo/target/release/deps/libfta-375c7b30508b80fe.rmeta: crates/fta/src/lib.rs

crates/fta/src/lib.rs:

/root/repo/target/release/deps/simulate-29411538d252761a.d: crates/fta-bench/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-29411538d252761a: crates/fta-bench/src/bin/simulate.rs

crates/fta-bench/src/bin/simulate.rs:

/root/repo/target/release/deps/fta_cli-675d6ce858ecd9fc.d: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

/root/repo/target/release/deps/libfta_cli-675d6ce858ecd9fc.rlib: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

/root/repo/target/release/deps/libfta_cli-675d6ce858ecd9fc.rmeta: crates/fta-cli/src/lib.rs crates/fta-cli/src/args.rs crates/fta-cli/src/commands.rs

crates/fta-cli/src/lib.rs:
crates/fta-cli/src/args.rs:
crates/fta-cli/src/commands.rs:

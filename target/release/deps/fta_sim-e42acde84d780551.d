/root/repo/target/release/deps/fta_sim-e42acde84d780551.d: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

/root/repo/target/release/deps/libfta_sim-e42acde84d780551.rlib: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

/root/repo/target/release/deps/libfta_sim-e42acde84d780551.rmeta: crates/fta-sim/src/lib.rs crates/fta-sim/src/engine.rs crates/fta-sim/src/metrics.rs crates/fta-sim/src/scenario.rs

crates/fta-sim/src/lib.rs:
crates/fta-sim/src/engine.rs:
crates/fta-sim/src/metrics.rs:
crates/fta-sim/src/scenario.rs:

/root/repo/target/release/deps/reproduce-1e7284146d28da12.d: crates/fta-bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-1e7284146d28da12: crates/fta-bench/src/bin/reproduce.rs

crates/fta-bench/src/bin/reproduce.rs:

/root/repo/target/release/deps/fta-1d46485c293c57da.d: crates/fta-cli/src/main.rs

/root/repo/target/release/deps/fta-1d46485c293c57da: crates/fta-cli/src/main.rs

crates/fta-cli/src/main.rs:

/root/repo/target/release/deps/fta_core-62b81f875594f329.d: crates/fta-core/src/lib.rs crates/fta-core/src/assignment.rs crates/fta-core/src/builder.rs crates/fta-core/src/entities.rs crates/fta-core/src/error.rs crates/fta-core/src/fairness.rs crates/fta-core/src/fig1.rs crates/fta-core/src/geometry.rs crates/fta-core/src/iau.rs crates/fta-core/src/ids.rs crates/fta-core/src/instance.rs crates/fta-core/src/payoff.rs crates/fta-core/src/priority.rs crates/fta-core/src/route.rs

/root/repo/target/release/deps/libfta_core-62b81f875594f329.rlib: crates/fta-core/src/lib.rs crates/fta-core/src/assignment.rs crates/fta-core/src/builder.rs crates/fta-core/src/entities.rs crates/fta-core/src/error.rs crates/fta-core/src/fairness.rs crates/fta-core/src/fig1.rs crates/fta-core/src/geometry.rs crates/fta-core/src/iau.rs crates/fta-core/src/ids.rs crates/fta-core/src/instance.rs crates/fta-core/src/payoff.rs crates/fta-core/src/priority.rs crates/fta-core/src/route.rs

/root/repo/target/release/deps/libfta_core-62b81f875594f329.rmeta: crates/fta-core/src/lib.rs crates/fta-core/src/assignment.rs crates/fta-core/src/builder.rs crates/fta-core/src/entities.rs crates/fta-core/src/error.rs crates/fta-core/src/fairness.rs crates/fta-core/src/fig1.rs crates/fta-core/src/geometry.rs crates/fta-core/src/iau.rs crates/fta-core/src/ids.rs crates/fta-core/src/instance.rs crates/fta-core/src/payoff.rs crates/fta-core/src/priority.rs crates/fta-core/src/route.rs

crates/fta-core/src/lib.rs:
crates/fta-core/src/assignment.rs:
crates/fta-core/src/builder.rs:
crates/fta-core/src/entities.rs:
crates/fta-core/src/error.rs:
crates/fta-core/src/fairness.rs:
crates/fta-core/src/fig1.rs:
crates/fta-core/src/geometry.rs:
crates/fta-core/src/iau.rs:
crates/fta-core/src/ids.rs:
crates/fta-core/src/instance.rs:
crates/fta-core/src/payoff.rs:
crates/fta-core/src/priority.rs:
crates/fta-core/src/route.rs:

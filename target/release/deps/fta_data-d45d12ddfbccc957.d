/root/repo/target/release/deps/fta_data-d45d12ddfbccc957.d: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

/root/repo/target/release/deps/libfta_data-d45d12ddfbccc957.rlib: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

/root/repo/target/release/deps/libfta_data-d45d12ddfbccc957.rmeta: crates/fta-data/src/lib.rs crates/fta-data/src/gmission.rs crates/fta-data/src/io.rs crates/fta-data/src/kmeans.rs crates/fta-data/src/syn.rs

crates/fta-data/src/lib.rs:
crates/fta-data/src/gmission.rs:
crates/fta-data/src/io.rs:
crates/fta-data/src/kmeans.rs:
crates/fta-data/src/syn.rs:

/root/repo/target/release/deps/serde_json-3ccb629b4e33600a.d: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3ccb629b4e33600a.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-3ccb629b4e33600a.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:

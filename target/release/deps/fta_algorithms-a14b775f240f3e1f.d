/root/repo/target/release/deps/fta_algorithms-a14b775f240f3e1f.d: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

/root/repo/target/release/deps/libfta_algorithms-a14b775f240f3e1f.rlib: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

/root/repo/target/release/deps/libfta_algorithms-a14b775f240f3e1f.rmeta: crates/fta-algorithms/src/lib.rs crates/fta-algorithms/src/context.rs crates/fta-algorithms/src/exact.rs crates/fta-algorithms/src/fgt.rs crates/fta-algorithms/src/gta.rs crates/fta-algorithms/src/iegt.rs crates/fta-algorithms/src/mpta.rs crates/fta-algorithms/src/pfgt.rs crates/fta-algorithms/src/random.rs crates/fta-algorithms/src/solver.rs crates/fta-algorithms/src/trace.rs

crates/fta-algorithms/src/lib.rs:
crates/fta-algorithms/src/context.rs:
crates/fta-algorithms/src/exact.rs:
crates/fta-algorithms/src/fgt.rs:
crates/fta-algorithms/src/gta.rs:
crates/fta-algorithms/src/iegt.rs:
crates/fta-algorithms/src/mpta.rs:
crates/fta-algorithms/src/pfgt.rs:
crates/fta-algorithms/src/random.rs:
crates/fta-algorithms/src/solver.rs:
crates/fta-algorithms/src/trace.rs:

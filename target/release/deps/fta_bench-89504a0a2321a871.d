/root/repo/target/release/deps/fta_bench-89504a0a2321a871.d: crates/fta-bench/src/lib.rs

/root/repo/target/release/deps/libfta_bench-89504a0a2321a871.rlib: crates/fta-bench/src/lib.rs

/root/repo/target/release/deps/libfta_bench-89504a0a2321a871.rmeta: crates/fta-bench/src/lib.rs

crates/fta-bench/src/lib.rs:

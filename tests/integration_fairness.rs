//! The paper's headline effectiveness claims, asserted across seeds.
//!
//! Individual seeds can be noisy, so the claims are checked on metrics
//! averaged over several instances — the same way the paper's figures
//! aggregate runs.

use fta::prelude::*;

struct Averages {
    diff: f64,
    avg_payoff: f64,
}

fn averaged(algorithm_of: impl Fn() -> Algorithm, seeds: &[u64]) -> Averages {
    let mut diff = 0.0;
    let mut avg_payoff = 0.0;
    for &seed in seeds {
        let instance = generate_syn(
            &SynConfig {
                n_centers: 2,
                n_workers: 30,
                n_tasks: 800,
                n_delivery_points: 60,
                extent: 6.0,
                ..SynConfig::bench_scale()
            },
            seed,
        );
        let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm: algorithm_of(),
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        let report = outcome.assignment.fairness(&instance, &workers);
        diff += report.payoff_difference;
        avg_payoff += report.average_payoff;
    }
    let n = seeds.len() as f64;
    Averages {
        diff: diff / n,
        avg_payoff: avg_payoff / n,
    }
}

const SEEDS: [u64; 5] = [101, 202, 303, 404, 505];

#[test]
fn iegt_is_the_fairest_algorithm() {
    let iegt = averaged(|| Algorithm::Iegt(IegtConfig::default()), &SEEDS);
    let fgt = averaged(|| Algorithm::Fgt(FgtConfig::default()), &SEEDS);
    let gta = averaged(|| Algorithm::Gta, &SEEDS);
    let mpta = averaged(|| Algorithm::Mpta(MptaConfig::default()), &SEEDS);

    // Figures 4–9: IEGT has the consistently lowest payoff difference.
    assert!(
        iegt.diff < fgt.diff,
        "IEGT diff {} !< FGT diff {}",
        iegt.diff,
        fgt.diff
    );
    assert!(
        iegt.diff < gta.diff,
        "IEGT diff {} !< GTA diff {}",
        iegt.diff,
        gta.diff
    );
    assert!(
        iegt.diff < mpta.diff,
        "IEGT diff {} !< MPTA diff {}",
        iegt.diff,
        mpta.diff
    );
    // The paper reports IEGT's diff at 18–35% of MPTA's; allow a loose band
    // around that (our substrate is synthetic, only the direction and rough
    // magnitude must hold).
    assert!(
        iegt.diff < 0.6 * mpta.diff,
        "IEGT diff {} not clearly below MPTA diff {}",
        iegt.diff,
        mpta.diff
    );
}

#[test]
fn fgt_is_fairer_than_the_payoff_maximisers() {
    let fgt = averaged(|| Algorithm::Fgt(FgtConfig::default()), &SEEDS);
    let gta = averaged(|| Algorithm::Gta, &SEEDS);
    assert!(
        fgt.diff < gta.diff,
        "FGT diff {} !< GTA diff {}",
        fgt.diff,
        gta.diff
    );
}

#[test]
fn mpta_has_the_highest_average_payoff() {
    let mpta = averaged(|| Algorithm::Mpta(MptaConfig::default()), &SEEDS);
    for (name, avg) in [
        ("GTA", averaged(|| Algorithm::Gta, &SEEDS)),
        (
            "FGT",
            averaged(|| Algorithm::Fgt(FgtConfig::default()), &SEEDS),
        ),
        (
            "IEGT",
            averaged(|| Algorithm::Iegt(IegtConfig::default()), &SEEDS),
        ),
    ] {
        assert!(
            mpta.avg_payoff >= avg.avg_payoff - 1e-9,
            "MPTA avg {} < {name} avg {}",
            mpta.avg_payoff,
            avg.avg_payoff
        );
    }
}

#[test]
fn fairness_costs_only_modest_average_payoff() {
    // The paper's Figure 1 narrative: fair assignments achieve comparable
    // average payoffs. Require the game algorithms to stay within 40% of
    // MPTA's average payoff.
    let mpta = averaged(|| Algorithm::Mpta(MptaConfig::default()), &SEEDS);
    let iegt = averaged(|| Algorithm::Iegt(IegtConfig::default()), &SEEDS);
    assert!(
        iegt.avg_payoff > 0.6 * mpta.avg_payoff,
        "IEGT avg payoff {} collapsed vs MPTA {}",
        iegt.avg_payoff,
        mpta.avg_payoff
    );
}

#[test]
fn random_baseline_is_dominated() {
    let rand = averaged(|| Algorithm::Random { seed: 5 }, &SEEDS);
    let iegt = averaged(|| Algorithm::Iegt(IegtConfig::default()), &SEEDS);
    // IEGT is both fairer and more rewarding than random assignment.
    assert!(iegt.diff <= rand.diff * 1.05);
    assert!(iegt.avg_payoff >= rand.avg_payoff * 0.95);
}

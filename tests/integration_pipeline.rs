//! End-to-end pipeline tests: workload generation → VDPS generation →
//! assignment → validation, across crates.

use fta::prelude::*;

fn city(seed: u64) -> Instance {
    generate_syn(
        &SynConfig {
            n_centers: 3,
            n_workers: 30,
            n_tasks: 600,
            n_delivery_points: 60,
            extent: 6.0,
            ..SynConfig::bench_scale()
        },
        seed,
    )
}

fn all_algorithms() -> Vec<(&'static str, Algorithm)> {
    vec![
        ("MPTA", Algorithm::Mpta(MptaConfig::default())),
        ("GTA", Algorithm::Gta),
        ("FGT", Algorithm::Fgt(FgtConfig::default())),
        ("IEGT", Algorithm::Iegt(IegtConfig::default())),
        ("RAND", Algorithm::Random { seed: 3 }),
    ]
}

#[test]
fn every_algorithm_yields_valid_assignments_across_seeds() {
    for seed in [1, 2, 3] {
        let instance = city(seed);
        for (name, algorithm) in all_algorithms() {
            let outcome = solve(
                &instance,
                &SolveConfig {
                    vdps: VdpsConfig::pruned(2.0, 3),
                    algorithm,
                    parallel: false,
                    ..SolveConfig::new(Algorithm::Gta)
                },
            );
            assert!(
                outcome.assignment.validate(&instance).is_ok(),
                "{name} (seed {seed}) produced an invalid assignment"
            );
        }
    }
}

#[test]
fn assignments_respect_max_dp_and_deadlines_per_route() {
    let instance = city(7);
    let outcome = solve(
        &instance,
        &SolveConfig {
            vdps: VdpsConfig::pruned(2.0, 3),
            algorithm: Algorithm::Gta,
            parallel: false,
            ..SolveConfig::new(Algorithm::Gta)
        },
    );
    let aggs = instance.dp_aggregates();
    for (worker, route) in outcome.assignment.iter() {
        let w = &instance.workers[worker.index()];
        assert!(route.len() <= w.max_dp);
        // Recompute arrival times independently of the Route internals.
        let dc = instance.centers[w.center.index()].location;
        let mut t = instance.travel_time(w.location, dc);
        let mut prev = dc;
        for &dp_id in route.dps() {
            let dp = &instance.delivery_points[dp_id.index()];
            t += instance.travel_time(prev, dp.location);
            prev = dp.location;
            assert!(
                t <= aggs[dp_id.index()].earliest_expiry + 1e-9,
                "{worker} reaches {dp_id} at {t:.3} after its deadline"
            );
        }
    }
}

#[test]
fn pruning_with_huge_epsilon_equals_no_pruning() {
    // The paper's claim: a large-enough ε gives the same assignment as the
    // unpruned variant (Figures 2–3).
    let instance = city(11);
    let run = |vdps| {
        solve(
            &instance,
            &SolveConfig {
                vdps,
                algorithm: Algorithm::Gta,
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        )
        .assignment
    };
    let pruned = run(VdpsConfig::pruned(1e6, 3));
    let unpruned = run(VdpsConfig::unpruned(3));
    assert_eq!(pruned, unpruned);
}

#[test]
fn pruned_strategy_spaces_are_subsets_of_unpruned() {
    let instance = city(13);
    let views = instance.center_views();
    for view in &views {
        let pruned = StrategySpace::build(&instance, view, &VdpsConfig::pruned(1.0, 3));
        let unpruned = StrategySpace::build(&instance, view, &VdpsConfig::unpruned(3));
        let unpruned_masks: std::collections::HashSet<u128> =
            unpruned.pool.iter().map(|v| v.mask).collect();
        for v in &pruned.pool {
            assert!(unpruned_masks.contains(&v.mask));
        }
        assert!(pruned.pool.len() <= unpruned.pool.len());
    }
}

#[test]
fn solver_timings_and_stats_are_populated() {
    let instance = city(17);
    let outcome = solve(
        &instance,
        &SolveConfig {
            vdps: VdpsConfig::pruned(2.0, 3),
            algorithm: Algorithm::Iegt(IegtConfig::default()),
            parallel: true,
            ..SolveConfig::new(Algorithm::Gta)
        },
    );
    assert!(outcome.gen_stats.vdps_count > 0);
    assert!(outcome.gen_stats.extensions_tried > 0);
    assert!(outcome.total_time().as_nanos() > 0);
    assert!(outcome.trace.converged);
}

#[test]
fn gmission_pipeline_end_to_end() {
    let instance = generate_gmission(&GMissionConfig::default(), 23);
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    for (name, algorithm) in all_algorithms() {
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(0.6, 3),
                algorithm,
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        assert!(
            outcome.assignment.validate(&instance).is_ok(),
            "{name} failed on GM"
        );
        let report = outcome.assignment.fairness(&instance, &workers);
        assert!(report.payoff_difference.is_finite());
        assert!(report.average_payoff >= 0.0);
    }
}

//! End-to-end observability: a real solve recorded through the facade
//! crate produces per-center spans, per-round game events, and work
//! counters; the JSONL trace and Prometheus snapshot round-trip; and a
//! solve *without* a recorder emits nothing at all.
//!
//! The `fta-obs` recorder is process-global, so every test in this
//! binary serialises on one mutex.

use fta::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn instance(n_centers: usize, seed: u64) -> Instance {
    generate_syn(
        &SynConfig {
            n_centers,
            n_workers: 6 * n_centers,
            n_tasks: 60 * n_centers,
            n_delivery_points: 10 * n_centers,
            extent: 2.0 * n_centers as f64,
            ..SynConfig::bench_scale()
        },
        seed,
    )
}

fn solve_recorded(inst: &Instance, algorithm: Algorithm, parallel: bool) -> fta::obs::Snapshot {
    let recorder = Recorder::install();
    let outcome = solve(
        inst,
        &SolveConfig {
            vdps: VdpsConfig::default(),
            algorithm,
            parallel,
            ..SolveConfig::new(Algorithm::Gta)
        },
    );
    assert!(outcome.assignment.validate(inst).is_ok());
    recorder.finish()
}

#[test]
fn recorded_solve_covers_all_layers() {
    let _guard = lock();
    let inst = instance(2, 7);
    let snapshot = solve_recorded(&inst, Algorithm::Iegt(IegtConfig::default()), false);

    // One solve span; one center + assignment + generation span per center.
    assert_eq!(snapshot.span_count("solver.solve"), 1);
    assert_eq!(snapshot.span_count("solver.center"), 2);
    assert_eq!(snapshot.span_count("solver.assign"), 2);
    assert_eq!(snapshot.span_count("vdps.generate"), 2);
    assert!(snapshot.span_count("vdps.dp") >= 2);
    assert!(snapshot.span_count("vdps.layer") >= 2, "per-DP-layer spans");

    // Span attribution: every solver.center span names a distinct center.
    let mut centers: Vec<u32> = snapshot
        .spans
        .iter()
        .filter(|s| s.name == "solver.center")
        .map(|s| s.center.expect("center spans carry attribution"))
        .collect();
    centers.sort_unstable();
    assert_eq!(centers, vec![0, 1]);

    // The game loop reports at least one round per center, with
    // monotone round numbers within a center.
    assert!(!snapshot.rounds.is_empty(), "IEGT must emit round events");
    assert!(snapshot.rounds.iter().all(|r| r.algo == "IEGT"));
    for c in 0..2u32 {
        let rounds: Vec<u32> = snapshot
            .rounds
            .iter()
            .filter(|r| r.center == c)
            .map(|r| r.round)
            .collect();
        assert!(!rounds.is_empty(), "no rounds recorded for center {c}");
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
    }

    // Generation + best-response work counters are populated.
    for name in ["vdps.states", "vdps.count", "br.rounds", "br.switches"] {
        assert!(snapshot.counter(name) > 0, "counter {name} is zero");
    }
}

#[test]
fn trace_and_prometheus_round_trip() {
    let _guard = lock();
    let inst = instance(1, 11);
    let snapshot = solve_recorded(&inst, Algorithm::Fgt(FgtConfig::default()), false);

    let mut path = std::env::temp_dir();
    path.push(format!("fta-integration-obs-{}.jsonl", std::process::id()));
    fta::obs::trace::write_file(&snapshot, &path).unwrap();
    let parsed = fta::obs::trace::parse_file(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(parsed.version, fta::obs::trace::SCHEMA_VERSION);
    assert_eq!(parsed.epoch_unix_ms, snapshot.epoch_unix_ms);
    assert_eq!(parsed.spans.len(), snapshot.spans.len());
    assert_eq!(parsed.rounds.len(), snapshot.rounds.len());
    assert_eq!(parsed.rounds_for("FGT").count(), snapshot.rounds.len());
    for (name, value) in &snapshot.counters {
        assert_eq!(parsed.counters.get(*name), Some(value), "counter {name}");
    }

    // The Prometheus snapshot is well-formed and covers the three
    // instrumented subsystems.
    let prom = snapshot.to_prometheus();
    fta::obs::trace::validate_prometheus(&prom).unwrap();
    for needle in ["fta_vdps_states", "fta_br_rounds", "fta_span_solver_center"] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }
}

#[test]
fn parallel_solve_loses_no_events() {
    let _guard = lock();
    let inst = instance(4, 3);
    let seq = solve_recorded(&inst, Algorithm::Gta, false);
    let par = solve_recorded(&inst, Algorithm::Gta, true);

    // Work counters that are thread-count invariant must agree between
    // the sequential and pooled runs — nothing lost in TLS buffers.
    for name in ["vdps.states", "vdps.extensions_tried", "vdps.count"] {
        assert_eq!(seq.counter(name), par.counter(name), "counter {name}");
    }
    assert_eq!(par.span_count("solver.center"), 4);
    assert_eq!(par.span_count("vdps.generate"), 4);
}

#[test]
fn budgeted_and_panicking_solve_emits_robustness_counters() {
    let _guard = lock();
    let inst = instance(3, 13);

    // Exhausted budget + a poisoned center that panics on both attempts:
    // the solve must still complete, and the robustness counters must land
    // in the snapshot and the Prometheus rendering.
    let recorder = Recorder::install();
    let outcome = solve(
        &inst,
        &SolveConfig {
            budget: SolveBudget::wall_ms(0),
            inject_panic: Some(PanicInjection {
                center: 1,
                also_on_retry: true,
            }),
            ..SolveConfig::new(Algorithm::Iegt(IegtConfig::default()))
        },
    );
    let snapshot = recorder.finish();

    assert!(outcome.assignment.validate(&inst).is_ok());
    assert!(outcome.is_degraded());
    assert_eq!(outcome.degradation.panics_caught(), 2);

    assert!(
        snapshot.counter("solve.degraded") >= 2,
        "at least the two healthy centers degrade under a 0 ms budget"
    );
    assert_eq!(snapshot.counter("budget.exhausted"), 1);
    assert_eq!(snapshot.counter("pool.panics_caught"), 2);

    let prom = snapshot.to_prometheus();
    fta::obs::trace::validate_prometheus(&prom).unwrap();
    for needle in [
        "fta_solve_degraded",
        "fta_budget_exhausted",
        "fta_pool_panics_caught",
    ] {
        assert!(prom.contains(needle), "missing {needle} in:\n{prom}");
    }

    // An unbudgeted, fault-free recorded solve emits none of them.
    let clean = solve_recorded(&inst, Algorithm::Iegt(IegtConfig::default()), false);
    assert_eq!(clean.counter("solve.degraded"), 0);
    assert_eq!(clean.counter("budget.exhausted"), 0);
    assert_eq!(clean.counter("pool.panics_caught"), 0);
}

#[test]
fn unrecorded_solve_emits_nothing() {
    let _guard = lock();
    let inst = instance(1, 5);
    assert!(!fta::obs::enabled());
    let outcome = solve(&inst, &SolveConfig::new(Algorithm::Gta));
    assert!(outcome.assignment.validate(&inst).is_ok());

    // A recorder installed *after* the solve sees none of its events.
    let recorder = Recorder::install();
    let snapshot = recorder.finish();
    assert!(snapshot.is_empty(), "stale events leaked: {snapshot:?}");
}

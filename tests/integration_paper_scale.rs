//! Paper-scale smoke tests (Table I's full SYN sizes: 50 centers, 2 000
//! workers, 100 000 tasks, 5 000 delivery points).
//!
//! Ignored by default — they take minutes in release mode and far longer
//! unoptimised. Run with:
//!
//! ```sh
//! cargo test --release -p fta --test integration_paper_scale -- --ignored
//! ```

use fta::prelude::*;
use std::time::Instant;

#[test]
#[ignore = "paper-scale run; ~2 s in release but minutes unoptimised — invoke with --ignored"]
fn full_table_one_scale_solves_and_validates() {
    let instance = generate_syn(&SynConfig::paper_scale(), 42);
    assert_eq!(instance.workers.len(), 2_000);
    assert_eq!(instance.tasks.len(), 100_000);

    for (name, algorithm) in [
        ("GTA", Algorithm::Gta),
        ("IEGT", Algorithm::Iegt(IegtConfig::default())),
    ] {
        let t0 = Instant::now();
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm,
                parallel: true,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        let elapsed = t0.elapsed();
        assert!(
            outcome.assignment.validate(&instance).is_ok(),
            "{name} invalid at paper scale"
        );
        let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
        let report = outcome.assignment.fairness(&instance, &workers);
        println!(
            "{name}: P_dif {:.3}, avg {:.3}, {} assigned, {elapsed:.1?}",
            report.payoff_difference,
            report.average_payoff,
            outcome.assignment.assigned_workers()
        );
        assert!(report.average_payoff > 0.0);
    }
}

#[test]
#[ignore = "paper-scale run; ~2 s in release but minutes unoptimised — invoke with --ignored"]
fn paper_scale_fairness_ranking_holds() {
    let instance = generate_syn(&SynConfig::paper_scale(), 7);
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    let diff_of = |algorithm| {
        solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm,
                parallel: true,
                ..SolveConfig::new(Algorithm::Gta)
            },
        )
        .assignment
        .fairness(&instance, &workers)
        .payoff_difference
    };
    let gta = diff_of(Algorithm::Gta);
    let iegt = diff_of(Algorithm::Iegt(IegtConfig::default()));
    assert!(
        iegt < gta,
        "IEGT ({iegt}) must be fairer than GTA ({gta}) at paper scale"
    );
}

//! Game-theoretic guarantees, verified on whole instances:
//! Lemma 2's exact-potential identity, the pure Nash equilibrium reached by
//! FGT, the improved evolutionary equilibrium reached by IEGT, and the
//! heuristics' relationship to the exact optimum on tiny instances.

use fta::algorithms::{exact_search, fgt::iau_potential, ExactObjective, GameContext};
use fta::core::iau::{iau, IauEvaluator};
use fta::prelude::*;

fn single_center(seed: u64, n_workers: usize, n_dps: usize) -> Instance {
    generate_syn(
        &SynConfig {
            n_centers: 1,
            n_workers,
            n_tasks: n_dps * 8,
            n_delivery_points: n_dps,
            extent: 3.0,
            ..SynConfig::bench_scale()
        },
        seed,
    )
}

#[test]
fn exact_potential_identity_holds_for_unilateral_deviations() {
    // Lemma 2: for any joint strategy and any unilateral deviation by one
    // worker, ΔΦ (sum of IAUs) equals the deviator's ΔIAU *computed against
    // the rivals' unchanged payoffs*. Verify the identity the best-response
    // step relies on: IAU evaluated via the evaluator equals Equation 5.
    let instance = single_center(31, 8, 14);
    let views = instance.center_views();
    let space = StrategySpace::build(&instance, &views[0], &VdpsConfig::unpruned(3));
    let mut ctx = GameContext::new(&space);
    fta::algorithms::random_assignment(&mut ctx, 5);

    let params = IauParams::default();
    let payoffs: Vec<f64> = ctx.payoffs().to_vec();
    for local in 0..ctx.n_workers() {
        let others: Vec<f64> = payoffs
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != local)
            .map(|(_, &p)| p)
            .collect();
        let eval = IauEvaluator::new(&others, params);
        for (_, candidate_payoff) in ctx.available_strategies(local) {
            let direct = iau(candidate_payoff, &others, params);
            let fast = eval.eval(candidate_payoff);
            assert!((direct - fast).abs() < 1e-9);
        }
    }

    // And the closed-form potential matches the sum of IAUs.
    let direct_potential: f64 = (0..payoffs.len())
        .map(|i| {
            let others: Vec<f64> = payoffs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, &p)| p)
                .collect();
            iau(payoffs[i], &others, params)
        })
        .sum();
    assert!((direct_potential - iau_potential(&payoffs, params)).abs() < 1e-9);
}

#[test]
fn fgt_reaches_a_pure_nash_equilibrium_on_a_full_instance() {
    let instance = single_center(37, 20, 30);
    let views = instance.center_views();
    let space = StrategySpace::build(&instance, &views[0], &VdpsConfig::pruned(2.0, 3));
    let mut ctx = GameContext::new(&space);
    let cfg = FgtConfig::default();
    let trace = fta::algorithms::fgt(&mut ctx, &cfg);
    assert!(trace.converged);

    let n = ctx.n_workers();
    for local in 0..n {
        let others: Vec<f64> = (0..n)
            .filter(|&j| j != local)
            .map(|j| ctx.payoff(j))
            .collect();
        let eval = IauEvaluator::new(&others, cfg.iau);
        let current = eval.eval(ctx.payoff(local));
        assert!(eval.eval(0.0) <= current + 1e-6);
        for (_, p) in ctx.available_strategies(local) {
            assert!(
                eval.eval(p) <= current + 1e-6,
                "worker {local} has a profitable deviation at equilibrium"
            );
        }
    }
}

#[test]
fn iegt_equilibrium_satisfies_the_rest_point_conditions() {
    let instance = single_center(41, 20, 30);
    let views = instance.center_views();
    let space = StrategySpace::build(&instance, &views[0], &VdpsConfig::pruned(2.0, 3));
    let mut ctx = GameContext::new(&space);
    let trace = fta::algorithms::iegt(&mut ctx, &IegtConfig::default());
    assert!(trace.converged);

    let average = ctx.payoffs().iter().sum::<f64>() / ctx.n_workers() as f64;
    for local in 0..ctx.n_workers() {
        let current = ctx.payoff(local);
        if current < average - 1e-9 {
            // Below-average workers must have no strictly better option —
            // otherwise the replicator dynamics would not be at rest.
            assert!(
                !ctx.available_strategies(local)
                    .any(|(_, p)| p > current + f64::EPSILON),
                "worker {local} below average could still evolve"
            );
        }
    }
}

#[test]
fn heuristics_bracket_the_exact_optimum_on_tiny_instances() {
    for seed in [51, 52, 53] {
        let instance = single_center(seed, 3, 6);
        let views = instance.center_views();
        let space = StrategySpace::build(&instance, &views[0], &VdpsConfig::unpruned(2));
        let workers = space.view.workers.clone();

        let mut ctx = GameContext::new(&space);
        let (_, opt_diff, opt_avg_at_min_diff) =
            exact_search(&mut ctx, ExactObjective::MinPayoffDifference);
        let mut ctx = GameContext::new(&space);
        let (_, _, opt_avg) = exact_search(&mut ctx, ExactObjective::MaxTotalPayoff);

        for algorithm in [
            Algorithm::Gta,
            Algorithm::Mpta(MptaConfig::default()),
            Algorithm::Fgt(FgtConfig::default()),
            Algorithm::Iegt(IegtConfig::default()),
        ] {
            let outcome = solve(
                &instance,
                &SolveConfig {
                    vdps: VdpsConfig::unpruned(2),
                    algorithm,
                    parallel: false,
                    ..SolveConfig::new(Algorithm::Gta)
                },
            );
            let report = outcome.assignment.fairness(&instance, &workers);
            assert!(
                report.payoff_difference >= opt_diff - 1e-9,
                "seed {seed}: heuristic beat the exact minimum payoff difference"
            );
            assert!(
                report.average_payoff <= opt_avg + 1e-9,
                "seed {seed}: heuristic beat the exact maximum average payoff"
            );
        }
        // The exact fair optimum also maximises average payoff among
        // minimal-difference assignments; it cannot beat the global max.
        assert!(opt_avg_at_min_diff <= opt_avg + 1e-9);
    }
}

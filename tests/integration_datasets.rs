//! Dataset substrate tests: the gMission preprocessing pipeline and the
//! Table I conformance of the synthetic generator.

use fta::data::kmeans::kmeans;
use fta::prelude::*;

#[test]
fn gm_center_is_reachable_and_single() {
    let instance = generate_gmission(&GMissionConfig::default(), 3);
    assert_eq!(instance.centers.len(), 1);
    assert!(instance.validate().is_ok());
}

#[test]
fn gm_tasks_are_delivered_to_their_kmeans_cluster() {
    // Every delivery point must be the centroid of the tasks mapped to it:
    // re-running the label assignment against the stored centroids must be
    // a fixed point (each task's dp is its nearest centroid).
    let instance = generate_gmission(&GMissionConfig::default(), 9);
    let centroids: Vec<Point> = instance
        .delivery_points
        .iter()
        .map(|dp| dp.location)
        .collect();
    // The raw task locations are consumed by preprocessing; what remains
    // observable is that every delivery point owns at least one task and
    // the dp set is exactly the set of used clusters.
    let aggs = instance.dp_aggregates();
    for (i, agg) in aggs.iter().enumerate() {
        assert!(agg.task_count > 0, "dp{i} owns no tasks");
    }
    assert!(centroids.len() <= GMissionConfig::default().n_delivery_points);
}

#[test]
fn kmeans_fixed_point_property() {
    // Labels returned by k-means point to the nearest centroid.
    let pts: Vec<Point> = (0..60)
        .map(|i| {
            let a = f64::from(i) * 0.7;
            Point::new(a.sin() * 3.0 + 5.0, a.cos() * 2.0 + 5.0)
        })
        .collect();
    let res = kmeans(&pts, 6, 4, 200);
    for (i, p) in pts.iter().enumerate() {
        let own = p.distance_sq(res.centroids[res.labels[i]]);
        for c in &res.centroids {
            assert!(own <= p.distance_sq(*c) + 1e-9);
        }
    }
}

#[test]
fn syn_defaults_conform_to_table_one() {
    let cfg = SynConfig::paper_scale();
    let scaled = SynConfig::bench_scale();
    // Paper-scale Table I values.
    assert_eq!(cfg.n_centers, 50);
    assert_eq!(cfg.n_tasks, 100_000);
    assert_eq!(cfg.n_workers, 2_000);
    assert_eq!(cfg.n_delivery_points, 5_000);
    assert_eq!(cfg.speed, 5.0);
    assert_eq!(cfg.reward, 1.0);
    // The bench scale keeps per-center densities: |DP|/|DC| and |W|/|DC|.
    assert_eq!(
        cfg.n_delivery_points / cfg.n_centers,
        scaled.n_delivery_points / scaled.n_centers
    );
    assert_eq!(
        cfg.n_workers / cfg.n_centers,
        scaled.n_workers / scaled.n_centers
    );
}

#[test]
fn syn_centers_never_exceed_bitmask_capacity() {
    for seed in [1, 99, 12345] {
        let instance = generate_syn(&SynConfig::bench_scale(), seed);
        let views = instance.center_views();
        for view in &views {
            assert!(
                view.dps.len() <= 128,
                "center {} holds {} delivery points",
                view.center,
                view.dps.len()
            );
        }
    }
}

#[test]
fn generators_are_deterministic_and_seed_sensitive() {
    let gm_cfg = GMissionConfig::default();
    assert_eq!(generate_gmission(&gm_cfg, 8), generate_gmission(&gm_cfg, 8));
    assert_ne!(generate_gmission(&gm_cfg, 8), generate_gmission(&gm_cfg, 9));

    let syn_cfg = SynConfig::bench_scale();
    assert_eq!(generate_syn(&syn_cfg, 8), generate_syn(&syn_cfg, 8));
    assert_ne!(generate_syn(&syn_cfg, 8), generate_syn(&syn_cfg, 9));
}

#[test]
fn instances_survive_serde_round_trips() {
    let instance = generate_syn(
        &SynConfig {
            n_centers: 2,
            n_workers: 8,
            n_tasks: 50,
            n_delivery_points: 12,
            ..SynConfig::bench_scale()
        },
        4,
    );
    let json = serde_json::to_string(&instance).unwrap();
    let back: Instance = serde_json::from_str(&json).unwrap();
    assert_eq!(instance, back);
    assert!(back.validate().is_ok());
}

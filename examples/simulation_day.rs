//! A simulated working day: fairness as daily earnings, not one assignment.
//!
//! The paper motivates fairness with worker retention — couriers leave
//! platforms that pay them unevenly. One assignment round cannot show
//! that; a day can. This example streams Poisson task arrivals through the
//! platform simulator, runs an assignment round every 15 minutes with each
//! algorithm, and compares the *cumulative earnings distributions* at the
//! end of the day.
//!
//! Run with: `cargo run --release -p fta --example simulation_day`

use fta::prelude::*;
use fta::sim::{run, Scenario, ScenarioConfig, SimConfig};

fn main() {
    let scenario = Scenario::generate(
        &ScenarioConfig {
            n_workers: 24,
            n_delivery_points: 48,
            extent: 5.0,
            arrival_rate: 120.0,
            expiry_offset: 2.0,
            ..ScenarioConfig::default()
        },
        8.0, // an 8-hour day
        2027,
    );
    println!(
        "Simulated day: {} couriers, {} drop-off points, {} orders over 8 h\n",
        scenario.workers.len(),
        scenario.delivery_points.len(),
        scenario.tasks.len()
    );

    println!(
        "{:<6} {:>10} {:>10} {:>8} {:>8} {:>10} {:>8}",
        "algo", "completed", "expired", "gini", "min/max", "top earner", "util"
    );
    for (label, algorithm) in [
        ("GTA", Algorithm::Gta),
        ("FGT", Algorithm::Fgt(FgtConfig::default())),
        ("IEGT", Algorithm::Iegt(IegtConfig::default())),
    ] {
        let metrics = run(
            &scenario,
            &SimConfig {
                horizon: 8.0,
                assignment_period: 0.25,
                policy: fta_sim::DispatchPolicy::Batch(algorithm),
                vdps: VdpsConfig::pruned(2.0, 3),
                parallel: false,
                ..SimConfig::day(algorithm)
            },
        );
        let fairness = metrics.earnings_fairness();
        let top = metrics.top_earner().map_or(0.0, |(_, e)| e);
        println!(
            "{label:<6} {:>6}/{:<3} {:>10} {:>8.3} {:>8.3} {:>10.1} {:>7.0}%",
            metrics.tasks_completed,
            metrics.tasks_arrived,
            metrics.tasks_expired,
            fairness.gini,
            fairness.min_max_ratio,
            top,
            metrics.mean_utilization() * 100.0,
        );
    }

    println!(
        "\nReading: over a full day the game-theoretic policies distribute \
         earnings far more evenly (lower Gini, higher min/max ratio) while \
         completing a comparable number of orders — the retention argument \
         the paper's introduction makes, measured."
    );
}

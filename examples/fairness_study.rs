//! Sweeping the inequity-aversion weights α and β.
//!
//! The paper fixes α = β = 0.5 after noting FGT "works well" there. This
//! example makes the price of fairness inspectable: it sweeps the envy
//! weight α and the guilt weight β of the IAU utility (Equation 5) and
//! reports how the equilibrium's fairness and average payoff respond.
//!
//! Two things worth knowing when reading the output:
//!
//! * Equation 5 divides both penalties by `|W| − 1`, so the per-worker
//!   fairness incentive shrinks as the crowd grows; the sweep therefore
//!   uses a small courier pool (8 workers) where the effect is visible.
//! * FGT is run without equilibrium-selection restarts here, isolating the
//!   pure effect of the utility function on the reached equilibrium.
//!
//! Run with: `cargo run --release -p fta --example fairness_study`

use fta::prelude::*;

fn main() {
    let instance = generate_gmission(
        &GMissionConfig {
            n_workers: 8,
            n_tasks: 120,
            n_delivery_points: 40,
            ..GMissionConfig::default()
        },
        7,
    );
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    println!(
        "gMission-like instance: {} workers, {} tasks, {} delivery points\n",
        instance.workers.len(),
        instance.tasks.len(),
        instance.delivery_points.len()
    );

    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>8}",
        "alpha", "beta", "P_dif", "avg payoff", "jain"
    );
    for (alpha, beta) in [
        (0.0, 0.0), // plain payoff maximisation (no inequity aversion)
        (0.5, 0.5), // the paper's setting
        (1.0, 1.0),
        (2.0, 2.0),
        (5.0, 5.0), // fairness dominates
        (2.0, 0.0), // envy only
        (0.0, 2.0), // guilt only
    ] {
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(0.6, 3),
                algorithm: Algorithm::Fgt(FgtConfig {
                    iau: IauParams { alpha, beta },
                    restarts: 0,
                    ..FgtConfig::default()
                }),
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        let report = outcome.assignment.fairness(&instance, &workers);
        println!(
            "{alpha:>6.2} {beta:>6.2} {:>12.4} {:>12.4} {:>8.4}",
            report.payoff_difference, report.average_payoff, report.jain
        );
    }

    println!(
        "\nReading: raising the inequity-aversion weights moves the equilibrium \
         from selfish (high P_dif, high average payoff) to egalitarian (P_dif \
         near zero, Jain index near 1) — workers literally give up payoff to \
         reduce inequity, the Fehr–Schmidt behaviour IAU models. The guilt \
         weight β does most of the work: a worker ahead of the pack accepts a \
         smaller route, freeing delivery points for the workers behind."
    );
}

//! Priority-aware fairness: senior couriers earn their entitlement.
//!
//! The paper's conclusion proposes priority-aware fairness as a follow-up
//! descriptive model. This example builds a two-tier workforce — senior
//! couriers entitled to twice the payoff of juniors — and compares plain
//! FGT (which equalises raw payoffs, ignoring entitlement) with PFGT
//! (which judges inequity on entitlement-normalised payoffs).
//!
//! Run with: `cargo run --release -p fta --example priority_tiers`

use fta::algorithms::PrioritySpec;
use fta::core::priority::priority_payoff_difference;
use fta::prelude::*;

/// Even-indexed workers are senior (entitlement 2), odd-indexed junior (1).
fn tier(worker: WorkerId) -> f64 {
    if worker.0 % 2 == 0 {
        2.0
    } else {
        1.0
    }
}

fn main() {
    let instance = generate_gmission(
        &GMissionConfig {
            n_workers: 10,
            n_tasks: 150,
            n_delivery_points: 50,
            ..GMissionConfig::default()
        },
        13,
    );
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    let priorities: Vec<f64> = workers.iter().map(|&w| tier(w)).collect();
    println!(
        "{} couriers ({} senior at 2x entitlement), {} tasks\n",
        workers.len(),
        workers.iter().filter(|w| tier(**w) > 1.5).count(),
        instance.tasks.len()
    );

    // Strong inequity aversion (the paper's 0.5/0.5 divided by |W|−1 is a
    // gentle nudge; 3.0/3.0 makes each game pursue its fairness notion
    // decisively, so the two notions become visible).
    let strong = IauParams {
        alpha: 3.0,
        beta: 3.0,
    };
    for (label, algorithm) in [
        (
            "FGT  (entitlement-blind)",
            Algorithm::Fgt(FgtConfig {
                iau: strong,
                ..FgtConfig::default()
            }),
        ),
        (
            "PFGT (priority-aware)",
            Algorithm::Pfgt(fta::algorithms::PfgtConfig {
                priorities: PrioritySpec::ByWorker(tier),
                base: FgtConfig {
                    iau: strong,
                    ..FgtConfig::default()
                },
            }),
        ),
    ] {
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(0.6, 3),
                algorithm,
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        let payoffs = outcome.assignment.payoffs(&instance, &workers);
        let (mut senior, mut junior) = (0.0, 0.0);
        for (i, &p) in payoffs.iter().enumerate() {
            if priorities[i] > 1.5 {
                senior += p;
            } else {
                junior += p;
            }
        }
        let n_senior = priorities.iter().filter(|&&p| p > 1.5).count() as f64;
        let n_junior = priorities.len() as f64 - n_senior;
        println!("{label}:");
        println!(
            "  mean payoff: senior {:.3}, junior {:.3} (ratio {:.2})",
            senior / n_senior,
            junior / n_junior,
            (senior / n_senior) / (junior / n_junior).max(1e-9),
        );
        println!(
            "  plain P_dif {:.3} | priority-aware P_dif {:.3}\n",
            outcome
                .assignment
                .fairness(&instance, &workers)
                .payoff_difference,
            priority_payoff_difference(&payoffs, &priorities),
        );
    }

    println!(
        "Reading: PFGT pushes the senior/junior payoff ratio toward the 2.0 \
         entitlement ratio, lowering the priority-aware payoff difference; \
         plain FGT equalises everyone and looks unfair through the \
         entitlement lens."
    );
}

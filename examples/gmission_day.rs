//! A gMission-style day: raw task feed → preprocessing → fair assignment.
//!
//! Walks the exact pipeline the paper applies to the gMission dataset
//! (Section VII-A): generate a clustered task feed, place the distribution
//! center at the task centroid, cluster tasks into delivery points with
//! k-means, then assign with the evolutionary game and inspect individual
//! courier routes.
//!
//! Run with: `cargo run --release -p fta --example gmission_day`

use fta::prelude::*;

fn main() {
    let config = GMissionConfig {
        n_tasks: 300,
        n_workers: 30,
        n_delivery_points: 60,
        ..GMissionConfig::default()
    };
    let instance = generate_gmission(&config, 11);

    println!("gMission-like preprocessing (Section VII-A):");
    println!(
        "  {} raw tasks -> centroid distribution center at ({:.2}, {:.2})",
        instance.tasks.len(),
        instance.centers[0].location.x,
        instance.centers[0].location.y
    );
    println!(
        "  k-means with k = {} -> {} delivery points (non-empty clusters)",
        config.n_delivery_points,
        instance.delivery_points.len()
    );
    let aggs = instance.dp_aggregates();
    let busiest = aggs
        .iter()
        .enumerate()
        .max_by_key(|(_, a)| a.task_count)
        .expect("at least one delivery point");
    println!(
        "  busiest delivery point: dp{} with {} tasks (earliest expiry {:.2} h)\n",
        busiest.0, busiest.1.task_count, busiest.1.earliest_expiry
    );

    let outcome = solve(
        &instance,
        &SolveConfig {
            vdps: VdpsConfig::pruned(0.6, 3),
            algorithm: Algorithm::Iegt(IegtConfig::default()),
            parallel: false,
            ..SolveConfig::new(Algorithm::Gta)
        },
    );
    outcome
        .assignment
        .validate(&instance)
        .expect("IEGT produces a valid assignment");

    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    let report = outcome.assignment.fairness(&instance, &workers);
    println!(
        "IEGT assignment: {}/{} couriers serving, P_dif {:.3}, average payoff {:.3}\n",
        outcome.assignment.assigned_workers(),
        workers.len(),
        report.payoff_difference,
        report.average_payoff
    );

    println!("Sample routes:");
    for (w, route) in outcome.assignment.iter().take(8) {
        let stops: Vec<String> = route.dps().iter().map(|dp| dp.to_string()).collect();
        println!(
            "  {w}: {} | reward {:.2}, {:.2} h from pickup, payoff {:.3}",
            stops.join(" -> "),
            route.total_reward(),
            route.travel_from_dc(),
            outcome.assignment.payoff_of(&instance, w),
        );
    }
}

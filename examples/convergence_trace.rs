//! Watching the games converge (the paper's Figure 12, live).
//!
//! Runs FGT and IEGT on a single-center synthetic population and prints the
//! per-round payoff difference, average payoff, and number of strategy
//! changes until the pure Nash equilibrium (FGT) / improved evolutionary
//! equilibrium (IEGT) is reached.
//!
//! Run with: `cargo run --release -p fta --example convergence_trace`

use fta::prelude::*;

fn main() {
    let instance = generate_syn(
        &SynConfig {
            n_centers: 1,
            n_workers: 40,
            n_tasks: 2_000,
            n_delivery_points: 100,
            ..SynConfig::bench_scale()
        },
        99,
    );
    println!(
        "Population: {} workers over {} delivery points\n",
        instance.workers.len(),
        instance.delivery_points.len()
    );

    for (label, algorithm) in [
        ("FGT — best response to Nash equilibrium", {
            Algorithm::Fgt(FgtConfig::default())
        }),
        ("IEGT — replicator dynamics to evolutionary equilibrium", {
            Algorithm::Iegt(IegtConfig::default())
        }),
    ] {
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm,
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        println!("{label}");
        println!(
            "{:>6} {:>8} {:>12} {:>12}",
            "round", "moves", "P_dif", "avg payoff"
        );
        for round in &outcome.trace.rounds {
            println!(
                "{:>6} {:>8} {:>12.4} {:>12.4}",
                round.round, round.moves, round.payoff_difference, round.average_payoff
            );
        }
        println!(
            "converged: {} ({} rounds)\n",
            outcome.trace.converged,
            outcome.trace.len().saturating_sub(1)
        );
    }

    println!(
        "Reading: both traces end with zero strategy changes — the equilibrium \
         existence (Lemma 2) and the evolutionary stability (Definition 10) \
         the paper proves, observed empirically."
    );
}

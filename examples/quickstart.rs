//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds the introductory two-worker example, generates every worker's
//! Valid Delivery Point Sets, and compares the greedy assignment with the
//! fairness-aware game-theoretic ones.
//!
//! Run with: `cargo run --release -p fta --example quickstart`

use fta::prelude::*;

fn main() {
    let instance = fta::core::fig1::instance();
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();

    println!("Figure 1 instance:");
    println!(
        "  distribution center at ({}, {})",
        instance.centers[0].location.x, instance.centers[0].location.y
    );
    // Ids below use the paper's one-based naming (w1/w2, dp1..dp5); the
    // library's dense ids are zero-based.
    for w in &instance.workers {
        println!(
            "  w{} at ({}, {}), maxDP = {}",
            w.id.0 + 1,
            w.location.x,
            w.location.y,
            w.max_dp
        );
    }
    let aggs = instance.dp_aggregates();
    for dp in &instance.delivery_points {
        println!(
            "  dp{} at ({:.2}, {:.2}): {} tasks, earliest expiry {:.1} h",
            dp.id.0 + 1,
            dp.location.x,
            dp.location.y,
            aggs[dp.id.index()].task_count,
            aggs[dp.id.index()].earliest_expiry,
        );
    }

    // Peek at the strategy spaces the games play over.
    let views = instance.center_views();
    let space = StrategySpace::build(&instance, &views[0], &VdpsConfig::unpruned(3));
    println!(
        "\nC-VDPS pool: {} valid delivery point sets; strategies per worker: {:?}",
        space.pool.len(),
        (0..space.n_workers())
            .map(|l| space.strategy_count(l))
            .collect::<Vec<_>>()
    );

    for (label, algorithm) in [
        ("GTA (greedy baseline)", Algorithm::Gta),
        ("FGT (classical game)", Algorithm::Fgt(FgtConfig::default())),
        (
            "IEGT (evolutionary game)",
            Algorithm::Iegt(IegtConfig::default()),
        ),
    ] {
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::unpruned(3),
                algorithm,
                parallel: false,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        outcome
            .assignment
            .validate(&instance)
            .expect("all algorithms produce valid assignments");
        let payoffs = outcome.assignment.payoffs(&instance, &workers);
        let report = outcome.assignment.fairness(&instance, &workers);
        println!("\n{label}:");
        for (w, route) in outcome.assignment.iter() {
            let stops: Vec<String> = route
                .dps()
                .iter()
                .map(|dp| format!("dp{}", dp.0 + 1))
                .collect();
            println!(
                "  w{} -> {} (reward {:.0}, travel {:.2} h)",
                w.0 + 1,
                stops.join(" -> "),
                route.total_reward(),
                route.travel_from_dc(),
            );
        }
        println!(
            "  payoffs ({:.2}, {:.2}); P_dif = {:.2}; average = {:.2}",
            payoffs[0], payoffs[1], report.payoff_difference, report.average_payoff
        );
    }

    println!(
        "\nPaper reports: greedy (2.80, 2.09) with P_dif 0.71; a fair assignment \
         achieves (2.55, 2.29) with P_dif 0.26 at average 2.42."
    );
}

//! A city-scale on-demand food delivery scenario.
//!
//! The paper motivates FTA with delivery logistics: a platform with several
//! dark kitchens (distribution centers) must dispatch couriers to delivery
//! points before food goes cold (task expirations), and couriers churn if
//! earnings are unfair. This example builds a synthetic lunch-rush instance
//! and compares all four assignment algorithms on fairness, earnings, and
//! CPU time.
//!
//! Run with: `cargo run --release -p fta --example food_delivery`

use fta::prelude::*;
use std::time::Instant;

fn main() {
    // A 10 km × 10 km city, 3 dark kitchens, 120 couriers, 7 200 orders
    // across 300 drop-off buildings; everything must arrive within 2 hours.
    let config = SynConfig {
        n_centers: 3,
        n_workers: 120,
        n_tasks: 7_200,
        n_delivery_points: 300,
        expiry: 2.0,
        max_dp: 3,
        speed: 5.0,
        extent: 10.0,
        reward: 1.0,
    };
    let instance = generate_syn(&config, 2024);
    let workers: Vec<WorkerId> = instance.workers.iter().map(|w| w.id).collect();
    println!(
        "Lunch rush: {} kitchens, {} couriers, {} orders over {} buildings\n",
        config.n_centers, config.n_workers, config.n_tasks, config.n_delivery_points
    );

    println!(
        "{:<6} {:>10} {:>10} {:>8} {:>8} {:>10} {:>9}",
        "algo", "P_dif", "avg payoff", "gini", "jain", "assigned", "time"
    );
    for (label, algorithm) in [
        ("MPTA", Algorithm::Mpta(MptaConfig::default())),
        ("GTA", Algorithm::Gta),
        ("FGT", Algorithm::Fgt(FgtConfig::default())),
        ("IEGT", Algorithm::Iegt(IegtConfig::default())),
    ] {
        let t0 = Instant::now();
        let outcome = solve(
            &instance,
            &SolveConfig {
                vdps: VdpsConfig::pruned(2.0, 3),
                algorithm,
                parallel: true,
                ..SolveConfig::new(Algorithm::Gta)
            },
        );
        let elapsed = t0.elapsed();
        outcome
            .assignment
            .validate(&instance)
            .expect("assignments are valid");
        let report = outcome.assignment.fairness(&instance, &workers);
        println!(
            "{label:<6} {:>10.3} {:>10.3} {:>8.3} {:>8.3} {:>7}/{} {:>8.0?}",
            report.payoff_difference,
            report.average_payoff,
            report.gini,
            report.jain,
            outcome.assignment.assigned_workers(),
            workers.len(),
            elapsed,
        );
    }

    println!(
        "\nReading: IEGT should show the smallest payoff difference (fairest \
         earnings), MPTA the highest average payoff at the highest CPU cost — \
         the trade-off the paper's Figures 4–9 report."
    );
}
